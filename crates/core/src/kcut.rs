//! Coefficients of the general cut-preserving update rule (Section 5).
//!
//! For `k > 1` the optimal probability change of an edge `e = (u0, v0)`
//! cannot enumerate all `k`-cuts containing `e`; the paper instead counts how
//! many times each vertex/edge discrepancy appears across those cuts through
//! the *enumeration function*
//!
//! ```text
//! (n choose k)_Σ = 0                 if k < 0
//!                = Σ_{i=0}^{k} C(n,i) otherwise
//! ```
//!
//! which yields the closed-form rule (Equation 13)
//!
//! ```text
//! p'_e = p̂_e + [ (n-3 choose k-1)_Σ (δA(u0)+δA(v0)) + 4 (n-4 choose k-2)_Σ Δ̂(e) ]
//!              / ( 2 (n-2 choose k-1)_Σ )
//! ```
//!
//! The binomial sums overflow `f64` spectacularly for realistic `n`, but only
//! their *ratios* matter, so this module evaluates them in log space
//! (log-sum-exp over `ln C(n,i)`), producing the two normalised coefficients
//! used by `GDB`:
//!
//! * `vertex_coefficient = (n-3 choose k-1)_Σ / (n-2 choose k-1)_Σ`
//! * `edge_coefficient   = (n-4 choose k-2)_Σ / (n-2 choose k-1)_Σ`
//!
//! Special cases: `k = 1` reduces to the degree rule of Equation 9
//! (coefficients 1 and 0) and `k = 2` to Equation 15.

/// Normalised coefficients of the general `k`-cut update rule for a graph
/// with `n` vertices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutRuleCoefficients {
    /// `(n-3 choose k-1)_Σ / (n-2 choose k-1)_Σ` — weight of the endpoint
    /// degree discrepancies.
    pub vertex_coefficient: f64,
    /// `(n-4 choose k-2)_Σ / (n-2 choose k-1)_Σ` — weight of the
    /// non-incident-edge deficit `Δ̂(e)`.
    pub edge_coefficient: f64,
}

impl CutRuleCoefficients {
    /// Computes the coefficients for a graph with `num_vertices` vertices and
    /// cut cardinality `k ≥ 1`.
    ///
    /// # Panics
    /// Panics if `k == 0` (the rule is defined for `k ≥ 1`) or if the graph
    /// has fewer than 2 vertices.
    pub fn new(num_vertices: usize, k: usize) -> Self {
        assert!(k >= 1, "the cut-preserving rule requires k >= 1");
        assert!(num_vertices >= 2, "need at least two vertices");
        let n = num_vertices as i64;
        let denominator = log_binomial_prefix_sum(n - 2, k as i64 - 1);
        let vertex_num = log_binomial_prefix_sum(n - 3, k as i64 - 1);
        let edge_num = log_binomial_prefix_sum(n - 4, k as i64 - 2);
        let ratio = |num: Option<f64>| -> f64 {
            match (num, denominator) {
                (Some(a), Some(b)) => (a - b).exp(),
                // numerator sum empty (k-2 < 0 or n too small) => 0
                (None, Some(_)) => 0.0,
                // denominator empty can only happen for degenerate n; treat
                // the whole step as the plain degree rule.
                _ => 0.0,
            }
        };
        CutRuleCoefficients {
            vertex_coefficient: ratio(vertex_num),
            edge_coefficient: ratio(edge_num),
        }
    }

    /// The optimal (unclamped) probability step of Equation 13:
    /// `[ c_v (δA(u0)+δA(v0)) + 4 c_e Δ̂(e) ] / 2`.
    pub fn step(&self, delta_u: f64, delta_v: f64, non_incident_deficit: f64) -> f64 {
        (self.vertex_coefficient * (delta_u + delta_v)
            + 4.0 * self.edge_coefficient * non_incident_deficit)
            / 2.0
    }
}

/// `ln Σ_{i=0}^{k} C(n, i)` — `None` when the sum is empty (`k < 0` or
/// `n < 0`).  For `k ≥ n` the sum is `2^n`.
///
/// Runs in `O(k)` by updating `ln C(n, i)` incrementally and folding the
/// log-sum-exp in a streaming fashion, so even `n` and `k` in the millions
/// are cheap and overflow free.
fn log_binomial_prefix_sum(n: i64, k: i64) -> Option<f64> {
    if k < 0 || n < 0 {
        return None;
    }
    let k = k.min(n);
    let n = n as f64;
    // Streaming log-sum-exp with an incrementally updated ln C(n, i).
    let mut ln_c = 0.0f64; // ln C(n, 0)
    let mut max = ln_c;
    let mut scaled_sum = 1.0f64; // Σ exp(term - max), currently just i = 0
    for i in 1..=k {
        let i_f = i as f64;
        ln_c += (n - i_f + 1.0).ln() - i_f.ln();
        if ln_c > max {
            scaled_sum = scaled_sum * (max - ln_c).exp() + 1.0;
            max = ln_c;
        } else {
            scaled_sum += (ln_c - max).exp();
        }
    }
    Some(max + scaled_sum.ln())
}

/// `ln C(n, k)` via log-factorials (`Σ ln i`), exact enough for ratio work.
/// Kept as a reference implementation for the prefix-sum tests.
#[cfg_attr(not(test), allow(dead_code))]
fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    // ln C(n,k) = Σ_{i=1}^{k} ln((n - k + i) / i)
    let mut acc = 0.0;
    for i in 1..=k {
        acc += ((n - k + i) as f64).ln() - (i as f64).ln();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: u64, k: u64) -> f64 {
        if k > n {
            return 0.0;
        }
        let mut acc = 1.0f64;
        for i in 1..=k {
            acc *= (n - k + i) as f64 / i as f64;
        }
        acc
    }

    fn prefix_sum(n: i64, k: i64) -> f64 {
        if k < 0 || n < 0 {
            return 0.0;
        }
        (0..=k.min(n)).map(|i| binomial(n as u64, i as u64)).sum()
    }

    #[test]
    fn ln_binomial_matches_direct_computation() {
        for n in 0u64..20 {
            for k in 0..=n {
                let direct = binomial(n, k).ln();
                let logged = ln_binomial(n, k);
                assert!((direct - logged).abs() < 1e-9, "C({n},{k})");
            }
        }
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn prefix_sums_match_direct_computation() {
        for n in 0i64..18 {
            for k in -2i64..=(n + 3) {
                let direct = prefix_sum(n, k);
                match log_binomial_prefix_sum(n, k) {
                    None => assert_eq!(direct, 0.0),
                    Some(l) => assert!(
                        (l.exp() - direct).abs() / direct.max(1.0) < 1e-9,
                        "S({n},{k}): {} vs {direct}",
                        l.exp()
                    ),
                }
            }
        }
    }

    #[test]
    fn k1_reduces_to_the_degree_rule() {
        // Equation 9: p' = p̂ + (δ(u)+δ(v))/2 — coefficients (1, 0).
        for n in [4usize, 10, 1000, 100_000] {
            let c = CutRuleCoefficients::new(n, 1);
            assert!((c.vertex_coefficient - 1.0).abs() < 1e-9, "n={n}");
            assert_eq!(c.edge_coefficient, 0.0);
            let step = c.step(0.4, 0.2, 123.0);
            assert!((step - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn k2_matches_equation_15() {
        // Equation 15: [ (n-2)(δu+δv) + 4Δ ] / (2n-2)
        for n in [5usize, 12, 250] {
            let c = CutRuleCoefficients::new(n, 2);
            let nf = n as f64;
            assert!((c.vertex_coefficient - (nf - 2.0) / (nf - 1.0)).abs() < 1e-9);
            assert!((c.edge_coefficient - 1.0 / (nf - 1.0)).abs() < 1e-9);
            let (du, dv, dd) = (0.3, 0.1, 2.0);
            let expected = ((nf - 2.0) * (du + dv) + 4.0 * dd) / (2.0 * nf - 2.0);
            assert!((c.step(du, dv, dd) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn coefficients_match_exact_ratios_for_small_graphs() {
        for n in 4i64..16 {
            for k in 1i64..n {
                let c = CutRuleCoefficients::new(n as usize, k as usize);
                let denom = prefix_sum(n - 2, k - 1);
                let v = prefix_sum(n - 3, k - 1) / denom;
                let e = prefix_sum(n - 4, k - 2) / denom;
                assert!((c.vertex_coefficient - v).abs() < 1e-9, "n={n} k={k}");
                assert!((c.edge_coefficient - e).abs() < 1e-9, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn coefficients_are_finite_for_huge_graphs_and_large_k() {
        // These binomial sums would overflow f64 by thousands of orders of
        // magnitude if computed directly.
        let c = CutRuleCoefficients::new(1_000_000, 500_000);
        assert!(c.vertex_coefficient.is_finite());
        assert!(c.edge_coefficient.is_finite());
        assert!(c.vertex_coefficient > 0.0 && c.vertex_coefficient <= 1.0);
        assert!(c.edge_coefficient > 0.0 && c.edge_coefficient <= 1.0);
    }

    #[test]
    fn vertex_coefficient_decreases_with_k() {
        // As k grows, cuts share more edges and the endpoint terms matter
        // relatively less.
        let n = 100;
        let c1 = CutRuleCoefficients::new(n, 1).vertex_coefficient;
        let c5 = CutRuleCoefficients::new(n, 5).vertex_coefficient;
        let c50 = CutRuleCoefficients::new(n, 50).vertex_coefficient;
        assert!(c1 >= c5 && c5 >= c50);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        CutRuleCoefficients::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn tiny_graph_panics() {
        CutRuleCoefficients::new(1, 1);
    }
}
