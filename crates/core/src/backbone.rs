//! Backbone Graph Initialization (`BGI`, Algorithm 1).
//!
//! Every sparsifier of the paper starts from an unweighted *backbone graph*
//! `G_b` with exactly `α|E|` edges.  Two constructions are evaluated:
//!
//! * **Random backbone** (variants without the `-t` suffix): Monte-Carlo
//!   sampling of the original edges by their probabilities until `α|E|`
//!   distinct edges have been collected.  Simple, but may disconnect the
//!   graph for small `α`.
//! * **Spanning backbone** (`-t` variants, Algorithm 1): repeatedly extract
//!   maximum spanning forests (probabilities as weights) until the backbone
//!   holds `α'|E|` edges, then top up the remaining `(α − α')|E|` edges by
//!   probability-proportional sampling.  `α'` is the minimum of `0.5·α` and
//!   the share of edges covered by the first six spanning forests, exactly
//!   as in the paper's experiments.

use rand::Rng;
use uncertain_graph::{EdgeId, UncertainGraph};

use crate::error::SparsifyError;
use crate::scratch::{BackboneScratch, CoreScratch};
use graph_algos::spanning::maximum_spanning_forest;

/// Which backbone construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackboneKind {
    /// Monte-Carlo sampling of edges by probability (no connectivity
    /// guarantee).  The paper's variants without the `-t` suffix.
    Random,
    /// Algorithm 1: iterated maximum spanning forests followed by random
    /// sampling.  The paper's `-t` variants.
    #[default]
    SpanningForests,
    /// Local Degree (Lindner et al. \[24\], mentioned in Section 3.3 as an
    /// alternative initialisation): every vertex keeps the edges towards its
    /// highest-expected-degree neighbours (hubs), the share per vertex being
    /// `α`; the selection is then adjusted to exactly `α|E|` edges by
    /// probability-proportional sampling.  No connectivity guarantee.
    LocalDegree,
}

/// Tuning knobs of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackboneConfig {
    /// Which construction to run.
    pub kind: BackboneKind,
    /// Maximum number of spanning forests extracted before switching to
    /// random sampling (the paper uses 6).
    pub max_spanning_forests: usize,
    /// The spanning phase stops once the backbone holds
    /// `spanning_fraction · α|E|` edges (the paper uses 0.5).
    pub spanning_fraction: f64,
}

impl Default for BackboneConfig {
    fn default() -> Self {
        BackboneConfig {
            kind: BackboneKind::SpanningForests,
            max_spanning_forests: 6,
            spanning_fraction: 0.5,
        }
    }
}

impl BackboneConfig {
    /// A configuration using the random (Monte-Carlo) backbone.
    pub fn random() -> Self {
        BackboneConfig {
            kind: BackboneKind::Random,
            ..Default::default()
        }
    }

    /// A configuration using the spanning-forest backbone of Algorithm 1.
    pub fn spanning() -> Self {
        BackboneConfig::default()
    }
}

/// Computes the number of edges a sparsified graph must contain:
/// `round(α·|E|)`, at least 1.
pub fn target_edge_count(g: &UncertainGraph, alpha: f64) -> Result<usize, SparsifyError> {
    if g.num_edges() == 0 {
        return Err(SparsifyError::EmptyGraph);
    }
    if !(alpha > 0.0 && alpha < 1.0 && alpha.is_finite()) {
        return Err(SparsifyError::InvalidAlpha { alpha });
    }
    let target = (alpha * g.num_edges() as f64).round() as usize;
    if target == 0 {
        return Err(SparsifyError::NoEdgesSelected {
            alpha,
            num_edges: g.num_edges(),
        });
    }
    Ok(target.min(g.num_edges()))
}

/// Builds a backbone with exactly [`target_edge_count`] edges.
///
/// The returned edge ids refer to `g`.  With
/// [`BackboneKind::SpanningForests`] the backbone is connected whenever the
/// support of `g` is connected and `α|E| ≥ |V| − 1`.
pub fn build_backbone<R: Rng + ?Sized>(
    g: &UncertainGraph,
    alpha: f64,
    config: &BackboneConfig,
    rng: &mut R,
) -> Result<Vec<EdgeId>, SparsifyError> {
    let mut scratch = CoreScratch::new();
    let mut backbone = Vec::new();
    build_backbone_into(g, alpha, config, rng, &mut scratch, &mut backbone)?;
    Ok(backbone)
}

/// [`build_backbone`] with caller-provided scratch space and output buffer:
/// repeated constructions reuse the selection flags, sweep-order and
/// sampling-pool buffers (the spanning phase still allocates its forests
/// internally).  Consumes the RNG identically to [`build_backbone`] and
/// produces the same edges for the same seed.
pub fn build_backbone_into<R: Rng + ?Sized>(
    g: &UncertainGraph,
    alpha: f64,
    config: &BackboneConfig,
    rng: &mut R,
    scratch: &mut CoreScratch,
    out: &mut Vec<EdgeId>,
) -> Result<(), SparsifyError> {
    let target = target_edge_count(g, alpha)?;
    if config.spanning_fraction < 0.0 || config.spanning_fraction > 1.0 {
        return Err(SparsifyError::InvalidParameter {
            name: "spanning_fraction",
            message: format!("{} is outside [0, 1]", config.spanning_fraction),
        });
    }
    out.clear();
    out.reserve(target);
    let buffers = &mut scratch.backbone;
    match config.kind {
        BackboneKind::Random => random_backbone(g, target, rng, buffers, out),
        BackboneKind::SpanningForests => spanning_backbone(g, target, config, rng, buffers, out),
        BackboneKind::LocalDegree => local_degree_backbone(g, target, alpha, rng, buffers, out),
    }
    Ok(())
}

/// Local Degree backbone: each vertex nominates the `⌈α·deg(u)⌉` incident
/// edges whose other endpoint has the highest expected degree; the union of
/// all nominations is trimmed (dropping the nominations towards the
/// lowest-degree endpoints first) or topped up by probability-proportional
/// sampling to exactly `target` edges.
fn local_degree_backbone<R: Rng + ?Sized>(
    g: &UncertainGraph,
    target: usize,
    alpha: f64,
    rng: &mut R,
    buffers: &mut BackboneScratch,
    backbone: &mut Vec<EdgeId>,
) {
    let BackboneScratch {
        selected,
        pool,
        nominated,
        incident,
        ..
    } = buffers;
    let expected_degrees = g.expected_degrees();
    selected.clear();
    selected.resize(g.num_edges(), false);
    // Score of a nomination: the expected degree of the hub endpoint.
    nominated.clear();
    for u in g.vertices() {
        incident.clear();
        incident.extend(g.neighbors(u).map(|(v, e, _)| (expected_degrees[v], e)));
        incident.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let quota = ((alpha * incident.len() as f64).ceil() as usize).min(incident.len());
        for &(score, e) in incident.iter().take(quota) {
            if !selected[e] {
                selected[e] = true;
                nominated.push((score, e));
            }
        }
    }
    if nominated.len() > target {
        // Keep the nominations towards the highest-degree hubs.
        nominated.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        backbone.extend(nominated.iter().take(target).map(|&(_, e)| e));
    } else {
        backbone.extend(nominated.iter().map(|&(_, e)| e));
        // `selected` already marks exactly the nominated (= kept) edges.
        fill_by_weighted_sampling(g, selected, backbone, target, rng, pool);
    }
    backbone.sort_unstable();
}

/// Monte-Carlo backbone: repeatedly sweep the edges in random order, keeping
/// each with its probability, until `target` distinct edges are collected.
/// If the probabilities are so small that sweeps stall, the remaining slots
/// are filled by probability-weighted sampling without replacement so the
/// procedure always terminates.
fn random_backbone<R: Rng + ?Sized>(
    g: &UncertainGraph,
    target: usize,
    rng: &mut R,
    buffers: &mut BackboneScratch,
    backbone: &mut Vec<EdgeId>,
) {
    let BackboneScratch {
        selected,
        order,
        pool,
        ..
    } = buffers;
    let m = g.num_edges();
    selected.clear();
    selected.resize(m, false);
    order.clear();
    order.extend(0..m);
    // A generous but bounded number of Bernoulli sweeps.
    const MAX_SWEEPS: usize = 64;
    'outer: for _ in 0..MAX_SWEEPS {
        shuffle(order, rng);
        for &e in order.iter() {
            if backbone.len() >= target {
                break 'outer;
            }
            if !selected[e] && rng.gen::<f64>() < g.edge_probability(e) {
                selected[e] = true;
                backbone.push(e);
            }
        }
        if backbone.len() >= target {
            break;
        }
    }
    if backbone.len() < target {
        fill_by_weighted_sampling(g, selected, backbone, target, rng, pool);
    }
}

/// Algorithm 1.
fn spanning_backbone<R: Rng + ?Sized>(
    g: &UncertainGraph,
    target: usize,
    config: &BackboneConfig,
    rng: &mut R,
    buffers: &mut BackboneScratch,
    backbone: &mut Vec<EdgeId>,
) {
    let BackboneScratch {
        selected,
        order,
        pool,
        weighted,
        in_forest,
        ..
    } = buffers;
    let m = g.num_edges();
    weighted.clear();
    weighted.extend(g.edges().map(|e| (e.u, e.v, e.p)));
    selected.clear();
    selected.resize(m, false);

    // Spanning phase: keep extracting maximum spanning forests of the
    // remaining edges until α'|E| edges are gathered or the forest budget is
    // exhausted.  `order` doubles as the remaining-edge list and is then
    // reused as the sweep order of the sampling phase.
    let spanning_target = ((config.spanning_fraction * target as f64).floor() as usize).min(target);
    order.clear();
    order.extend(0..m);
    for _ in 0..config.max_spanning_forests {
        if backbone.len() >= spanning_target || order.is_empty() {
            break;
        }
        let forest = maximum_spanning_forest(g.num_vertices(), weighted, order);
        if forest.is_empty() {
            break;
        }
        for &e in &forest {
            if backbone.len() >= target {
                break;
            }
            if !selected[e] {
                selected[e] = true;
                backbone.push(e);
            }
        }
        in_forest.clear();
        in_forest.resize(m, false);
        for &e in &forest {
            in_forest[e] = true;
        }
        order.retain(|&e| !in_forest[e]);
    }

    // Sampling phase: the rest of the backbone comes from Bernoulli sweeps on
    // the remaining edges, with the same bounded-retry fallback as the random
    // backbone.
    const MAX_SWEEPS: usize = 64;
    'outer: for _ in 0..MAX_SWEEPS {
        if backbone.len() >= target {
            break;
        }
        shuffle(order, rng);
        for &e in order.iter() {
            if backbone.len() >= target {
                break 'outer;
            }
            if !selected[e] && rng.gen::<f64>() < g.edge_probability(e) {
                selected[e] = true;
                backbone.push(e);
            }
        }
    }
    if backbone.len() < target {
        fill_by_weighted_sampling(g, selected, backbone, target, rng, pool);
    }
}

/// Probability-weighted sampling without replacement of the still-unselected
/// edges until the backbone reaches `target` edges.
fn fill_by_weighted_sampling<R: Rng + ?Sized>(
    g: &UncertainGraph,
    selected: &mut [bool],
    backbone: &mut Vec<EdgeId>,
    target: usize,
    rng: &mut R,
    pool: &mut Vec<EdgeId>,
) {
    pool.clear();
    pool.extend((0..g.num_edges()).filter(|&e| !selected[e]));
    while backbone.len() < target && !pool.is_empty() {
        let total: f64 = pool.iter().map(|&e| g.edge_probability(e)).sum();
        let chosen_idx = if total <= 0.0 {
            rng.gen_range(0..pool.len())
        } else {
            let mut ticket = rng.gen::<f64>() * total;
            let mut idx = pool.len() - 1;
            for (i, &e) in pool.iter().enumerate() {
                ticket -= g.edge_probability(e);
                if ticket <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        let e = pool.swap_remove(chosen_idx);
        selected[e] = true;
        backbone.push(e);
    }
}

/// Fisher–Yates shuffle (kept local to avoid depending on `rand`'s `seq`
/// feature surface).
fn shuffle<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Returns `true` if the listed edges of `g` form a connected spanning
/// subgraph of `g`'s vertex set (used by tests and property checks).
pub fn edges_span_connected(g: &UncertainGraph, edges: &[EdgeId]) -> bool {
    let n = g.num_vertices();
    if n <= 1 {
        return true;
    }
    let mut uf = graph_algos::UnionFind::new(n);
    for &e in edges {
        let (u, v) = g.edge_endpoints(e);
        uf.union(u, v);
    }
    uf.num_sets() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::UncertainGraphBuilder;

    /// A connected random-ish graph with 20 vertices and 60 edges.
    fn test_graph(seed: u64) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 20;
        let mut b = UncertainGraphBuilder::new(n);
        // ring for connectivity
        for u in 0..n {
            b.add_edge(u, (u + 1) % n, 0.2 + 0.6 * rng.gen::<f64>())
                .unwrap();
        }
        let mut added = n;
        while added < 60 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v
                && b.add_edge_if_absent(u, v, 0.05 + 0.9 * rng.gen::<f64>())
                    .unwrap()
            {
                added += 1;
            }
        }
        b.build()
    }

    #[test]
    fn target_edge_count_validates_inputs() {
        let g = test_graph(1);
        assert_eq!(target_edge_count(&g, 0.5).unwrap(), 30);
        assert!(matches!(
            target_edge_count(&g, 0.0),
            Err(SparsifyError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            target_edge_count(&g, 1.0),
            Err(SparsifyError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            target_edge_count(&g, -0.2),
            Err(SparsifyError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            target_edge_count(&g, f64::NAN),
            Err(SparsifyError::InvalidAlpha { .. })
        ));
        let empty = UncertainGraph::from_edges(3, []).unwrap();
        assert!(matches!(
            target_edge_count(&empty, 0.5),
            Err(SparsifyError::EmptyGraph)
        ));
        let tiny = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        assert!(matches!(
            target_edge_count(&tiny, 0.01),
            Err(SparsifyError::NoEdgesSelected { .. })
        ));
    }

    #[test]
    fn random_backbone_has_exact_size_and_unique_edges() {
        let g = test_graph(2);
        let mut rng = SmallRng::seed_from_u64(7);
        for alpha in [0.1, 0.25, 0.5, 0.9] {
            let bb = build_backbone(&g, alpha, &BackboneConfig::random(), &mut rng).unwrap();
            assert_eq!(bb.len(), target_edge_count(&g, alpha).unwrap());
            let unique: std::collections::HashSet<_> = bb.iter().collect();
            assert_eq!(unique.len(), bb.len());
            assert!(bb.iter().all(|&e| e < g.num_edges()));
        }
    }

    #[test]
    fn spanning_backbone_is_connected_when_alpha_allows() {
        let g = test_graph(3);
        let mut rng = SmallRng::seed_from_u64(11);
        // α|E| = 0.5 * 60 = 30 >= |V| - 1 = 19, so the spanning backbone must
        // connect all vertices.
        let bb = build_backbone(&g, 0.5, &BackboneConfig::spanning(), &mut rng).unwrap();
        assert_eq!(bb.len(), 30);
        assert!(edges_span_connected(&g, &bb));
    }

    #[test]
    fn random_backbone_needs_no_connectivity() {
        // Not asserting disconnection (it may connect by chance), just that
        // the function is total and respects the size for low-probability
        // graphs where Bernoulli sweeps alone would stall.
        let g = UncertainGraph::from_edges(
            6,
            [
                (0, 1, 1e-6),
                (1, 2, 1e-6),
                (2, 3, 1e-6),
                (3, 4, 1e-6),
                (4, 5, 1e-6),
                (5, 0, 1e-6),
            ],
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let bb = build_backbone(&g, 0.5, &BackboneConfig::random(), &mut rng).unwrap();
        assert_eq!(bb.len(), 3);
    }

    #[test]
    fn spanning_phase_prefers_high_probability_edges() {
        // Star + one heavy chord: the first spanning forest must contain the
        // heaviest edges.
        let g = UncertainGraph::from_edges(
            5,
            [
                (0, 1, 0.9),
                (0, 2, 0.9),
                (0, 3, 0.9),
                (0, 4, 0.9),
                (1, 2, 0.01),
                (3, 4, 0.01),
            ],
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let bb = build_backbone(&g, 0.67, &BackboneConfig::spanning(), &mut rng).unwrap();
        assert_eq!(bb.len(), 4);
        // all four 0.9 star edges outrank the chords in the spanning phase +
        // weighted fill
        let star_edges = bb.iter().filter(|&&e| g.edge_probability(e) > 0.5).count();
        assert!(
            star_edges >= 2,
            "expected the spanning phase to pick heavy edges"
        );
        assert!(edges_span_connected(&g, &bb));
    }

    #[test]
    fn invalid_spanning_fraction_is_rejected() {
        let g = test_graph(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let bad = BackboneConfig {
            spanning_fraction: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            build_backbone(&g, 0.5, &bad, &mut rng),
            Err(SparsifyError::InvalidParameter {
                name: "spanning_fraction",
                ..
            })
        ));
    }

    #[test]
    fn backbones_are_reproducible_with_the_same_seed() {
        let g = test_graph(5);
        let a = build_backbone(
            &g,
            0.4,
            &BackboneConfig::spanning(),
            &mut SmallRng::seed_from_u64(9),
        )
        .unwrap();
        let b = build_backbone(
            &g,
            0.4,
            &BackboneConfig::spanning(),
            &mut SmallRng::seed_from_u64(9),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn local_degree_backbone_prefers_hub_edges() {
        // A hub (vertex 0) with many reliable spokes plus a sparse periphery:
        // Local Degree must keep spoke edges (towards the hub) ahead of
        // peripheral edges.
        let mut b = UncertainGraphBuilder::new(12);
        for leaf in 1..8usize {
            b.add_edge(0, leaf, 0.8).unwrap();
        }
        for periph in 8..12usize {
            b.add_edge(periph, periph - 7, 0.2).unwrap();
        }
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(4);
        let config = BackboneConfig {
            kind: BackboneKind::LocalDegree,
            ..Default::default()
        };
        let bb = build_backbone(&g, 0.5, &config, &mut rng).unwrap();
        assert_eq!(bb.len(), target_edge_count(&g, 0.5).unwrap());
        let hub_edges = bb
            .iter()
            .filter(|&&e| {
                let (u, v) = g.edge_endpoints(e);
                u == 0 || v == 0
            })
            .count();
        assert!(
            hub_edges as f64 >= bb.len() as f64 * 0.5,
            "expected mostly hub edges, got {hub_edges}/{}",
            bb.len()
        );
        // determinism and validity
        let unique: std::collections::HashSet<_> = bb.iter().collect();
        assert_eq!(unique.len(), bb.len());
    }

    #[test]
    fn local_degree_backbone_has_exact_size_on_dense_graphs() {
        let g = test_graph(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let config = BackboneConfig {
            kind: BackboneKind::LocalDegree,
            ..Default::default()
        };
        for alpha in [0.1, 0.3, 0.7] {
            let bb = build_backbone(&g, alpha, &config, &mut rng).unwrap();
            assert_eq!(bb.len(), target_edge_count(&g, alpha).unwrap());
        }
    }

    #[test]
    fn default_config_matches_paper_settings() {
        let c = BackboneConfig::default();
        assert_eq!(c.kind, BackboneKind::SpanningForests);
        assert_eq!(c.max_spanning_forests, 6);
        assert!((c.spanning_fraction - 0.5).abs() < 1e-12);
        assert_eq!(BackboneKind::default(), BackboneKind::SpanningForests);
    }
}
