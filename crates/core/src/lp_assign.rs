//! Optimal probability assignment for `Δ1` via linear programming
//! (Section 4.1, Theorem 1).
//!
//! Lemma 1 shows an optimal assignment never exceeds the original expected
//! degrees, so minimising `Δ1 = Σ_u |d_u − d'_u|` over a fixed backbone is
//! equivalent to the LP
//!
//! ```text
//!   maximise   Σ_e p'_e
//!   subject to A_b p' ≤ d      (incidence matrix of the backbone)
//!              0 ≤ p'_e ≤ 1
//! ```
//!
//! The paper treats this LP as the accuracy reference (Table 2) but notes it
//! is far too slow for large graphs — which our experiments confirm; it is
//! intended for reduced-scale runs only.

use uncertain_graph::{EdgeId, UncertainGraph};

use crate::error::SparsifyError;
use lp_solver::{LpProblem, LpStatus};

/// Output of the LP probability assignment.
#[derive(Debug, Clone)]
pub struct LpAssignResult {
    /// Final probability of every backbone edge (same order as the input
    /// backbone).  Values may be exactly 0; callers materialising an
    /// uncertain graph floor them at a tiny positive value.
    pub probabilities: Vec<(EdgeId, f64)>,
    /// Objective value `Σ_e p'_e` reached by the LP.
    pub total_probability: f64,
    /// Number of simplex pivots.
    pub pivots: usize,
}

/// Computes the `Δ1`-optimal probability assignment for the backbone
/// (Theorem 1).
pub fn lp_assign(g: &UncertainGraph, backbone: &[EdgeId]) -> Result<LpAssignResult, SparsifyError> {
    if backbone.is_empty() {
        return Err(SparsifyError::EmptyGraph);
    }
    for &e in backbone {
        if e >= g.num_edges() {
            return Err(SparsifyError::Graph(
                uncertain_graph::GraphError::EdgeOutOfRange {
                    edge: e,
                    num_edges: g.num_edges(),
                },
            ));
        }
    }

    let degrees = g.expected_degrees();
    let mut problem = LpProblem::new(backbone.len());
    // Objective: maximise Σ p'_e; box constraints 0 ≤ p' ≤ 1.
    for var in 0..backbone.len() {
        problem
            .set_objective(var, 1.0)
            .map_err(|e| SparsifyError::Lp(e.to_string()))?;
        problem
            .set_upper_bound(var, 1.0)
            .map_err(|e| SparsifyError::Lp(e.to_string()))?;
    }
    // One row per vertex touched by the backbone: Σ_{e ∋ u} p'_e ≤ d_u.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); g.num_vertices()];
    for (var, &e) in backbone.iter().enumerate() {
        let (u, v) = g.edge_endpoints(e);
        rows[u].push((var, 1.0));
        rows[v].push((var, 1.0));
    }
    for (u, row) in rows.iter().enumerate() {
        if !row.is_empty() {
            problem
                .add_le_constraint(row, degrees[u])
                .map_err(|e| SparsifyError::Lp(e.to_string()))?;
        }
    }

    let solution = lp_solver::solve(&problem).map_err(|e| SparsifyError::Lp(e.to_string()))?;
    if solution.status != LpStatus::Optimal {
        return Err(SparsifyError::Lp(format!(
            "unexpected LP status {:?}",
            solution.status
        )));
    }
    let probabilities = backbone
        .iter()
        .zip(solution.values.iter())
        .map(|(&e, &p)| (e, p.clamp(0.0, 1.0)))
        .collect();
    Ok(LpAssignResult {
        probabilities,
        total_probability: solution.objective,
        pivots: solution.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::{DegreeTracker, DiscrepancyKind};
    use crate::gdb::{gradient_descent_assign, GdbConfig};

    fn figure2_graph() -> (UncertainGraph, Vec<EdgeId>) {
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.4),
                (0, 2, 0.2),
                (0, 3, 0.2),
                (1, 3, 0.2),
                (2, 3, 0.1),
            ],
        )
        .unwrap();
        (g, vec![2, 3, 4])
    }

    fn delta1(g: &UncertainGraph, assignment: &[(EdgeId, f64)]) -> f64 {
        let mut tracker = DegreeTracker::new(g, DiscrepancyKind::Absolute);
        for &(e, p) in assignment {
            let (u, v) = g.edge_endpoints(e);
            tracker.apply_edge_change(u, v, 0.0, p);
        }
        tracker.delta1()
    }

    #[test]
    fn lp_solution_respects_degree_caps_and_bounds() {
        let (g, backbone) = figure2_graph();
        let result = lp_assign(&g, &backbone).unwrap();
        assert_eq!(result.probabilities.len(), 3);
        let degrees = g.expected_degrees();
        let mut new_degrees = vec![0.0; g.num_vertices()];
        for &(e, p) in &result.probabilities {
            assert!((0.0..=1.0).contains(&p));
            let (u, v) = g.edge_endpoints(e);
            new_degrees[u] += p;
            new_degrees[v] += p;
        }
        // Lemma 1: no vertex exceeds its original expected degree.
        for u in g.vertices() {
            assert!(new_degrees[u] <= degrees[u] + 1e-6, "vertex {u}");
        }
    }

    #[test]
    fn lp_is_at_least_as_good_as_gdb_for_delta1() {
        let (g, backbone) = figure2_graph();
        let lp = lp_assign(&g, &backbone).unwrap();
        let gdb = gradient_descent_assign(
            &g,
            &backbone,
            &GdbConfig {
                entropy_h: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let lp_delta1 = delta1(&g, &lp.probabilities);
        let gdb_delta1 = delta1(&g, &gdb.probabilities);
        assert!(
            lp_delta1 <= gdb_delta1 + 1e-6,
            "LP Δ1 = {lp_delta1}, GDB Δ1 = {gdb_delta1}"
        );
    }

    #[test]
    fn lp_matches_hand_computed_optimum_on_the_paper_backbone() {
        // For the Figure 2 backbone (three edges incident to u4, degree cap
        // d(u4) = 0.5) the best Δ1 assignment puts total probability 0.5 on
        // the star: Δ1 = |0.8-a| + |0.6-b| + |0.3-c| + 0 with a+b+c = 0.5
        // and a,b,c ≤ their other endpoints' caps — total objective Σp = 0.5.
        let (g, backbone) = figure2_graph();
        let result = lp_assign(&g, &backbone).unwrap();
        assert!((result.total_probability - 0.5).abs() < 1e-6);
        let d1 = delta1(&g, &result.probabilities);
        // Δ1 = (0.8+0.6+0.3) - 0.5 (mass placed on u1..u3 side) - 0.5 (u4)
        assert!((d1 - 1.2).abs() < 1e-6, "Δ1 = {d1}");
    }

    #[test]
    fn full_backbone_recovers_probabilities_with_zero_discrepancy_bound() {
        // When the backbone is the whole edge set, the optimum saturates all
        // degree constraints and Δ1 = 0; the LP objective equals the total
        // original probability mass.
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.9)]).unwrap();
        let backbone = vec![0, 1, 2];
        let result = lp_assign(&g, &backbone).unwrap();
        assert!((result.total_probability - g.expected_num_edges()).abs() < 1e-6);
        assert!(delta1(&g, &result.probabilities) < 1e-6);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (g, _) = figure2_graph();
        assert!(matches!(lp_assign(&g, &[]), Err(SparsifyError::EmptyGraph)));
        assert!(matches!(lp_assign(&g, &[42]), Err(SparsifyError::Graph(_))));
    }
}
