//! Expectation-Maximization Degree (`EMD`, Algorithm 3).
//!
//! `GDB` only tunes probabilities of a *fixed* backbone, so it is sensitive to
//! the backbone choice.  `EMD` additionally restructures the backbone:
//!
//! * **E-phase** — for each backbone edge `e = (u, v)`: temporarily remove it
//!   (returning its probability mass to the discrepancies of `u` and `v`),
//!   look at the vertex `v_H` with the *largest* current discrepancy (kept in
//!   an indexed max-heap), and among the non-backbone edges incident to `v_H`
//!   (plus `e` itself) re-insert the edge with the highest *gain*
//!   (Equation 10) at its optimal probability (Equation 9).
//! * **M-phase** — run `GDB` on the restructured backbone.
//!
//! The loop repeats until the objective improvement falls below the
//! tolerance.  Thanks to the vertex heap, each E-phase costs
//! `O(α|E| log|V|)` heap work instead of the `O(α(1-α)|E|² log|V| / |V|)` of
//! the naive edge-heap formulation (Section 4.3).
//!
//! Two implementations are provided, selected by [`EmdConfig::engine`] and
//! bit-identical to each other (see [`crate::scratch`] for the argument and
//! the `sparsify_parity` suite for the proof-by-test): the paper-faithful
//! [`Engine::Reference`] loop pushes the vertex heap together from scratch
//! every iteration, scans the backbone linearly on every swap and runs
//! full-sweep `GDB` M-phases, while [`Engine::Indexed`] re-heapifies a
//! cache-aware 8-ary heap in place, maintains an O(1) edge → slot map,
//! evaluates E-phase candidates without a single `log2`, reuses every
//! buffer via [`CoreScratch`] and runs worklist M-phases.

use uncertain_graph::{EdgeId, UncertainGraph, VertexId};

use crate::discrepancy::DiscrepancyKind;
use crate::error::SparsifyError;
use crate::gdb::{
    damped_update, damped_update_from_zero, gradient_descent_assign, run_gdb, validate_backbone,
    AssignmentState, CutRule, Engine, GdbConfig,
};
use crate::scratch::CoreScratch;
use graph_algos::IndexedMaxHeap;

/// Configuration of the `EMD` sparsifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmdConfig {
    /// Absolute (`EMD^A`) or relative (`EMD^R`) discrepancy.
    pub discrepancy: DiscrepancyKind,
    /// Entropy parameter `h ∈ [0, 1]` shared with the embedded `GDB`.
    pub entropy_h: f64,
    /// Convergence threshold `τ` on the objective improvement of a full
    /// E-phase + M-phase iteration.
    pub tolerance: f64,
    /// Hard cap on the number of EM iterations.
    pub max_iterations: usize,
    /// Which implementation to run; both are bit-identical.
    pub engine: Engine,
    /// Configuration of the embedded `GDB` M-phase (its `discrepancy`,
    /// `entropy_h` and `engine` fields are overridden by the ones above).
    pub gdb: GdbConfig,
}

impl Default for EmdConfig {
    fn default() -> Self {
        EmdConfig {
            discrepancy: DiscrepancyKind::Absolute,
            entropy_h: 0.05,
            tolerance: 1e-9,
            max_iterations: 20,
            engine: Engine::default(),
            gdb: GdbConfig::default(),
        }
    }
}

impl EmdConfig {
    fn validate(&self) -> Result<(), SparsifyError> {
        if !(0.0..=1.0).contains(&self.entropy_h) || !self.entropy_h.is_finite() {
            return Err(SparsifyError::InvalidParameter {
                name: "entropy_h",
                message: format!("{} is outside [0, 1]", self.entropy_h),
            });
        }
        if self.tolerance < 0.0 || !self.tolerance.is_finite() {
            return Err(SparsifyError::InvalidParameter {
                name: "tolerance",
                message: format!("{} must be a non-negative finite number", self.tolerance),
            });
        }
        if self.max_iterations == 0 {
            return Err(SparsifyError::InvalidParameter {
                name: "max_iterations",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    fn mphase_gdb(&self) -> GdbConfig {
        GdbConfig {
            discrepancy: self.discrepancy,
            entropy_h: self.entropy_h,
            cut_rule: CutRule::Degree,
            engine: self.engine,
            ..self.gdb
        }
    }
}

/// Output of an `EMD` run.
#[derive(Debug, Clone)]
pub struct EmdResult {
    /// Final edge set with probabilities (edge ids refer to the input graph).
    pub probabilities: Vec<(EdgeId, f64)>,
    /// Number of EM iterations executed.
    pub iterations: usize,
    /// Objective after the initial backbone and after each EM iteration.
    pub objective_trace: Vec<f64>,
    /// Number of edge swaps performed across all E-phases (an edge replaced
    /// by a different edge).
    pub swaps: usize,
    /// Entropy (bits) of the final assignment.
    pub entropy: f64,
}

impl EmdResult {
    /// Final objective value.
    pub fn final_objective(&self) -> f64 {
        *self.objective_trace.last().expect("trace is never empty")
    }
}

/// Runs `EMD` (Algorithm 3) starting from the given backbone.  Dispatches on
/// [`EmdConfig::engine`]; the indexed engine allocates a transient scratch —
/// use [`expectation_maximization_sparsify_with`] to amortise it.
///
/// The number of kept edges always equals the backbone size: every E-phase
/// swap removes one edge and inserts exactly one.
pub fn expectation_maximization_sparsify(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &EmdConfig,
) -> Result<EmdResult, SparsifyError> {
    let mut scratch = CoreScratch::new();
    expectation_maximization_sparsify_with(g, backbone, config, &mut scratch)
}

/// [`expectation_maximization_sparsify`] with caller-provided scratch space:
/// with [`Engine::Indexed`] repeated runs reuse the outer state, the vertex
/// heap, the snapshot buffer and the M-phase workspace, so warm E-phase
/// iterations perform zero heap allocations.
pub fn expectation_maximization_sparsify_with(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &EmdConfig,
    scratch: &mut CoreScratch,
) -> Result<EmdResult, SparsifyError> {
    config.validate()?;
    // The embedded M-phase configuration is validated up front so both
    // engines reject invalid nested configs identically (the reference would
    // otherwise only hit the check inside its first M-phase, and the indexed
    // engine not at all).
    config.mphase_gdb().validate()?;
    validate_backbone(g, backbone)?;
    match config.engine {
        Engine::Reference => emd_reference(g, backbone, config),
        Engine::Indexed => Ok(emd_indexed(g, backbone, config, scratch)),
    }
}

/// The paper-faithful `EMD` loop (the bit-parity oracle): the vertex heap is
/// rebuilt at the start of every E-phase and the M-phase runs through the
/// public [`gradient_descent_assign`] on a fresh assignment state.
fn emd_reference(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &EmdConfig,
) -> Result<EmdResult, SparsifyError> {
    // Lines 1–5 of Algorithm 3: the initial assignment keeps the backbone
    // with its original probabilities.
    let mut state = AssignmentState::new(g, backbone, config.discrepancy);
    let mut current_backbone: Vec<EdgeId> = backbone.to_vec();
    let mut trace = vec![state.tracker.objective()];
    let mut swaps = 0usize;
    let mut iterations = 0usize;
    // One snapshot buffer for all E-phases (each round used to clone the
    // backbone anew; the contents are still rewritten every iteration).
    let mut snapshot: Vec<EdgeId> = Vec::with_capacity(current_backbone.len());

    for _ in 0..config.max_iterations {
        let before = state.tracker.objective();

        // ---------------- E-phase: restructure the backbone ----------------
        let mut heap = IndexedMaxHeap::new(g.num_vertices());
        for u in g.vertices() {
            heap.push_or_update(u, state.tracker.delta(u).abs());
        }
        snapshot.clear();
        snapshot.extend_from_slice(&current_backbone);
        for &e in &snapshot {
            if !state.in_set[e] {
                continue; // already replaced earlier in this phase
            }
            let (u, v) = g.edge_endpoints(e);
            // Remove e: its probability mass flows back into δ(u), δ(v).
            state.remove_edge(g, e);
            heap.update(u, state.tracker.delta(u).abs());
            heap.update(v, state.tracker.delta(v).abs());

            // The vertex that currently hurts the objective the most.
            let (v_h, _) = heap.peek().expect("heap holds every vertex");

            let (chosen, prob) = best_candidate(g, &state, config.entropy_h, v_h, e, false);
            state.insert_edge(g, chosen, prob);
            let (cu, cv) = g.edge_endpoints(chosen);
            heap.update(cu, state.tracker.delta(cu).abs());
            heap.update(cv, state.tracker.delta(cv).abs());
            if chosen != e {
                swaps += 1;
                let position = current_backbone
                    .iter()
                    .position(|&x| x == e)
                    .expect("edge came from the current backbone");
                current_backbone[position] = chosen;
            }
        }

        // ---------------- M-phase: retune probabilities with GDB -----------
        let gdb_result = gradient_descent_assign(g, &current_backbone, &config.mphase_gdb())?;
        for &(e, p) in &gdb_result.probabilities {
            state.set_probability(g, e, p);
        }

        let after = state.tracker.objective();
        trace.push(after);
        iterations += 1;
        if (before - after).abs() <= config.tolerance {
            break;
        }
    }

    let probabilities = current_backbone
        .iter()
        .map(|&e| (e, state.prob[e]))
        .collect();
    Ok(EmdResult {
        probabilities,
        iterations,
        objective_trace: trace,
        swaps,
        entropy: state.entropy(),
    })
}

/// The indexed `EMD` loop: bit-identical to [`emd_reference`] (checked by
/// the `sparsify_parity` suite) but with the heavy per-iteration work
/// replaced by incremental indexes — see [`crate::scratch`] for why each
/// replacement preserves bit-parity.
///
/// * The vertex heap is re-heapified in place (`O(|V|)` Floyd build into
///   reused buffers) at each E-phase start, instead of the reference's
///   `O(|V| log |V|)` pushes into a freshly allocated heap, and is updated
///   incrementally at the same points the reference instruments during the
///   phase.
/// * The E-phase snapshot and the backbone bookkeeping reuse scratch
///   buffers; swap positions come from an O(1) edge → slot map instead of a
///   linear scan per swap.
/// * The M-phase runs the worklist `GDB` sweeps (clamp sign-guard + version
///   stamps) in the reusable M-phase workspace and applies the tuned
///   probabilities directly, without materialising an intermediate
///   `GdbResult`.
fn emd_indexed(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &EmdConfig,
    scratch: &mut CoreScratch,
) -> EmdResult {
    let crate::scratch::EmdScratch {
        state,
        heap,
        snapshot,
        backbone: current,
        position_of,
        trace,
        mphase,
    } = &mut scratch.emd;

    state.reset(g, backbone, config.discrepancy);
    current.clear();
    current.extend_from_slice(backbone);
    position_of.clear();
    position_of.resize(g.num_edges(), usize::MAX);
    for (slot, &e) in current.iter().enumerate() {
        position_of[e] = slot;
    }
    trace.clear();
    trace.push(state.tracker.objective());

    let mphase_config = config.mphase_gdb();
    let mut swaps = 0usize;
    let mut iterations = 0usize;

    for _ in 0..config.max_iterations {
        let before = state.tracker.objective();

        // ---------------- E-phase: restructure the backbone ----------------
        // In-place O(|V|) Floyd heapify into the reused buffers, instead of
        // the reference's |V| pushes into a freshly allocated heap.  Peeks
        // agree bit for bit: the ordering is total, so the maximum is unique
        // whatever the internal layout.
        heap.rebuild(g.num_vertices(), |u| state.tracker.delta(u).abs());
        snapshot.clear();
        snapshot.extend_from_slice(current);
        for &e in snapshot.iter() {
            if !state.in_set[e] {
                continue; // already replaced earlier in this phase
            }
            let (u, v) = g.edge_endpoints(e);
            state.remove_edge(g, e);
            heap.update(u, state.tracker.delta(u).abs());
            heap.update(v, state.tracker.delta(v).abs());

            let (v_h, _) = heap.peek().expect("heap holds every vertex");

            let (chosen, prob) = best_candidate(g, state, config.entropy_h, v_h, e, true);
            state.insert_edge(g, chosen, prob);
            let (cu, cv) = g.edge_endpoints(chosen);
            heap.update(cu, state.tracker.delta(cu).abs());
            heap.update(cv, state.tracker.delta(cv).abs());
            if chosen != e {
                swaps += 1;
                let slot = position_of[e];
                debug_assert_eq!(current[slot], e, "stale backbone position");
                current[slot] = chosen;
                position_of[chosen] = slot;
            }
        }

        // ---------------- M-phase: retune probabilities with GDB -----------
        // Same semantics as the reference: GDB restarts from the original
        // probabilities of the restructured backbone (`run_gdb` resets the
        // M-phase state exactly like a fresh construction).  The heap is not
        // maintained here — the next E-phase re-heapifies in O(|V|), which
        // is far cheaper than 2α|E| logarithmic updates.
        let inner = run_gdb(g, current, &mphase_config, None, mphase);
        for &e in current.iter() {
            state.set_probability(g, e, inner.state.prob[e]);
        }

        let after = state.tracker.objective();
        trace.push(after);
        iterations += 1;
        if (before - after).abs() <= config.tolerance {
            break;
        }
    }

    let probabilities = current.iter().map(|&e| (e, state.prob[e])).collect();
    EmdResult {
        probabilities,
        iterations,
        objective_trace: trace.clone(),
        swaps,
        entropy: state.entropy(),
    }
}

/// Picks the E-phase replacement for the removed edge `removed`: among the
/// non-backbone edges incident to the worst vertex `v_h` (plus `removed`
/// itself), the edge with the highest insertion gain, ties broken towards
/// the smaller edge id.  Shared by both engines so the selection logic
/// cannot drift apart; the only difference is the candidate evaluator —
/// every candidate is a non-kept edge with probability exactly 0, so the
/// indexed engine (`fast = true`) uses the bit-identical log-free
/// [`damped_update_from_zero`] while the reference keeps the general
/// entropy-evaluating path.
fn best_candidate(
    g: &UncertainGraph,
    state: &AssignmentState,
    entropy_h: f64,
    v_h: VertexId,
    removed: EdgeId,
    fast: bool,
) -> (EdgeId, f64) {
    let mut best: Option<(EdgeId, f64, f64)> = None; // (edge, prob, gain)
    let mut consider = |candidate: EdgeId| {
        if state.in_set[candidate] {
            return;
        }
        let p = if fast {
            damped_update_from_zero(g, state, entropy_h, candidate)
        } else {
            damped_update(g, state, None, CutRule::Degree, entropy_h, candidate)
        };
        let gain = insertion_gain(g, state, candidate, p);
        let better = match best {
            None => true,
            Some((be, _, bg)) => gain > bg + 1e-15 || (gain >= bg - 1e-15 && candidate < be),
        };
        if better {
            best = Some((candidate, p, gain));
        }
    };
    for (_, candidate, _) in g.neighbors(v_h) {
        consider(candidate);
    }
    consider(removed);
    let (chosen, prob, _) = best.expect("at least the removed edge itself is a candidate");
    (chosen, prob)
}

/// The gain of inserting `candidate` with probability `p` (Equation 10):
/// reduction of the squared discrepancies of its two endpoints.
fn insertion_gain(g: &UncertainGraph, state: &AssignmentState, candidate: EdgeId, p: f64) -> f64 {
    let (u, v) = g.edge_endpoints(candidate);
    let du = state.tracker.delta(u);
    let dv = state.tracker.delta(v);
    // Inserting the edge with probability p lowers the *absolute*
    // discrepancies of u and v by p; in relative mode the change is scaled by
    // the original degree.
    let pi_u = state.tracker.pi(u);
    let pi_v = state.tracker.pi(v);
    let du_after = if pi_u > 0.0 { du - p / pi_u } else { du };
    let dv_after = if pi_v > 0.0 { dv - p / pi_v } else { dv };
    (du * du - du_after * du_after) + (dv * dv - dv_after * dv_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{build_backbone, BackboneConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_graph::UncertainGraphBuilder;

    /// Figure 2/3 running example (see `gdb::tests::figure2_graph`).
    fn figure2_graph() -> (UncertainGraph, Vec<EdgeId>) {
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.4),
                (0, 2, 0.2),
                (0, 3, 0.2),
                (1, 3, 0.2),
                (2, 3, 0.1),
            ],
        )
        .unwrap();
        (g, vec![2, 3, 4])
    }

    fn random_graph(seed: u64, n: usize, m: usize) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = UncertainGraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(u, (u + 1) % n, 0.1 + 0.8 * rng.gen::<f64>())
                .unwrap();
        }
        let mut added = n;
        while added < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v
                && b.add_edge_if_absent(u, v, 0.05 + 0.9 * rng.gen::<f64>())
                    .unwrap()
            {
                added += 1;
            }
        }
        b.build()
    }

    #[test]
    fn emd_keeps_the_edge_count_and_valid_probabilities() {
        let g = random_graph(1, 30, 120);
        let mut rng = SmallRng::seed_from_u64(5);
        let backbone = build_backbone(&g, 0.3, &BackboneConfig::spanning(), &mut rng).unwrap();
        let config = EmdConfig {
            entropy_h: 1.0,
            ..Default::default()
        };
        let result = expectation_maximization_sparsify(&g, &backbone, &config).unwrap();
        assert_eq!(result.probabilities.len(), backbone.len());
        let unique: std::collections::HashSet<_> =
            result.probabilities.iter().map(|&(e, _)| e).collect();
        assert_eq!(
            unique.len(),
            backbone.len(),
            "duplicate edges in the result"
        );
        for &(e, p) in &result.probabilities {
            assert!(e < g.num_edges());
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn emd_matches_or_beats_gdb_on_the_paper_example() {
        // The paper reports that EMD restructures the Figure 2 backbone and
        // improves D1 to ~0.01, far below GDB's 0.36 on the same backbone.
        let (g, backbone) = figure2_graph();
        let emd = expectation_maximization_sparsify(
            &g,
            &backbone,
            &EmdConfig {
                entropy_h: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let gdb = gradient_descent_assign(
            &g,
            &backbone,
            &GdbConfig {
                entropy_h: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(emd.final_objective() <= gdb.final_objective() + 1e-9);
        assert!(
            emd.final_objective() < 0.1,
            "EMD objective {}",
            emd.final_objective()
        );
        assert!(emd.swaps >= 1, "expected at least one backbone swap");
    }

    #[test]
    fn emd_objective_is_monotonically_non_increasing() {
        let g = random_graph(2, 25, 90);
        let mut rng = SmallRng::seed_from_u64(3);
        let backbone = build_backbone(&g, 0.25, &BackboneConfig::random(), &mut rng).unwrap();
        let config = EmdConfig {
            entropy_h: 1.0,
            max_iterations: 10,
            ..Default::default()
        };
        let result = expectation_maximization_sparsify(&g, &backbone, &config).unwrap();
        for w in result.objective_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "trace {:?}", result.objective_trace);
        }
    }

    #[test]
    fn emd_improves_over_gdb_on_random_graphs() {
        // EMD restructures the backbone, so its objective can only be as good
        // or better than GDB run on the same initial backbone.
        for seed in 0..5u64 {
            let g = random_graph(seed + 10, 20, 70);
            let mut rng = SmallRng::seed_from_u64(seed);
            let backbone = build_backbone(&g, 0.3, &BackboneConfig::random(), &mut rng).unwrap();
            let gdb_cfg = GdbConfig {
                entropy_h: 1.0,
                ..Default::default()
            };
            let emd_cfg = EmdConfig {
                entropy_h: 1.0,
                ..Default::default()
            };
            let gdb = gradient_descent_assign(&g, &backbone, &gdb_cfg).unwrap();
            let emd = expectation_maximization_sparsify(&g, &backbone, &emd_cfg).unwrap();
            assert!(
                emd.final_objective() <= gdb.final_objective() + 1e-6,
                "seed {seed}: EMD {} vs GDB {}",
                emd.final_objective(),
                gdb.final_objective()
            );
        }
    }

    #[test]
    fn relative_variant_runs_and_respects_bounds() {
        let g = random_graph(7, 20, 60);
        let mut rng = SmallRng::seed_from_u64(1);
        let backbone = build_backbone(&g, 0.4, &BackboneConfig::spanning(), &mut rng).unwrap();
        let config = EmdConfig {
            discrepancy: DiscrepancyKind::Relative,
            entropy_h: 0.05,
            ..Default::default()
        };
        let result = expectation_maximization_sparsify(&g, &backbone, &config).unwrap();
        assert_eq!(result.probabilities.len(), backbone.len());
        for &(_, p) in &result.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
        // With h < 1 individual EM iterations are not guaranteed to be
        // monotone (entropy damping constrains both phases); we only require
        // a sane, finite objective and that the run terminated.
        assert!(result.final_objective().is_finite());
        assert!(result.final_objective() >= 0.0);
        assert!(result.iterations >= 1 && result.iterations <= config.max_iterations);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (g, backbone) = figure2_graph();
        assert!(matches!(
            expectation_maximization_sparsify(
                &g,
                &backbone,
                &EmdConfig {
                    entropy_h: 2.0,
                    ..Default::default()
                }
            ),
            Err(SparsifyError::InvalidParameter {
                name: "entropy_h",
                ..
            })
        ));
        assert!(matches!(
            expectation_maximization_sparsify(
                &g,
                &backbone,
                &EmdConfig {
                    tolerance: f64::NAN,
                    ..Default::default()
                }
            ),
            Err(SparsifyError::InvalidParameter {
                name: "tolerance",
                ..
            })
        ));
        assert!(matches!(
            expectation_maximization_sparsify(
                &g,
                &backbone,
                &EmdConfig {
                    max_iterations: 0,
                    ..Default::default()
                }
            ),
            Err(SparsifyError::InvalidParameter {
                name: "max_iterations",
                ..
            })
        ));
        // Invalid *nested* M-phase configs are rejected by both engines
        // (the indexed engine must not silently accept what the reference
        // rejects).
        for engine in [Engine::Reference, Engine::Indexed] {
            let bad_nested = EmdConfig {
                engine,
                gdb: GdbConfig {
                    max_iterations: 0,
                    ..Default::default()
                },
                ..Default::default()
            };
            assert!(
                matches!(
                    expectation_maximization_sparsify(&g, &backbone, &bad_nested),
                    Err(SparsifyError::InvalidParameter {
                        name: "max_iterations",
                        ..
                    })
                ),
                "{engine:?}"
            );
        }
        assert!(matches!(
            expectation_maximization_sparsify(&g, &[], &EmdConfig::default()),
            Err(SparsifyError::EmptyGraph)
        ));
        assert!(matches!(
            expectation_maximization_sparsify(&g, &[77], &EmdConfig::default()),
            Err(SparsifyError::Graph(_))
        ));
    }

    #[test]
    fn gain_formula_matches_direct_objective_difference() {
        let (g, backbone) = figure2_graph();
        let state = AssignmentState::new(&g, &backbone, DiscrepancyKind::Absolute);
        // Inserting edge 0 (u1-u2) with probability p must change the
        // objective by exactly -gain.
        let p = 0.35;
        let gain = insertion_gain(&g, &state, 0, p);
        let before = state.tracker.objective();
        let mut after_state = AssignmentState::new(&g, &backbone, DiscrepancyKind::Absolute);
        after_state.insert_edge(&g, 0, p);
        let after = after_state.tracker.objective();
        assert!(
            (before - after - gain).abs() < 1e-12,
            "gain {gain} vs {}",
            before - after
        );
    }
}
