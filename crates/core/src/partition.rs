//! Probability-aware shard labellings built on the backbone machinery.
//!
//! The trivial contiguous labelling
//! ([`uncertain_graph::GraphPartition::contiguous`]) ignores the edge
//! structure entirely, so on a real graph most probability mass ends up on
//! the cut.  [`spanning_partition_labels`] reuses the spine of Backbone
//! Graph Initialization (Algorithm 1): it extracts the **maximum spanning
//! forest** of the graph under the edge probabilities (Kruskal, ties broken
//! by edge id — fully deterministic), walks each tree depth-first, and carves
//! the walk into `k` balanced chunks.  High-probability edges are exactly
//! the ones the forest keeps, and a DFS segment keeps subtrees together, so
//! the expected number of cut edges per sampled world drops substantially
//! compared to the contiguous split while the shard sizes stay within one
//! vertex of each other.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use ugs_core::partition::spanning_partition_labels;
//! use ugs_datasets::{erdos_renyi, ProbabilityModel};
//! use uncertain_graph::GraphPartition;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g = erdos_renyi(60, 0.2, ProbabilityModel::Uniform { low: 0.05, high: 0.95 }, &mut rng);
//! let labels = spanning_partition_labels(&g, 3);
//! let partition = GraphPartition::from_labels(&g, &labels, 3).unwrap();
//! assert_eq!(partition.num_shards(), 3);
//! assert_eq!(partition.shard(0).num_vertices(), 20);
//! ```

use graph_algos::spanning::maximum_spanning_forest_all;
use uncertain_graph::UncertainGraph;

/// A deterministic, probability-aware `k`-shard labelling of `g`'s vertices:
/// chunked depth-first walks over the maximum spanning forest (see the
/// [module docs](self)).  Shard sizes match the contiguous split exactly —
/// the first `|V| mod k` shards get one extra vertex — so the labelling can
/// be swapped in wherever [`uncertain_graph::GraphPartition::contiguous`] is
/// used today.
///
/// # Panics
/// Panics if `num_shards == 0`.
pub fn spanning_partition_labels(g: &UncertainGraph, num_shards: usize) -> Vec<usize> {
    assert!(num_shards > 0, "a partition needs at least one shard");
    let n = g.num_vertices();
    let edges: Vec<(usize, usize, f64)> = g.edges().map(|e| (e.u, e.v, e.p)).collect();
    let forest = maximum_spanning_forest_all(n, &edges);

    // Forest adjacency (CSR-free; the forest has at most n-1 edges).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &e in &forest {
        let (u, v, _) = edges[e];
        adj[u].push(v);
        adj[v].push(u);
    }

    // Walk every tree depth-first (roots in ascending vertex order) and
    // hand vertices to shards in walk order, closing each shard once it
    // reaches its target size.
    let base = n / num_shards;
    let extra = n % num_shards;
    let target = |shard: usize| base + usize::from(shard < extra);

    let mut labels = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut shard = 0usize;
    let mut filled = 0usize;
    let mut assign = |v: usize, labels: &mut Vec<usize>| {
        while filled >= target(shard) && shard + 1 < num_shards {
            shard += 1;
            filled = 0;
        }
        labels[v] = shard;
        filled += 1;
    };
    for root in 0..n {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        stack.push(root);
        while let Some(v) = stack.pop() {
            assign(v, &mut labels);
            // Push neighbours in reverse so the walk explores them in
            // ascending order (purely cosmetic determinism).
            for i in (0..adj[v].len()).rev() {
                let w = adj[v][i];
                if !visited[w] {
                    visited[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ugs_datasets::{erdos_renyi, ProbabilityModel};
    use uncertain_graph::GraphPartition;

    #[test]
    fn shard_sizes_match_the_contiguous_split() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = erdos_renyi(
            47,
            0.15,
            ProbabilityModel::Uniform {
                low: 0.05,
                high: 0.95,
            },
            &mut rng,
        );
        for k in [1usize, 2, 3, 5] {
            let labels = spanning_partition_labels(&g, k);
            let p = GraphPartition::from_labels(&g, &labels, k).unwrap();
            let sizes: Vec<usize> = p.shards().iter().map(|s| s.num_vertices()).collect();
            let base = 47 / k;
            let extra = 47 % k;
            for (shard, &size) in sizes.iter().enumerate() {
                assert_eq!(size, base + usize::from(shard < extra), "k={k} s={shard}");
            }
        }
    }

    #[test]
    fn spanning_labels_cut_less_probability_mass_than_contiguous() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = erdos_renyi(
            120,
            0.08,
            ProbabilityModel::Uniform {
                low: 0.05,
                high: 0.95,
            },
            &mut rng,
        );
        let labels = spanning_partition_labels(&g, 4);
        let smart = GraphPartition::from_labels(&g, &labels, 4).unwrap();
        let naive = GraphPartition::contiguous(&g, 4).unwrap();
        assert!(
            smart.cut_probability_mass() <= naive.cut_probability_mass(),
            "spanning {} vs contiguous {}",
            smart.cut_probability_mass(),
            naive.cut_probability_mass()
        );
    }

    #[test]
    fn labelling_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = erdos_renyi(60, 0.1, ProbabilityModel::FlickrLike, &mut rng);
        assert_eq!(
            spanning_partition_labels(&g, 3),
            spanning_partition_labels(&g, 3)
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.5)]).unwrap();
        spanning_partition_labels(&g, 0);
    }
}
