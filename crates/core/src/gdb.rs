//! Gradient Descent Backbone (`GDB`, Algorithm 2) and the cut-preserving
//! update rules of Section 5.
//!
//! Given a backbone edge set, `GDB` keeps the structure fixed and iteratively
//! assigns each edge the probability that minimises the squared discrepancy
//! objective `D_k`, holding all other probabilities fixed.  The closed-form
//! optimum for a single edge is Equation 8 (degrees, `k = 1`) or Equation 13
//! (cuts of cardinality up to `k`); steps that would *increase* the edge's
//! entropy are damped by the factor `h ∈ [0, 1]` (Equation 9), which is how
//! the method trades discrepancy against entropy reduction.

use uncertain_graph::{entropy::edge_entropy, EdgeId, UncertainGraph};

use crate::discrepancy::{DegreeTracker, DiscrepancyKind};
use crate::error::SparsifyError;
use crate::kcut::CutRuleCoefficients;
use crate::scratch::{CoreScratch, GdbScratch};

/// Which implementation of the optimisation hot loops to run.
///
/// Both engines produce **bit-identical** results (proven by the
/// `sparsify_parity` suite); they differ only in how much work they skip:
///
/// * [`Engine::Reference`] is the paper-faithful formulation — every sweep of
///   `GDB` re-solves every backbone edge, every `EMD` E-phase rebuilds the
///   vertex heap and re-snapshots the backbone.  Retained as the parity
///   oracle and for `--engine reference` experiments.
/// * [`Engine::Indexed`] is the worklist/heap-indexed engine of
///   [`crate::scratch`]: `GDB` sweeps skip provably-no-op re-solves (clamp
///   sign-guard + change-version stamps, adaptively probed so the tests
///   never cost more than a few percent), `EMD` swaps backbone slots through
///   an O(1) position map, drives its vertex heap as a cache-aware 8-ary
///   structure with in-place Floyd rebuilds, evaluates E-phase candidates
///   log-free, and every buffer lives in a reusable [`CoreScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Full-sweep reference implementation (the bit-parity oracle).
    Reference,
    /// Worklist-driven incremental engine (bit-identical, faster).
    #[default]
    Indexed,
}

impl Engine {
    /// Parses the CLI spelling (`"reference"` / `"indexed"`).
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "reference" | "ref" => Some(Engine::Reference),
            "indexed" | "idx" => Some(Engine::Indexed),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Indexed => "indexed",
        }
    }
}

/// Which objective the gradient descent minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutRule {
    /// Preserve expected vertex degrees (`k = 1`, Equation 9).  Supports both
    /// absolute and relative discrepancies through the `π` weights.
    #[default]
    Degree,
    /// Preserve expected cut sizes for all cardinalities up to `k`
    /// (Equation 13/14).  Defined on the absolute discrepancy.
    Cuts(usize),
    /// The `k = n` limit (Equation 16): redistribute the entire missing
    /// probability mass over the remaining edges.  Equivalent to random
    /// probability reassignment; included as the `GDB^A_n` baseline variant.
    AllCuts,
}

/// Configuration of the `GDB` probability-assignment loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GdbConfig {
    /// Absolute (`GDB^A`) or relative (`GDB^R`) discrepancy.
    pub discrepancy: DiscrepancyKind,
    /// Degree rule, `k`-cut rule or the `k = n` limit.
    pub cut_rule: CutRule,
    /// Entropy parameter `h ∈ [0, 1]`: fraction of the optimal step applied
    /// when the step would increase the edge's entropy.  The paper uses 0.05
    /// as the balanced default (Figure 5).
    pub entropy_h: f64,
    /// Convergence threshold `τ` on the improvement of the objective between
    /// consecutive sweeps.
    pub tolerance: f64,
    /// Hard cap on the number of sweeps.
    pub max_iterations: usize,
    /// Which implementation to run; both are bit-identical.
    pub engine: Engine,
}

impl Default for GdbConfig {
    fn default() -> Self {
        GdbConfig {
            discrepancy: DiscrepancyKind::Absolute,
            cut_rule: CutRule::Degree,
            entropy_h: 0.05,
            tolerance: 1e-9,
            max_iterations: 200,
            engine: Engine::default(),
        }
    }
}

impl GdbConfig {
    pub(crate) fn validate(&self) -> Result<(), SparsifyError> {
        if !(0.0..=1.0).contains(&self.entropy_h) || !self.entropy_h.is_finite() {
            return Err(SparsifyError::InvalidParameter {
                name: "entropy_h",
                message: format!("{} is outside [0, 1]", self.entropy_h),
            });
        }
        if self.tolerance < 0.0 || !self.tolerance.is_finite() {
            return Err(SparsifyError::InvalidParameter {
                name: "tolerance",
                message: format!("{} must be a non-negative finite number", self.tolerance),
            });
        }
        if self.max_iterations == 0 {
            return Err(SparsifyError::InvalidParameter {
                name: "max_iterations",
                message: "must be at least 1".into(),
            });
        }
        if let CutRule::Cuts(k) = self.cut_rule {
            if k == 0 {
                return Err(SparsifyError::InvalidParameter {
                    name: "cut_rule",
                    message: "k must be at least 1".into(),
                });
            }
        }
        Ok(())
    }
}

/// Output of a `GDB` run.
#[derive(Debug, Clone)]
pub struct GdbResult {
    /// Final probability of every backbone edge (same order as the input
    /// backbone).  Probabilities may be exactly 0 when gradient descent
    /// decided an edge carries no mass; callers materialising an uncertain
    /// graph floor these at a tiny positive value.
    pub probabilities: Vec<(EdgeId, f64)>,
    /// Number of sweeps executed.
    pub iterations: usize,
    /// Objective value `D_1` before the first sweep and after each sweep.
    pub objective_trace: Vec<f64>,
    /// Entropy (bits) of the final assignment.
    pub entropy: f64,
}

impl GdbResult {
    /// Final objective value.
    pub fn final_objective(&self) -> f64 {
        *self.objective_trace.last().expect("trace is never empty")
    }
}

/// Internal mutable state shared by `GDB` and `EMD`.
///
/// The state does not borrow the graph (every method takes it explicitly),
/// so it can live inside a long-lived [`CoreScratch`] and be
/// [`reset`](AssignmentState::reset) for each run without reallocating.
#[derive(Debug, Default)]
pub(crate) struct AssignmentState {
    /// Current probability of every edge of the original graph (0 for edges
    /// outside the sparsified set).
    pub(crate) prob: Vec<f64>,
    /// Whether each edge is currently part of the sparsified edge set.
    pub(crate) in_set: Vec<bool>,
    pub(crate) tracker: DegreeTracker,
    /// `Σ_{e ∈ E'} (p_e − p̂_e)` over the *kept* edges only (Equation 16).
    pub(crate) kept_deficit: f64,
}

impl AssignmentState {
    /// Builds the state for `backbone` with the original probabilities.
    pub(crate) fn new(g: &UncertainGraph, backbone: &[EdgeId], kind: DiscrepancyKind) -> Self {
        let mut state = AssignmentState::default();
        state.reset(g, backbone, kind);
        state
    }

    /// Re-initialises the state for a new run, reusing the buffers.  The
    /// result is bit-identical to [`AssignmentState::new`]: the tracker reset
    /// reproduces the same expected degrees and the backbone edges are
    /// inserted in the same order with the same floating-point effects.
    pub(crate) fn reset(&mut self, g: &UncertainGraph, backbone: &[EdgeId], kind: DiscrepancyKind) {
        let m = g.num_edges();
        self.prob.clear();
        self.prob.resize(m, 0.0);
        self.in_set.clear();
        self.in_set.resize(m, false);
        self.tracker.reset(g, kind);
        self.kept_deficit = 0.0;
        for &e in backbone {
            let p = g.edge_probability(e);
            self.insert_edge(g, e, p);
        }
    }

    /// Adds edge `e` to the sparsified set with probability `p`.
    pub(crate) fn insert_edge(&mut self, g: &UncertainGraph, e: EdgeId, p: f64) {
        debug_assert!(!self.in_set[e], "edge {e} inserted twice");
        let (u, v) = g.edge_endpoints(e);
        self.in_set[e] = true;
        self.prob[e] = p;
        self.tracker.apply_edge_change(u, v, 0.0, p);
        self.kept_deficit += g.edge_probability(e) - p;
    }

    /// Removes edge `e` from the sparsified set (its probability becomes 0).
    pub(crate) fn remove_edge(&mut self, g: &UncertainGraph, e: EdgeId) {
        debug_assert!(self.in_set[e], "edge {e} removed but not present");
        let (u, v) = g.edge_endpoints(e);
        let old = self.prob[e];
        self.in_set[e] = false;
        self.prob[e] = 0.0;
        self.tracker.apply_edge_change(u, v, old, 0.0);
        self.kept_deficit -= g.edge_probability(e) - old;
    }

    /// Changes the probability of a kept edge.
    pub(crate) fn set_probability(&mut self, g: &UncertainGraph, e: EdgeId, new_p: f64) {
        let (u, v) = g.edge_endpoints(e);
        self.set_probability_at(e, u, v, new_p);
    }

    /// [`AssignmentState::set_probability`] with the endpoints already looked
    /// up (shared lookups in the indexed sweep; identical float effects).
    #[inline]
    pub(crate) fn set_probability_at(&mut self, e: EdgeId, u: usize, v: usize, new_p: f64) {
        debug_assert!(self.in_set[e], "edge {e} not in the sparsified set");
        let old = self.prob[e];
        if (old - new_p).abs() == 0.0 {
            return;
        }
        self.tracker.apply_edge_change(u, v, old, new_p);
        self.kept_deficit += old - new_p;
        self.prob[e] = new_p;
    }

    /// Current edge set with probabilities, in ascending edge-id order.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn kept_edges(&self) -> Vec<(EdgeId, f64)> {
        self.in_set
            .iter()
            .enumerate()
            .filter(|(_, &kept)| kept)
            .map(|(e, _)| (e, self.prob[e]))
            .collect()
    }

    /// Entropy of the current assignment (kept edges only).
    pub(crate) fn entropy(&self) -> f64 {
        self.in_set
            .iter()
            .enumerate()
            .filter(|(_, &kept)| kept)
            .map(|(e, _)| edge_entropy(self.prob[e]))
            .sum()
    }
}

/// The optimal probability step for edge `e` under the configured rule, given
/// the current state (Equations 8, 13 and 16).
pub(crate) fn optimal_step(
    g: &UncertainGraph,
    state: &AssignmentState,
    coefficients: Option<&CutRuleCoefficients>,
    cut_rule: CutRule,
    e: EdgeId,
) -> f64 {
    let (u, v) = g.edge_endpoints(e);
    optimal_step_at(g, state, coefficients, cut_rule, e, u, v)
}

/// [`optimal_step`] with the endpoints already looked up (the indexed sweep
/// loads them once per visit; passing integers cannot change any float op).
#[inline]
pub(crate) fn optimal_step_at(
    g: &UncertainGraph,
    state: &AssignmentState,
    coefficients: Option<&CutRuleCoefficients>,
    cut_rule: CutRule,
    e: EdgeId,
    u: usize,
    v: usize,
) -> f64 {
    match cut_rule {
        CutRule::Degree => {
            let pi_u = state.tracker.pi(u);
            let pi_v = state.tracker.pi(v);
            let denom = pi_u + pi_v;
            if denom <= 0.0 {
                0.0
            } else {
                (pi_v * state.tracker.delta_abs(u) + pi_u * state.tracker.delta_abs(v)) / denom
            }
        }
        CutRule::Cuts(_) => {
            let coefficients = coefficients.expect("coefficients prepared for CutRule::Cuts");
            let delta_u = state.tracker.delta_abs(u);
            let delta_v = state.tracker.delta_abs(v);
            // Δ̂(e): deficit of the edges not incident to u or v.  The total
            // deficit counts every edge once; subtracting the two endpoint
            // discrepancies removes incident edges twice for e itself, so it
            // is added back.
            let own_deficit = g.edge_probability(e) - state.prob[e];
            let non_incident = state.tracker.total_deficit() - delta_u - delta_v + own_deficit;
            coefficients.step(delta_u, delta_v, non_incident)
        }
        CutRule::AllCuts => {
            // Equation 16 distributes "the cumulative probability of
            // eliminated edges" onto each remaining edge: the step is the
            // total probability mass still missing from the assignment,
            // excluding edge e's own deficit.  (Read literally over E' the
            // sum would be identically zero at initialisation and the rule
            // would never move; the described behaviour — every edge driven
            // towards probability 1 when much mass is missing — corresponds
            // to summing the deficit over all edges of E.)
            state.tracker.total_deficit() - (g.edge_probability(e) - state.prob[e])
        }
    }
}

/// Applies one Equation-9-style update to edge `e`: take the optimal step,
/// clamp into `[0, 1]`, and damp by `h` when the step would increase the
/// edge's entropy.  Returns the new probability (the state is not modified).
pub(crate) fn damped_update(
    g: &UncertainGraph,
    state: &AssignmentState,
    coefficients: Option<&CutRuleCoefficients>,
    cut_rule: CutRule,
    entropy_h: f64,
    e: EdgeId,
) -> f64 {
    let (u, v) = g.edge_endpoints(e);
    damped_update_at(g, state, coefficients, cut_rule, entropy_h, e, u, v)
}

/// [`damped_update`] with the endpoints already looked up.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn damped_update_at(
    g: &UncertainGraph,
    state: &AssignmentState,
    coefficients: Option<&CutRuleCoefficients>,
    cut_rule: CutRule,
    entropy_h: f64,
    e: EdgeId,
    u: usize,
    v: usize,
) -> f64 {
    let old = state.prob[e];
    let step = optimal_step_at(g, state, coefficients, cut_rule, e, u, v);
    let candidate = old + step;
    if candidate < 0.0 {
        0.0
    } else if candidate > 1.0 {
        1.0
    } else if edge_entropy(candidate) > edge_entropy(old) {
        (old + entropy_h * step).clamp(0.0, 1.0)
    } else {
        candidate
    }
}

/// [`damped_update`] specialised — **bit-identically** — to an edge whose
/// current probability is exactly `0.0`, avoiding every `log2` call.
///
/// Justification, branch by branch (`old = 0`, so `candidate = 0 + step =
/// step` exactly — adding to `+0.0` is exact in IEEE arithmetic):
///
/// * `candidate < 0` and `candidate > 1` clamp before any entropy is
///   computed, exactly as in the general path.
/// * Otherwise the general path compares `edge_entropy(candidate)` with
///   `edge_entropy(0.0)`.  `edge_entropy(0.0)` is exactly `0.0` (both terms
///   vanish; `log2(1.0)` is `+0.0` by IEEE).  For `candidate` strictly
///   inside `(0, 1)` the computed `edge_entropy(candidate)` is strictly
///   positive: writing `q = max(candidate, 1 - candidate) ∈ [0.5, 1)`, the
///   term for the *other* operand `r = 1 - q ∈ (0, 0.5]` is
///   `-r·log2(r)` with true `log2(r) ≤ -1`, so any faithfully rounded
///   `log2` yields a factor `≤ -1 + ulp < 0` and the term rounds to a value
///   `> 0`; the remaining term is `≥ 0` and the sum of non-negative floats
///   with one strictly positive is strictly positive.  Hence the comparison
///   is `true` and the damped step `(0 + h·step).clamp(0, 1)` is taken.
/// * For `candidate` exactly `0.0` or `1.0`, `edge_entropy(candidate)` is
///   exactly `0.0`, the comparison is `false`, and `candidate` itself is
///   returned — again with no entropy evaluation needed.
///
/// This is the hot path of the `EMD` E-phase candidate scan (every
/// candidate is a non-kept edge, whose probability is 0 by invariant); the
/// reference engine keeps calling the general, log-evaluating path.
pub(crate) fn damped_update_from_zero(
    g: &UncertainGraph,
    state: &AssignmentState,
    entropy_h: f64,
    e: EdgeId,
) -> f64 {
    debug_assert_eq!(state.prob[e], 0.0, "fast path requires probability 0");
    let step = optimal_step(g, state, None, CutRule::Degree, e);
    let candidate = step; // 0.0 + step, exactly
    if candidate < 0.0 {
        0.0
    } else if candidate > 1.0 {
        1.0
    } else if candidate == 0.0 || candidate == 1.0 {
        candidate
    } else {
        (entropy_h * step).clamp(0.0, 1.0)
    }
}

/// Validates the backbone edge ids against the graph.
pub(crate) fn validate_backbone(
    g: &UncertainGraph,
    backbone: &[EdgeId],
) -> Result<(), SparsifyError> {
    if backbone.is_empty() {
        return Err(SparsifyError::EmptyGraph);
    }
    for &e in backbone {
        if e >= g.num_edges() {
            return Err(SparsifyError::Graph(
                uncertain_graph::GraphError::EdgeOutOfRange {
                    edge: e,
                    num_edges: g.num_edges(),
                },
            ));
        }
    }
    Ok(())
}

/// The cut-rule coefficients needed by `config`, if any.
pub(crate) fn prepare_coefficients(
    g: &UncertainGraph,
    config: &GdbConfig,
) -> Option<CutRuleCoefficients> {
    match config.cut_rule {
        CutRule::Cuts(k) => Some(CutRuleCoefficients::new(g.num_vertices().max(2), k)),
        _ => None,
    }
}

/// The paper-faithful sweep loop: every sweep re-solves **every** backbone
/// edge.  `trace` receives the objective before the first sweep and after
/// each sweep; the return value is the number of sweeps executed.
pub(crate) fn reference_sweeps(
    g: &UncertainGraph,
    state: &mut AssignmentState,
    backbone: &[EdgeId],
    config: &GdbConfig,
    coefficients: Option<&CutRuleCoefficients>,
    trace: &mut Vec<f64>,
) -> usize {
    trace.clear();
    trace.push(state.tracker.objective());
    let mut iterations = 0usize;
    for _ in 0..config.max_iterations {
        let before = state.tracker.objective();
        for &e in backbone {
            let new_p = damped_update(g, state, coefficients, config.cut_rule, config.entropy_h, e);
            state.set_probability(g, e, new_p);
        }
        let after = state.tracker.objective();
        trace.push(after);
        iterations += 1;
        if (before - after).abs() <= config.tolerance {
            break;
        }
    }
    iterations
}

/// Per-backbone-edge worklist stamps of the indexed engine (see
/// [`crate::scratch`] for the machinery overview).
///
/// A backbone slot is *clean* — provably a no-op to revisit — iff its last
/// re-solve left the probability unchanged (its `noop` bit is set) **and**
/// none of the inputs of [`damped_update`] moved since: the endpoint
/// discrepancies (tracked by the per-vertex change versions) and, for the
/// `Cuts`/`AllCuts` rules, the global deficit (tracked by the global change
/// version).  `damped_update` is a pure function of those inputs, so
/// revisiting a clean slot would recompute the same no-op the reference
/// sweep performs — which is exactly why skipping it is bit-identical.
///
/// The hot `noop` bits live in their own dense array (one byte per slot, so
/// a sweep over a mostly-active backbone touches almost no extra memory);
/// the version triples are only read or written for slots whose last visit
/// was a no-op.
#[derive(Debug, Default)]
pub(crate) struct WorklistStamps {
    /// Whether each slot's last visit changed nothing.  All `false`
    /// initially, so the first sweep visits everything — just like the
    /// reference.
    noop: Vec<bool>,
    /// `(endpoint u, endpoint v, global)` change versions recorded after
    /// each slot's last no-op visit.
    versions: Vec<(u64, u64, u64)>,
}

impl WorklistStamps {
    /// Marks every slot dirty for a backbone of `len` slots.
    fn reset(&mut self, len: usize) {
        self.noop.clear();
        self.noop.resize(len, false);
        self.versions.clear();
        self.versions.resize(len, (0, 0, 0));
    }
}

/// The worklist sweep loop: bit-identical to [`reference_sweeps`] (same visit
/// order for every edge that is revisited; skipped visits are provable
/// no-ops), but each sweep only re-solves dirty slots.  Two complementary
/// skip tests run before a re-solve:
///
/// * **Clamp sign-guard** (`Degree` rule only): an edge pinned at
///   probability 1 whose endpoint discrepancies are both ≥ 0 re-solves to
///   exactly 1 — the Equation-8 step is a quotient of products/sums of
///   non-negative floats, which IEEE keeps sign-exact, so the candidate
///   stays ≥ 1 and clamps back to 1 (and symmetrically at probability 0
///   with non-positive discrepancies).  This is the workhorse in the
///   saturating regimes the paper highlights (Section 6.3), where most kept
///   edges are driven to 1 early and stay there while their neighbourhoods
///   keep adjusting.
/// * **Version stamps**: a slot whose last re-solve was a no-op needs no
///   revisit while the endpoint change versions (and, for the global cut
///   rules, the global version) recorded in its [`WorklistStamps`] are
///   current — the update is a pure function of the stamped inputs.
pub(crate) fn indexed_sweeps(
    g: &UncertainGraph,
    state: &mut AssignmentState,
    backbone: &[EdgeId],
    config: &GdbConfig,
    coefficients: Option<&CutRuleCoefficients>,
    stamps: &mut WorklistStamps,
    trace: &mut Vec<f64>,
) -> usize {
    stamps.reset(backbone.len());
    trace.clear();
    trace.push(state.tracker.objective());
    let degree_rule = matches!(config.cut_rule, CutRule::Degree);
    // Adaptive probing: the skip tests cost a few nanoseconds per visit and
    // the skippable solves are the *cheap* ones (a clamped edge's update
    // early-returns before any `log2`), so guarded sweeps only pay off when
    // nearly everything is skippable.  When a guarded probe sweep skips less
    // than 90% of the backbone, the next `PLAIN_STREAK` sweeps run the
    // unguarded body — float-for-float the reference loop — before probing
    // again, capping the worst-case overhead at a couple of percent.  Stamps
    // may go stale during plain sweeps; that is sound, because the version
    // comparison against the monotone change counters still detects every
    // interim change.
    const PLAIN_STREAK: usize = 15;
    let mut plain_remaining = 0usize;
    let mut iterations = 0usize;
    for _ in 0..config.max_iterations {
        let before = state.tracker.objective();
        if plain_remaining > 0 {
            plain_remaining -= 1;
            for &e in backbone {
                let (u, v) = g.edge_endpoints(e);
                let new_p = damped_update_at(
                    g,
                    state,
                    coefficients,
                    config.cut_rule,
                    config.entropy_h,
                    e,
                    u,
                    v,
                );
                state.set_probability_at(e, u, v, new_p);
            }
        } else {
            let mut skipped = 0usize;
            for (slot, &e) in backbone.iter().enumerate() {
                let (u, v) = g.edge_endpoints(e);
                if degree_rule {
                    // Clamp sign-guard: provably a no-op, whatever the exact
                    // discrepancy values (NaN-safe: comparisons are false).
                    let p = state.prob[e];
                    if p == 1.0 {
                        if state.tracker.delta_abs(u) >= 0.0 && state.tracker.delta_abs(v) >= 0.0 {
                            skipped += 1;
                            continue;
                        }
                    } else if p == 0.0
                        && state.tracker.delta_abs(u) <= 0.0
                        && state.tracker.delta_abs(v) <= 0.0
                    {
                        skipped += 1;
                        continue;
                    }
                }
                if stamps.noop[slot] {
                    let (last_u, last_v, last_global) = stamps.versions[slot];
                    if state.tracker.vertex_version(u) == last_u
                        && state.tracker.vertex_version(v) == last_v
                        && (degree_rule || state.tracker.change_version() == last_global)
                    {
                        skipped += 1;
                        continue;
                    }
                }
                let old = state.prob[e];
                let new_p = damped_update_at(
                    g,
                    state,
                    coefficients,
                    config.cut_rule,
                    config.entropy_h,
                    e,
                    u,
                    v,
                );
                state.set_probability_at(e, u, v, new_p);
                // The same no-op condition `set_probability` uses; versions
                // are only recorded for no-ops (a changed slot stays dirty
                // anyway).
                if (old - new_p).abs() == 0.0 {
                    stamps.noop[slot] = true;
                    stamps.versions[slot] = (
                        state.tracker.vertex_version(u),
                        state.tracker.vertex_version(v),
                        state.tracker.change_version(),
                    );
                } else {
                    stamps.noop[slot] = false;
                }
            }
            if skipped * 10 < backbone.len() * 9 {
                plain_remaining = PLAIN_STREAK;
            }
        }
        let after = state.tracker.objective();
        trace.push(after);
        iterations += 1;
        if (before - after).abs() <= config.tolerance {
            break;
        }
    }
    iterations
}

/// Runs `GDB` (Algorithm 2) on a fixed backbone, returning the tuned
/// probabilities.  Dispatches on [`GdbConfig::engine`]; the indexed engine
/// allocates a transient scratch — use [`gradient_descent_assign_with`] to
/// amortise it across runs.
///
/// The backbone edge ids must be distinct and valid for `g`.
pub fn gradient_descent_assign(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &GdbConfig,
) -> Result<GdbResult, SparsifyError> {
    let mut scratch = CoreScratch::new();
    gradient_descent_assign_with(g, backbone, config, &mut scratch)
}

/// [`gradient_descent_assign`] with caller-provided scratch space: repeated
/// runs reuse every buffer, so warm sweeps perform zero heap allocations
/// (proven by the counting-allocator suite in `crates/bench/tests`).
pub fn gradient_descent_assign_with(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &GdbConfig,
    scratch: &mut CoreScratch,
) -> Result<GdbResult, SparsifyError> {
    config.validate()?;
    validate_backbone(g, backbone)?;
    let coefficients = prepare_coefficients(g, config);
    Ok(run_gdb(g, backbone, config, coefficients.as_ref(), &mut scratch.gdb).to_result(backbone))
}

/// Shared core of the public `GDB` entry points and the `EMD` M-phase: reset
/// the scratch state, run the configured sweep loop, and leave the tuned
/// assignment in `scratch.state` (callers decide whether to materialise a
/// [`GdbResult`], avoiding per-M-phase allocations in `EMD`).
pub(crate) fn run_gdb<'s>(
    g: &UncertainGraph,
    backbone: &[EdgeId],
    config: &GdbConfig,
    coefficients: Option<&CutRuleCoefficients>,
    scratch: &'s mut GdbScratch,
) -> &'s mut GdbScratch {
    scratch.state.reset(g, backbone, config.discrepancy);
    scratch.iterations = match config.engine {
        Engine::Reference => reference_sweeps(
            g,
            &mut scratch.state,
            backbone,
            config,
            coefficients,
            &mut scratch.trace,
        ),
        Engine::Indexed => indexed_sweeps(
            g,
            &mut scratch.state,
            backbone,
            config,
            coefficients,
            &mut scratch.stamps,
            &mut scratch.trace,
        ),
    };
    scratch
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_graph::entropy::assignment_entropy;

    /// The running example of Figures 2–3 of the paper: the uncertain graph
    /// whose backbone (bold edges) is {(u1,u4), (u2,u4), (u3,u4)}.
    ///
    /// Graph edges: (u1,u2,0.4), (u1,u3,0.2), (u1,u4,0.2), (u2,u4,0.2),
    /// (u3,u4,0.1).  Expected degrees: u1 = 0.8, u2 = 0.6, u3 = 0.3,
    /// u4 = 0.5, so the initial backbone discrepancies are
    /// δ = (0.6, 0.4, 0.2, 0) and D1 = 0.56, exactly the starting objective
    /// the paper quotes for Figure 2.
    fn figure2_graph() -> (UncertainGraph, Vec<EdgeId>) {
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.4), // u1-u2
                (0, 2, 0.2), // u1-u3
                (0, 3, 0.2), // u1-u4
                (1, 3, 0.2), // u2-u4
                (2, 3, 0.1), // u3-u4
            ],
        )
        .unwrap();
        let backbone = vec![2, 3, 4]; // the three edges incident to u4
        (g, backbone)
    }

    #[test]
    fn objective_never_increases_and_entropy_drops_with_h1() {
        let (g, backbone) = figure2_graph();
        let config = GdbConfig {
            entropy_h: 1.0,
            ..Default::default()
        };
        let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
        for w in result.objective_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "objective increased: {:?}",
                result.objective_trace
            );
        }
        // The paper reports the objective improving from 0.56 to 0.36 on this
        // example (with h = 1); coordinate descent converges to the exact
        // optimum D1 = 0.36 of the backbone, so we require getting there up
        // to the sweep tolerance.
        assert!((result.objective_trace[0] - 0.56).abs() < 1e-9);
        assert!(result.final_objective() <= 0.36 + 1e-4);
        assert!(result.final_objective() < result.objective_trace[0]);
        // The backbone starts with entropy Σ H(p) of the three kept edges;
        // GDB raises probabilities towards 1 so entropy must not increase
        // relative to the *original full graph*.
        let original_entropy = g.entropy();
        assert!(result.entropy < original_entropy);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let (g, backbone) = figure2_graph();
        for h in [0.0, 0.05, 0.5, 1.0] {
            let config = GdbConfig {
                entropy_h: h,
                ..Default::default()
            };
            let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
            for &(_, p) in &result.probabilities {
                assert!((0.0..=1.0).contains(&p), "h={h}, p={p}");
            }
        }
    }

    #[test]
    fn h_zero_never_increases_edge_entropy() {
        let (g, backbone) = figure2_graph();
        let config = GdbConfig {
            entropy_h: 0.0,
            ..Default::default()
        };
        let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
        for &(e, p) in &result.probabilities {
            let original = g.edge_probability(e);
            assert!(
                edge_entropy(p) <= edge_entropy(original) + 1e-12,
                "edge {e}: H({p}) > H({original})"
            );
        }
    }

    #[test]
    fn h_one_yields_lower_objective_than_h_zero() {
        let (g, backbone) = figure2_graph();
        let zero = gradient_descent_assign(
            &g,
            &backbone,
            &GdbConfig {
                entropy_h: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let one = gradient_descent_assign(
            &g,
            &backbone,
            &GdbConfig {
                entropy_h: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(one.final_objective() <= zero.final_objective() + 1e-12);
        // with h = 0 every per-edge move must keep that edge's entropy from
        // rising, so the total assignment entropy cannot exceed the entropy
        // the same edges had in the original graph.
        let h0_entropy = assignment_entropy(
            &zero
                .probabilities
                .iter()
                .map(|&(_, p)| p)
                .collect::<Vec<_>>(),
        );
        let backbone_original_entropy = assignment_entropy(
            &zero
                .probabilities
                .iter()
                .map(|&(e, _)| g.edge_probability(e))
                .collect::<Vec<_>>(),
        );
        assert!(h0_entropy <= backbone_original_entropy + 1e-9);
    }

    #[test]
    fn relative_discrepancy_variant_converges() {
        let (g, backbone) = figure2_graph();
        let config = GdbConfig {
            discrepancy: DiscrepancyKind::Relative,
            entropy_h: 1.0,
            ..Default::default()
        };
        let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
        // Equation 8's step zeroes the *sum* of the endpoint relative
        // discrepancies rather than the exact least-squares minimiser, so the
        // relative objective may oscillate by tiny amounts near the fixed
        // point; overall it must still drop substantially from the raw
        // backbone and never blow up.
        assert!(result.final_objective() < 0.9 * result.objective_trace[0]);
        for w in result.objective_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-3, "trace step {:?}", w);
        }
        for &(_, p) in &result.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn k2_rule_improves_cut_discrepancy_over_the_raw_backbone() {
        let (g, backbone) = figure2_graph();
        let config = GdbConfig {
            cut_rule: CutRule::Cuts(2),
            entropy_h: 1.0,
            ..Default::default()
        };
        let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
        for &(_, p) in &result.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
        // Exhaustively check the 2-cut objective D2 = Σ_{|S| ≤ 2} δA(S)²
        // against the untouched backbone (original probabilities): the tuned
        // probabilities must not be worse.
        let d2 = |probs: &dyn Fn(usize) -> f64| -> f64 {
            let n = g.num_vertices();
            let cut = |members: &[usize]| -> (f64, f64) {
                let mut orig = 0.0;
                let mut sparse = 0.0;
                for e in g.edges() {
                    let u_in = members.contains(&e.u);
                    let v_in = members.contains(&e.v);
                    if u_in != v_in {
                        orig += e.p;
                        sparse += probs(e.id);
                    }
                }
                (orig, sparse)
            };
            let mut total = 0.0;
            for u in 0..n {
                let (o, s) = cut(&[u]);
                total += (o - s).powi(2);
            }
            for u in 0..n {
                for v in (u + 1)..n {
                    let (o, s) = cut(&[u, v]);
                    total += (o - s).powi(2);
                }
            }
            total
        };
        let tuned: std::collections::HashMap<usize, f64> =
            result.probabilities.iter().copied().collect();
        let backbone_set: std::collections::HashSet<usize> = backbone.iter().copied().collect();
        let tuned_d2 = d2(&|e| tuned.get(&e).copied().unwrap_or(0.0));
        let raw_d2 = d2(&|e| {
            if backbone_set.contains(&e) {
                g.edge_probability(e)
            } else {
                0.0
            }
        });
        assert!(
            tuned_d2 <= raw_d2 + 1e-9,
            "tuned {tuned_d2} vs raw {raw_d2}"
        );
    }

    #[test]
    fn all_cuts_rule_pushes_probabilities_up() {
        // GDB^A_n redistributes the whole missing mass onto every edge, so on
        // a low-probability graph every kept edge is driven towards 1.
        let (g, backbone) = figure2_graph();
        let config = GdbConfig {
            cut_rule: CutRule::AllCuts,
            entropy_h: 1.0,
            ..Default::default()
        };
        let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
        // missing mass is large (≈ 0.8) so each edge should exceed its
        // original probability.
        for &(e, p) in &result.probabilities {
            assert!(p >= g.edge_probability(e) - 1e-12);
        }
    }

    #[test]
    fn degree_rule_on_trivially_satisfiable_backbone_is_exact() {
        // A graph where the backbone equals the full edge set: the optimal
        // assignment is the original probabilities and the objective is 0.
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.4), (1, 2, 0.7)]).unwrap();
        let backbone = vec![0, 1];
        let result = gradient_descent_assign(&g, &backbone, &GdbConfig::default()).unwrap();
        assert!(result.final_objective() < 1e-18);
        for &(e, p) in &result.probabilities {
            assert!((p - g.edge_probability(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (g, backbone) = figure2_graph();
        let bad_h = GdbConfig {
            entropy_h: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            gradient_descent_assign(&g, &backbone, &bad_h),
            Err(SparsifyError::InvalidParameter {
                name: "entropy_h",
                ..
            })
        ));
        let bad_tol = GdbConfig {
            tolerance: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            gradient_descent_assign(&g, &backbone, &bad_tol),
            Err(SparsifyError::InvalidParameter {
                name: "tolerance",
                ..
            })
        ));
        let bad_iter = GdbConfig {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(matches!(
            gradient_descent_assign(&g, &backbone, &bad_iter),
            Err(SparsifyError::InvalidParameter {
                name: "max_iterations",
                ..
            })
        ));
        let bad_k = GdbConfig {
            cut_rule: CutRule::Cuts(0),
            ..Default::default()
        };
        assert!(matches!(
            gradient_descent_assign(&g, &backbone, &bad_k),
            Err(SparsifyError::InvalidParameter {
                name: "cut_rule",
                ..
            })
        ));
        assert!(matches!(
            gradient_descent_assign(&g, &[], &GdbConfig::default()),
            Err(SparsifyError::EmptyGraph)
        ));
        assert!(matches!(
            gradient_descent_assign(&g, &[99], &GdbConfig::default()),
            Err(SparsifyError::Graph(_))
        ));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (g, backbone) = figure2_graph();
        let config = GdbConfig {
            max_iterations: 1,
            tolerance: 0.0,
            ..Default::default()
        };
        let result = gradient_descent_assign(&g, &backbone, &config).unwrap();
        assert_eq!(result.iterations, 1);
        assert_eq!(result.objective_trace.len(), 2);
    }

    #[test]
    fn assignment_state_bookkeeping_is_consistent() {
        let (g, backbone) = figure2_graph();
        let mut state = AssignmentState::new(&g, &backbone, DiscrepancyKind::Absolute);
        // kept_deficit starts at 0 because the backbone uses original
        // probabilities.
        assert!(state.kept_deficit.abs() < 1e-12);
        state.set_probability(&g, 2, 0.5);
        assert!((state.kept_deficit - (0.2 - 0.5)).abs() < 1e-12);
        state.remove_edge(&g, 2);
        assert!(state.kept_deficit.abs() < 1e-12);
        state.insert_edge(&g, 2, 0.7);
        assert!((state.kept_deficit - (0.2 - 0.7)).abs() < 1e-12);
        assert_eq!(state.kept_edges().len(), 3);
        // tracker total deficit counts dropped edges (0, 1) too
        let dropped_mass = 0.4 + 0.2;
        let expected_total = dropped_mass + (0.2 - 0.7);
        assert!((state.tracker.total_deficit() - expected_total).abs() < 1e-12);
    }

    #[test]
    fn reset_state_is_bit_identical_to_fresh_state() {
        let (g, backbone) = figure2_graph();
        let fresh = AssignmentState::new(&g, &backbone, DiscrepancyKind::Relative);
        // Pollute a state with a different run, then reset it.
        let mut reused = AssignmentState::new(&g, &[0, 1], DiscrepancyKind::Absolute);
        reused.set_probability(&g, 0, 0.9);
        reused.reset(&g, &backbone, DiscrepancyKind::Relative);
        assert_eq!(
            fresh.prob.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            reused.prob.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(fresh.in_set, reused.in_set);
        assert_eq!(
            fresh.tracker.objective().to_bits(),
            reused.tracker.objective().to_bits()
        );
        assert_eq!(fresh.kept_deficit.to_bits(), reused.kept_deficit.to_bits());
    }

    #[test]
    fn engine_parse_and_names() {
        assert_eq!(Engine::parse("reference"), Some(Engine::Reference));
        assert_eq!(Engine::parse("ref"), Some(Engine::Reference));
        assert_eq!(Engine::parse("indexed"), Some(Engine::Indexed));
        assert_eq!(Engine::parse("idx"), Some(Engine::Indexed));
        assert_eq!(Engine::parse("magic"), None);
        assert_eq!(Engine::Reference.name(), "reference");
        assert_eq!(Engine::Indexed.name(), "indexed");
        assert_eq!(Engine::default(), Engine::Indexed);
    }

    #[test]
    fn both_engines_agree_bitwise_on_the_paper_example() {
        let (g, backbone) = figure2_graph();
        for h in [0.0, 0.05, 1.0] {
            let reference = gradient_descent_assign(
                &g,
                &backbone,
                &GdbConfig {
                    entropy_h: h,
                    engine: Engine::Reference,
                    ..Default::default()
                },
            )
            .unwrap();
            let indexed = gradient_descent_assign(
                &g,
                &backbone,
                &GdbConfig {
                    entropy_h: h,
                    engine: Engine::Indexed,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(reference.iterations, indexed.iterations, "h={h}");
            for (r, i) in reference
                .probabilities
                .iter()
                .zip(indexed.probabilities.iter())
            {
                assert_eq!(r.0, i.0);
                assert_eq!(r.1.to_bits(), i.1.to_bits(), "h={h}");
            }
        }
    }
}
