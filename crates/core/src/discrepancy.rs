//! Degree discrepancies (`δA`, `δR`) and the incremental tracker shared by
//! `GDB`, `EMD` and the evaluation metrics.
//!
//! For a vertex set `S`, the paper defines the *absolute discrepancy*
//! `δA(S) = C_G(S) − C_G'(S)` (difference of expected cut sizes) and the
//! *relative discrepancy* `δR(S) = δA(S) / C_G(S)`.  For `k = 1` the set `S`
//! is a single vertex and the expected cut size is simply the expected
//! degree, so minimising `Δ1` preserves expected degrees.
//!
//! [`DegreeTracker`] maintains, for a candidate sparsified assignment, the
//! per-vertex absolute discrepancies `δA(u)` and the objective
//! `D1 = Σ_u δ(u)²` (with `δ` either absolute or relative), updating both in
//! `O(1)` per edge-probability change.  This is the inner loop of both
//! proposed sparsifiers.

use uncertain_graph::{UncertainGraph, VertexId};

/// Which discrepancy the objective targets.
///
/// The paper's variants are denoted with `A` / `R` superscripts (e.g.
/// `GDB^A`, `EMD^R`): the absolute discrepancy emphasises high-degree
/// vertices (large absolute errors), while the relative discrepancy treats
/// all degrees equally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscrepancyKind {
    /// Absolute discrepancy `δA(u) = d_G(u) − d_G'(u)`.
    #[default]
    Absolute,
    /// Relative discrepancy `δR(u) = δA(u) / d_G(u)`.
    Relative,
}

impl DiscrepancyKind {
    /// The weight `π(u)` of Equation 7: 1 for the absolute discrepancy and
    /// the original expected degree `C_G(u)` for the relative one.
    pub fn pi(&self, original_expected_degree: f64) -> f64 {
        match self {
            DiscrepancyKind::Absolute => 1.0,
            DiscrepancyKind::Relative => original_expected_degree,
        }
    }
}

/// Incremental tracker of per-vertex degree discrepancies for a candidate
/// probability assignment.
///
/// The tracker starts from the *empty* assignment (no edges kept), in which
/// `δA(u) = d_G(u)` for every vertex, and is updated through
/// [`DegreeTracker::apply_edge_change`] as edges are added, removed or have
/// their probability tuned.
///
/// Besides the discrepancies themselves the tracker maintains *change
/// versions*: a per-vertex counter bumped whenever `δ(u)` moves and a global
/// counter bumped on every effective change.  These are the seed of the
/// worklist-driven `GDB` engine (see `ugs_core::scratch`): an edge whose last
/// re-solve was a no-op needs no revisit while its endpoint versions (and,
/// for the global cut rules, the global version) are unchanged.
#[derive(Debug, Clone, Default)]
pub struct DegreeTracker {
    /// Expected degrees in the original graph (`d` in the paper).
    original: Vec<f64>,
    /// Current absolute discrepancies `δA(u) = d_G(u) − d_G'(u)`.
    delta: Vec<f64>,
    kind: DiscrepancyKind,
    /// Bumped whenever `delta[u]` changes (the worklist invalidation hook).
    vertex_version: Vec<u64>,
    /// Bumped on every effective [`DegreeTracker::apply_edge_change`].
    change_version: u64,
}

impl DegreeTracker {
    /// Creates a tracker for graph `g` with the empty assignment
    /// (`d_G'(u) = 0` everywhere).
    pub fn new(g: &UncertainGraph, kind: DiscrepancyKind) -> Self {
        let mut tracker = DegreeTracker::default();
        tracker.reset(g, kind);
        tracker
    }

    /// Re-initialises the tracker for graph `g` with the empty assignment,
    /// reusing the existing buffers (no allocation once the capacity fits).
    /// The resulting state is bit-identical to [`DegreeTracker::new`].
    pub fn reset(&mut self, g: &UncertainGraph, kind: DiscrepancyKind) {
        let n = g.num_vertices();
        self.original.clear();
        self.original.resize(n, 0.0);
        for e in g.edges() {
            self.original[e.u] += e.p;
            self.original[e.v] += e.p;
        }
        self.delta.clear();
        self.delta.extend_from_slice(&self.original);
        self.kind = kind;
        self.vertex_version.clear();
        self.vertex_version.resize(n, 0);
        self.change_version = 0;
    }

    /// The discrepancy kind this tracker scores.
    pub fn kind(&self) -> DiscrepancyKind {
        self.kind
    }

    /// Number of vertices tracked.
    pub fn num_vertices(&self) -> usize {
        self.original.len()
    }

    /// Original expected degree `d_G(u)`.
    #[inline]
    pub fn original_degree(&self, u: VertexId) -> f64 {
        self.original[u]
    }

    /// Current absolute discrepancy `δA(u)`.
    #[inline]
    pub fn delta_abs(&self, u: VertexId) -> f64 {
        self.delta[u]
    }

    /// Current discrepancy in the tracker's own kind: `δA(u)` for
    /// [`DiscrepancyKind::Absolute`], `δA(u)/d_G(u)` for
    /// [`DiscrepancyKind::Relative`] (0 when `d_G(u) = 0`).
    #[inline]
    pub fn delta(&self, u: VertexId) -> f64 {
        match self.kind {
            DiscrepancyKind::Absolute => self.delta[u],
            DiscrepancyKind::Relative => {
                if self.original[u] > 0.0 {
                    self.delta[u] / self.original[u]
                } else {
                    0.0
                }
            }
        }
    }

    /// The weight `π(u)` of Equation 7 for this tracker's discrepancy kind.
    #[inline]
    pub fn pi(&self, u: VertexId) -> f64 {
        self.kind.pi(self.original[u])
    }

    /// Records that the probability of an edge `(u, v)` changed from
    /// `old_p` to `new_p` in the candidate assignment (use `old_p = 0` for a
    /// newly added edge and `new_p = 0` for a removed edge).
    ///
    /// An effective change (`old_p ≠ new_p`) bumps the change versions of
    /// both endpoints and the global change version; a zero shift leaves the
    /// discrepancies and versions untouched.
    #[inline]
    pub fn apply_edge_change(&mut self, u: VertexId, v: VertexId, old_p: f64, new_p: f64) {
        let shift = old_p - new_p;
        if shift != 0.0 {
            self.delta[u] += shift;
            self.delta[v] += shift;
            self.vertex_version[u] += 1;
            self.vertex_version[v] += 1;
            self.change_version += 1;
        }
    }

    /// Change version of vertex `u`: bumped every time `δ(u)` moves.
    ///
    /// The worklist `GDB` engine stamps each backbone edge with the versions
    /// of its endpoints after re-solving it; the edge needs no further visits
    /// while the stamps are current and the last re-solve was a no-op.
    #[inline]
    pub fn vertex_version(&self, u: VertexId) -> u64 {
        self.vertex_version[u]
    }

    /// Global change version: bumped on every effective edge change.  The
    /// `Cuts(k)`/`AllCuts` update rules read the *total* deficit, so their
    /// worklist stamps must also track this global counter.
    #[inline]
    pub fn change_version(&self) -> u64 {
        self.change_version
    }

    /// The objective `D1 = Σ_u δ(u)²` (Section 4.2), using the tracker's
    /// discrepancy kind.
    pub fn objective(&self) -> f64 {
        (0..self.original.len())
            .map(|u| self.delta(u).powi(2))
            .sum()
    }

    /// Sum of absolute values `Δ1 = Σ_u |δ(u)|` (the quantity Problem 1
    /// minimises for `k = 1`).
    pub fn delta1(&self) -> f64 {
        (0..self.original.len()).map(|u| self.delta(u).abs()).sum()
    }

    /// Mean absolute error of the degree discrepancy over all vertices —
    /// the quantity reported in Table 2 and Figures 6–7 of the paper.
    pub fn mean_absolute_error(&self) -> f64 {
        if self.original.is_empty() {
            0.0
        } else {
            self.delta1() / self.original.len() as f64
        }
    }

    /// Total probability mass still missing from the candidate assignment,
    /// `Σ_e (p_e − p̂_e) = ½ Σ_u δA(u)`.  Used by the cut-preserving update
    /// rules (term `Δ̂(e)` of Equation 13).
    pub fn total_deficit(&self) -> f64 {
        self.delta.iter().sum::<f64>() / 2.0
    }

    /// Per-vertex absolute discrepancies.
    pub fn deltas_abs(&self) -> &[f64] {
        &self.delta
    }
}

/// Computes the vector of absolute degree discrepancies between an original
/// graph and a sparsified graph over the same vertex set.
///
/// # Panics
/// Panics if the graphs have different vertex counts.
pub fn degree_discrepancies(original: &UncertainGraph, sparsified: &UncertainGraph) -> Vec<f64> {
    assert_eq!(
        original.num_vertices(),
        sparsified.num_vertices(),
        "graphs must share a vertex set"
    );
    let d0 = original.expected_degrees();
    let d1 = sparsified.expected_degrees();
    d0.iter().zip(d1.iter()).map(|(a, b)| a - b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_graph::UncertainGraph;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.4),
                (1, 2, 0.2),
                (2, 3, 0.4),
                (0, 3, 0.2),
                (0, 2, 0.1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_assignment_has_delta_equal_to_degrees() {
        let g = toy();
        let t = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        for u in g.vertices() {
            assert!((t.delta_abs(u) - g.expected_degree(u)).abs() < 1e-12);
            assert!((t.delta(u) - g.expected_degree(u)).abs() < 1e-12);
        }
        assert!((t.total_deficit() - g.expected_num_edges()).abs() < 1e-12);
        assert_eq!(t.num_vertices(), 4);
        assert_eq!(t.kind(), DiscrepancyKind::Absolute);
    }

    #[test]
    fn applying_full_original_assignment_zeroes_discrepancy() {
        let g = toy();
        let mut t = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        for e in g.edges() {
            t.apply_edge_change(e.u, e.v, 0.0, e.p);
        }
        assert!(t.objective() < 1e-20);
        assert!(t.delta1() < 1e-10);
        assert!(t.total_deficit().abs() < 1e-12);
        assert_eq!(t.mean_absolute_error(), t.delta1() / 4.0);
    }

    #[test]
    fn edge_change_moves_only_its_endpoints() {
        let g = toy();
        let mut t = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        let before: Vec<f64> = (0..4).map(|u| t.delta_abs(u)).collect();
        t.apply_edge_change(0, 1, 0.0, 0.4);
        assert!((t.delta_abs(0) - (before[0] - 0.4)).abs() < 1e-12);
        assert!((t.delta_abs(1) - (before[1] - 0.4)).abs() < 1e-12);
        assert!((t.delta_abs(2) - before[2]).abs() < 1e-12);
        assert!((t.delta_abs(3) - before[3]).abs() < 1e-12);
        // now undo it
        t.apply_edge_change(0, 1, 0.4, 0.0);
        for (u, &b) in before.iter().enumerate() {
            assert!((t.delta_abs(u) - b).abs() < 1e-12);
        }
    }

    #[test]
    fn relative_discrepancy_scales_by_original_degree() {
        let g = toy();
        let mut t = DegreeTracker::new(&g, DiscrepancyKind::Relative);
        t.apply_edge_change(0, 1, 0.0, 0.4);
        let d0 = g.expected_degree(0);
        assert!((t.delta(0) - (d0 - 0.4) / d0).abs() < 1e-12);
        assert_eq!(t.kind(), DiscrepancyKind::Relative);
        assert!((t.pi(0) - d0).abs() < 1e-12);
        // absolute π is 1
        let ta = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        assert_eq!(ta.pi(0), 1.0);
    }

    #[test]
    fn relative_discrepancy_of_isolated_vertex_is_zero() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let t = DegreeTracker::new(&g, DiscrepancyKind::Relative);
        assert_eq!(t.delta(2), 0.0);
        assert_eq!(t.pi(2), 0.0);
    }

    #[test]
    fn objective_matches_manual_computation() {
        let g = toy();
        let mut t = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        t.apply_edge_change(0, 1, 0.0, 0.3);
        let manual: f64 = (0..4).map(|u| t.delta(u).powi(2)).sum();
        assert!((t.objective() - manual).abs() < 1e-12);
    }

    #[test]
    fn degree_discrepancies_between_graphs() {
        let g = toy();
        let kept: Vec<(usize, f64)> = vec![(0, 0.8), (2, 0.8)];
        let s = g.subgraph_with_probabilities(kept).unwrap();
        let d = degree_discrepancies(&g, &s);
        let d0 = g.expected_degrees();
        let d1 = s.expected_degrees();
        for u in 0..4 {
            assert!((d[u] - (d0[u] - d1[u])).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "share a vertex set")]
    fn degree_discrepancies_panics_on_mismatched_graphs() {
        let a = UncertainGraph::from_edges(2, [(0, 1, 0.5)]).unwrap();
        let b = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        degree_discrepancies(&a, &b);
    }

    #[test]
    fn change_versions_track_effective_changes_only() {
        let g = toy();
        let mut t = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        assert_eq!(t.vertex_version(0), 0);
        assert_eq!(t.change_version(), 0);
        // A zero shift moves nothing.
        t.apply_edge_change(0, 1, 0.4, 0.4);
        assert_eq!(t.vertex_version(0), 0);
        assert_eq!(t.vertex_version(1), 0);
        assert_eq!(t.change_version(), 0);
        // An effective change bumps both endpoints and the global counter.
        t.apply_edge_change(0, 1, 0.0, 0.4);
        assert_eq!(t.vertex_version(0), 1);
        assert_eq!(t.vertex_version(1), 1);
        assert_eq!(t.vertex_version(2), 0);
        assert_eq!(t.change_version(), 1);
        t.apply_edge_change(1, 2, 0.4, 0.1);
        assert_eq!(t.vertex_version(1), 2);
        assert_eq!(t.vertex_version(2), 1);
        assert_eq!(t.change_version(), 2);
    }

    #[test]
    fn reset_matches_fresh_tracker_bit_for_bit() {
        let g = toy();
        let fresh = DegreeTracker::new(&g, DiscrepancyKind::Relative);
        let mut reused = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        reused.apply_edge_change(0, 1, 0.0, 0.9);
        reused.reset(&g, DiscrepancyKind::Relative);
        assert_eq!(reused.kind(), DiscrepancyKind::Relative);
        assert_eq!(reused.change_version(), 0);
        for u in g.vertices() {
            assert_eq!(fresh.delta_abs(u).to_bits(), reused.delta_abs(u).to_bits());
            assert_eq!(
                fresh.original_degree(u).to_bits(),
                reused.original_degree(u).to_bits()
            );
            assert_eq!(reused.vertex_version(u), 0);
        }
        assert_eq!(fresh.objective().to_bits(), reused.objective().to_bits());
    }

    #[test]
    fn deltas_abs_exposes_internal_state() {
        let g = toy();
        let t = DegreeTracker::new(&g, DiscrepancyKind::Absolute);
        assert_eq!(t.deltas_abs().len(), 4);
        assert!((t.original_degree(0) - g.expected_degree(0)).abs() < 1e-12);
    }
}
