//! # ugs-core
//!
//! The paper's primary contribution: **uncertain graph sparsification**.
//!
//! Given an uncertain graph `G = (V, E, p)` and a sparsification ratio
//! `α ∈ (0, 1)`, the algorithms in this crate produce a sparsified uncertain
//! graph `G' = (V, E', p')` with `|E'| = α|E|` that
//!
//! 1. preserves the *expected vertex degrees* (`Δ1`) or, more generally, the
//!    *expected cut sizes* up to a cardinality `k` (`Δk`), and
//! 2. has *lower entropy* than `G`, so Monte-Carlo query estimation on `G'`
//!    needs fewer samples and each sample is cheaper (fewer edges).
//!
//! ## Components
//!
//! * [`backbone`] — Backbone Graph Initialization (`BGI`, Algorithm 1):
//!   iterated maximum spanning forests followed by probability-proportional
//!   sampling, guaranteeing a connected support for the sparsified graph.
//! * [`gdb`] — Gradient Descent Backbone (`GDB`, Algorithm 2): iteratively
//!   sets each backbone edge to the probability that minimises the squared
//!   discrepancy objective, capping entropy-increasing steps by the
//!   parameter `h` (Equation 9), and generalised cut-preserving update rules
//!   for any `k ≥ 1` (Equations 13–16).
//! * [`emd`] — Expectation-Maximization Degree (`EMD`, Algorithm 3): an
//!   EM-style loop whose E-phase restructures the backbone by swapping edges
//!   towards the vertex with the worst discrepancy (kept in an indexed
//!   max-heap) and whose M-phase re-runs `GDB` on the new backbone.
//! * [`lp_assign`] — the optimal `Δ1` probability assignment of Theorem 1,
//!   solved with the workspace simplex solver (`lp-solver`); the accuracy
//!   reference of Table 2.
//! * [`discrepancy`] — absolute (`δA`) and relative (`δR`) degree
//!   discrepancies and the shared incremental tracker.
//! * [`kcut`] — the closed-form coefficients of the general cut-preserving
//!   rule (the `(n choose k)_Σ` enumeration function), evaluated in log space
//!   so arbitrarily large `n`/`k` never overflow.
//! * [`scratch`] — the reusable [`CoreScratch`] workspace behind the
//!   worklist-indexed engine ([`gdb::Engine`]): incremental dirty-edge
//!   stamps for `GDB`, a persistent vertex heap for `EMD`, and
//!   zero-allocation steady-state loops, all bit-identical to the reference
//!   sweeps.
//! * [`spec`] — a builder-style front end ([`SparsifierSpec`]) plus the
//!   [`Sparsifier`] trait implemented by every method (including the
//!   baselines in `ugs-baselines`), so benchmarks and applications can treat
//!   all sparsifiers uniformly.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use uncertain_graph::UncertainGraph;
//! use ugs_core::prelude::*;
//!
//! // K4 with probability 0.3 on every edge (Figure 1(a) of the paper).
//! let g = UncertainGraph::from_edges(
//!     4,
//!     [(0, 1, 0.3), (0, 2, 0.3), (0, 3, 0.3), (1, 2, 0.3), (1, 3, 0.3), (2, 3, 0.3)],
//! )
//! .unwrap();
//!
//! let spec = SparsifierSpec::gdb().alpha(0.5).entropy_h(1.0);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let out = spec.sparsify(&g, &mut rng).unwrap();
//! assert_eq!(out.graph.num_edges(), 3);          // α|E| edges
//! assert!(out.graph.entropy() <= g.entropy());   // entropy reduced
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backbone;
pub mod discrepancy;
pub mod emd;
pub mod error;
pub mod gdb;
pub mod kcut;
pub mod lp_assign;
pub mod partition;
pub mod representative;
pub mod scratch;
pub mod spec;

pub use backbone::{build_backbone, build_backbone_into, BackboneConfig, BackboneKind};
pub use discrepancy::{DegreeTracker, DiscrepancyKind};
pub use emd::{
    expectation_maximization_sparsify, expectation_maximization_sparsify_with, EmdConfig, EmdResult,
};
pub use error::SparsifyError;
pub use gdb::{
    gradient_descent_assign, gradient_descent_assign_with, CutRule, Engine, GdbConfig, GdbResult,
};
pub use partition::spanning_partition_labels;
pub use scratch::CoreScratch;
pub use spec::{Diagnostics, Method, PhaseTimings, Sparsifier, SparsifierSpec, SparsifyOutput};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::backbone::{build_backbone, build_backbone_into, BackboneConfig, BackboneKind};
    pub use crate::discrepancy::{DegreeTracker, DiscrepancyKind};
    pub use crate::emd::EmdConfig;
    pub use crate::error::SparsifyError;
    pub use crate::gdb::{CutRule, Engine, GdbConfig};
    pub use crate::partition::spanning_partition_labels;
    pub use crate::scratch::CoreScratch;
    pub use crate::spec::{
        Diagnostics, Method, PhaseTimings, Sparsifier, SparsifierSpec, SparsifyOutput,
    };
}
