//! High-level front end: [`SparsifierSpec`], the [`Sparsifier`] trait and the
//! [`SparsifyOutput`] produced by every method.
//!
//! The spec mirrors the framework of Section 3.3: pick a backbone
//! construction, pick a probability-assignment method (`GDB`, `EMD` or the
//! `LP` reference), pick the discrepancy flavour and the entropy parameter
//! `h`, then call [`SparsifierSpec::sparsify`].  The baselines adapted from
//! deterministic sparsification (`NI`, `SS`) live in the `ugs-baselines`
//! crate and implement the same [`Sparsifier`] trait, so experiments can
//! iterate over a `Vec<Box<dyn Sparsifier>>`.

use std::time::{Duration, Instant};

use rand::RngCore;
use uncertain_graph::{EdgeId, UncertainGraph};

use crate::backbone::{build_backbone_into, target_edge_count, BackboneConfig, BackboneKind};
use crate::discrepancy::DiscrepancyKind;
use crate::emd::{expectation_maximization_sparsify_with, EmdConfig};
use crate::error::SparsifyError;
use crate::gdb::{gradient_descent_assign_with, CutRule, Engine, GdbConfig};
use crate::lp_assign::lp_assign;
use crate::scratch::CoreScratch;

/// Probabilities of exactly zero are floored at this value when a sparsified
/// [`UncertainGraph`] is materialised, so that `|E'| = α|E|` holds while the
/// edge stays numerically negligible (an uncertain edge must have
/// probability in `(0, 1]`).
pub const MIN_PROBABILITY: f64 = 1e-9;

/// Probability-assignment method of the proposed framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Gradient Descent Backbone (Algorithm 2).
    Gdb,
    /// Expectation-Maximization Degree (Algorithm 3).
    Emd,
    /// The LP reference of Theorem 1 (optimal `Δ1`, slow).
    Lp,
}

impl Method {
    /// Canonical display name, including the paper's variant notation.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Gdb => "GDB",
            Method::Emd => "EMD",
            Method::Lp => "LP",
        }
    }
}

/// Per-phase wall-clock breakdown of a sparsification run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Backbone construction (`BGI`, Algorithm 1).
    pub backbone: Duration,
    /// Probability optimisation (`GDB`/`EMD`/`LP`).
    pub optimize: Duration,
    /// Materialisation of the sparsified [`UncertainGraph`].
    pub materialize: Duration,
}

/// Execution statistics reported alongside every sparsified graph.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// Human-readable method description (e.g. `"EMD^R-t"`).
    pub method: String,
    /// Requested sparsification ratio `α`.
    pub alpha: f64,
    /// Number of edges in the sparsified graph (`round(α|E|)`).
    pub target_edges: usize,
    /// Iterations of the main optimisation loop (sweeps for `GDB`, EM rounds
    /// for `EMD`, simplex pivots for `LP`, calibration rounds for the
    /// baselines).
    pub iterations: usize,
    /// Backbone swaps (only non-zero for `EMD`).
    pub swaps: usize,
    /// Objective value before and after each iteration, when the method
    /// tracks one.
    pub objective_trace: Vec<f64>,
    /// Entropy of the original graph (bits).
    pub entropy_original: f64,
    /// Entropy of the sparsified graph (bits).
    pub entropy_sparsified: f64,
    /// Wall-clock time spent inside the sparsifier.
    pub elapsed: Duration,
    /// Per-phase wall-clock breakdown (all zero for methods that do not go
    /// through the backbone/optimise/materialise pipeline, e.g. baselines).
    pub phases: PhaseTimings,
}

impl Diagnostics {
    /// Relative entropy `H(G') / H(G)` (0 when the original entropy is 0).
    pub fn relative_entropy(&self) -> f64 {
        if self.entropy_original <= 0.0 {
            0.0
        } else {
            self.entropy_sparsified / self.entropy_original
        }
    }
}

/// A sparsified uncertain graph together with run diagnostics.
#[derive(Debug, Clone)]
pub struct SparsifyOutput {
    /// The sparsified graph `G' = (V, E', p')`.
    pub graph: UncertainGraph,
    /// Statistics about the run.
    pub diagnostics: Diagnostics,
}

/// Object-safe interface implemented by every sparsification method in the
/// workspace (the proposed `GDB`/`EMD`/`LP` here, the `NI`/`SS` baselines in
/// `ugs-baselines`).
pub trait Sparsifier {
    /// Short display name (e.g. `"EMD^R-t"`, `"NI"`).
    fn name(&self) -> String;

    /// Produces the sparsified graph.
    fn sparsify_dyn(
        &self,
        g: &UncertainGraph,
        rng: &mut dyn RngCore,
    ) -> Result<SparsifyOutput, SparsifyError>;
}

/// Builder-style specification of a sparsification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifierSpec {
    method: Method,
    alpha: f64,
    discrepancy: DiscrepancyKind,
    backbone: BackboneConfig,
    cut_rule: CutRule,
    entropy_h: f64,
    tolerance: f64,
    max_iterations: usize,
    engine: Engine,
}

impl SparsifierSpec {
    fn new(method: Method) -> Self {
        SparsifierSpec {
            method,
            alpha: 0.16,
            discrepancy: DiscrepancyKind::Absolute,
            backbone: BackboneConfig::default(),
            cut_rule: CutRule::Degree,
            entropy_h: 0.05,
            tolerance: 1e-9,
            max_iterations: 50,
            engine: Engine::default(),
        }
    }

    /// A `GDB` specification with the paper's default settings
    /// (absolute discrepancy, spanning backbone, `h = 0.05`).
    pub fn gdb() -> Self {
        Self::new(Method::Gdb)
    }

    /// An `EMD` specification with the paper's default settings.
    pub fn emd() -> Self {
        Self::new(Method::Emd)
    }

    /// The LP reference method (optimal `Δ1` on the backbone).
    pub fn lp() -> Self {
        Self::new(Method::Lp)
    }

    /// Sets the sparsification ratio `α ∈ (0, 1)`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Selects the absolute or relative discrepancy objective.
    pub fn discrepancy(mut self, kind: DiscrepancyKind) -> Self {
        self.discrepancy = kind;
        self
    }

    /// Selects the backbone construction (random vs Algorithm 1).
    pub fn backbone(mut self, kind: BackboneKind) -> Self {
        self.backbone.kind = kind;
        self
    }

    /// Overrides the full backbone configuration.
    pub fn backbone_config(mut self, config: BackboneConfig) -> Self {
        self.backbone = config;
        self
    }

    /// Selects the cut-preserving rule (`k = 1` degrees by default).
    /// Only meaningful for `GDB`.
    pub fn cut_rule(mut self, rule: CutRule) -> Self {
        self.cut_rule = rule;
        self
    }

    /// Sets the entropy parameter `h ∈ [0, 1]`.
    pub fn entropy_h(mut self, h: f64) -> Self {
        self.entropy_h = h;
        self
    }

    /// Sets the convergence tolerance `τ`.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Caps the number of optimisation iterations.
    pub fn max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Selects the optimisation engine (the worklist-indexed engine by
    /// default; [`Engine::Reference`] runs the paper-faithful full sweeps).
    /// Both engines are bit-identical; only meaningful for `GDB` and `EMD`.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The configured method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The configured engine.
    pub fn configured_engine(&self) -> Engine {
        self.engine
    }

    /// The configured ratio.
    pub fn configured_alpha(&self) -> f64 {
        self.alpha
    }

    /// Display name in the paper's notation, e.g. `"EMD^R-t"` or `"GDB^A"`
    /// (the `-t` suffix marks the spanning backbone, the superscript the
    /// discrepancy kind, the subscript the cut rule).
    pub fn display_name(&self) -> String {
        let disc = match self.discrepancy {
            DiscrepancyKind::Absolute => "A",
            DiscrepancyKind::Relative => "R",
        };
        let cut = match self.cut_rule {
            CutRule::Degree => String::new(),
            CutRule::Cuts(k) => format!("_{k}"),
            CutRule::AllCuts => "_n".to_string(),
        };
        let backbone = match self.backbone.kind {
            BackboneKind::Random => "",
            BackboneKind::SpanningForests => "-t",
            BackboneKind::LocalDegree => "-ld",
        };
        format!("{}^{disc}{cut}{backbone}", self.method.name())
    }

    /// Runs the configured sparsifier on `g`.
    ///
    /// Allocates a transient [`CoreScratch`]; use
    /// [`SparsifierSpec::sparsify_with`] to amortise the workspace across
    /// repeated runs (parameter sweeps, per-shard sparsification).
    pub fn sparsify<R: RngCore + ?Sized>(
        &self,
        g: &UncertainGraph,
        rng: &mut R,
    ) -> Result<SparsifyOutput, SparsifyError> {
        let mut scratch = CoreScratch::new();
        self.sparsify_with(g, rng, &mut scratch)
    }

    /// [`SparsifierSpec::sparsify`] with caller-provided scratch space: the
    /// backbone builder, the optimisation loops and all their graph-sized
    /// buffers are reused across calls.  Results are identical to
    /// [`SparsifierSpec::sparsify`] for the same graph, spec and RNG state.
    pub fn sparsify_with<R: RngCore + ?Sized>(
        &self,
        g: &UncertainGraph,
        rng: &mut R,
        scratch: &mut CoreScratch,
    ) -> Result<SparsifyOutput, SparsifyError> {
        let start = Instant::now();
        let target = target_edge_count(g, self.alpha)?;
        // The backbone buffer is taken out of the scratch so the optimisation
        // phases can borrow the scratch mutably; it is returned afterwards,
        // keeping its capacity warm for the next run.
        let mut backbone = std::mem::take(&mut scratch.spec_backbone);
        let phase_started = Instant::now();
        let built = build_backbone_into(g, self.alpha, &self.backbone, rng, scratch, &mut backbone);
        if let Err(error) = built {
            scratch.spec_backbone = backbone;
            return Err(error);
        }
        let backbone_elapsed = phase_started.elapsed();
        debug_assert_eq!(backbone.len(), target);

        let gdb_config = GdbConfig {
            discrepancy: self.discrepancy,
            cut_rule: self.cut_rule,
            entropy_h: self.entropy_h,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
            engine: self.engine,
        };

        // (assignment, iterations, swaps, objective trace)
        type Optimized = (Vec<(EdgeId, f64)>, usize, usize, Vec<f64>);
        let phase_started = Instant::now();
        let optimized: Result<Optimized, SparsifyError> = match self.method {
            Method::Gdb => {
                gradient_descent_assign_with(g, &backbone, &gdb_config, scratch).map(|result| {
                    (
                        result.probabilities,
                        result.iterations,
                        0,
                        result.objective_trace,
                    )
                })
            }
            Method::Emd => {
                let config = EmdConfig {
                    discrepancy: self.discrepancy,
                    entropy_h: self.entropy_h,
                    tolerance: self.tolerance,
                    max_iterations: self.max_iterations,
                    engine: self.engine,
                    gdb: gdb_config,
                };
                expectation_maximization_sparsify_with(g, &backbone, &config, scratch).map(
                    |result| {
                        (
                            result.probabilities,
                            result.iterations,
                            result.swaps,
                            result.objective_trace,
                        )
                    },
                )
            }
            Method::Lp => lp_assign(g, &backbone)
                .map(|result| (result.probabilities, result.pivots, 0, Vec::new())),
        };
        let optimize_elapsed = phase_started.elapsed();
        scratch.spec_backbone = backbone;
        let (assignment, iterations, swaps, trace) = optimized?;

        let phase_started = Instant::now();
        let graph = materialize(g, &assignment)?;
        let materialize_elapsed = phase_started.elapsed();
        let diagnostics = Diagnostics {
            method: self.display_name(),
            alpha: self.alpha,
            target_edges: target,
            iterations,
            swaps,
            objective_trace: trace,
            entropy_original: g.entropy(),
            entropy_sparsified: graph.entropy(),
            elapsed: start.elapsed(),
            phases: PhaseTimings {
                backbone: backbone_elapsed,
                optimize: optimize_elapsed,
                materialize: materialize_elapsed,
            },
        };
        Ok(SparsifyOutput { graph, diagnostics })
    }
}

impl Sparsifier for SparsifierSpec {
    fn name(&self) -> String {
        self.display_name()
    }

    fn sparsify_dyn(
        &self,
        g: &UncertainGraph,
        rng: &mut dyn RngCore,
    ) -> Result<SparsifyOutput, SparsifyError> {
        self.sparsify(g, rng)
    }
}

/// Materialises a probability assignment as an [`UncertainGraph`] over the
/// original vertex set, flooring zero probabilities at [`MIN_PROBABILITY`].
pub fn materialize(
    g: &UncertainGraph,
    assignment: &[(EdgeId, f64)],
) -> Result<UncertainGraph, SparsifyError> {
    let edges = assignment.iter().map(|&(e, p)| {
        (
            e,
            if p > MIN_PROBABILITY {
                p.min(1.0)
            } else {
                MIN_PROBABILITY
            },
        )
    });
    Ok(g.subgraph_with_probabilities(edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_graph::UncertainGraphBuilder;

    fn test_graph(seed: u64, n: usize, m: usize) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = UncertainGraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(u, (u + 1) % n, 0.1 + 0.8 * rng.gen::<f64>())
                .unwrap();
        }
        let mut added = n;
        while added < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v
                && b.add_edge_if_absent(u, v, 0.05 + 0.9 * rng.gen::<f64>())
                    .unwrap()
            {
                added += 1;
            }
        }
        b.build()
    }

    #[test]
    fn every_method_produces_the_requested_edge_count() {
        let g = test_graph(1, 40, 160);
        for (spec, expected_edges) in [
            (SparsifierSpec::gdb().alpha(0.25), 40),
            (SparsifierSpec::emd().alpha(0.25), 40),
            (SparsifierSpec::lp().alpha(0.25), 40),
            (SparsifierSpec::gdb().alpha(0.5), 80),
        ] {
            let mut rng = SmallRng::seed_from_u64(3);
            let out = spec.sparsify(&g, &mut rng).unwrap();
            assert_eq!(
                out.graph.num_edges(),
                expected_edges,
                "{}",
                spec.display_name()
            );
            assert_eq!(out.graph.num_vertices(), g.num_vertices());
            assert_eq!(out.diagnostics.target_edges, expected_edges);
            for e in out.graph.edges() {
                assert!(e.p > 0.0 && e.p <= 1.0);
            }
        }
    }

    #[test]
    fn sparsified_graphs_reduce_entropy_with_default_h() {
        let g = test_graph(2, 30, 120);
        // α = 0.7 keeps more edges than the expected edge count, so the
        // optimal assignment does not fully saturate at probability 1 and a
        // strictly positive (but reduced) entropy remains.
        for spec in [
            SparsifierSpec::gdb().alpha(0.7),
            SparsifierSpec::emd().alpha(0.7),
        ] {
            let mut rng = SmallRng::seed_from_u64(5);
            let out = spec.sparsify(&g, &mut rng).unwrap();
            assert!(
                out.diagnostics.entropy_sparsified < out.diagnostics.entropy_original,
                "{}: {} !< {}",
                spec.display_name(),
                out.diagnostics.entropy_sparsified,
                out.diagnostics.entropy_original
            );
            let rel = out.diagnostics.relative_entropy();
            assert!(
                rel > 0.0 && rel < 1.0,
                "{}: rel = {rel}",
                spec.display_name()
            );
        }
    }

    #[test]
    fn aggressive_sparsification_saturates_probabilities_and_kills_entropy() {
        // When α|E| is below the expected number of edges the missing mass is
        // so large that every kept edge is driven to probability 1 — the
        // mechanism the paper credits for the large variance reductions at
        // small α (Section 6.3).
        let g = test_graph(2, 30, 120);
        let mut rng = SmallRng::seed_from_u64(5);
        let out = SparsifierSpec::gdb()
            .alpha(0.3)
            .sparsify(&g, &mut rng)
            .unwrap();
        let deterministic = out.graph.edges().filter(|e| e.p >= 1.0 - 1e-12).count();
        assert!(deterministic as f64 >= 0.9 * out.graph.num_edges() as f64);
        assert!(out.diagnostics.relative_entropy() < 0.05);
    }

    #[test]
    fn gdb_reduces_degree_discrepancy_relative_to_raw_backbone() {
        let g = test_graph(3, 30, 120);
        let mut rng = SmallRng::seed_from_u64(9);
        let out = SparsifierSpec::gdb()
            .alpha(0.3)
            .entropy_h(1.0)
            .sparsify(&g, &mut rng)
            .unwrap();
        let trace = &out.diagnostics.objective_trace;
        assert!(trace.last().unwrap() < trace.first().unwrap());
    }

    #[test]
    fn display_names_follow_paper_notation() {
        assert_eq!(SparsifierSpec::gdb().display_name(), "GDB^A-t");
        assert_eq!(
            SparsifierSpec::gdb()
                .backbone(BackboneKind::Random)
                .display_name(),
            "GDB^A"
        );
        assert_eq!(
            SparsifierSpec::emd()
                .discrepancy(DiscrepancyKind::Relative)
                .display_name(),
            "EMD^R-t"
        );
        assert_eq!(
            SparsifierSpec::gdb()
                .cut_rule(CutRule::Cuts(2))
                .backbone(BackboneKind::Random)
                .display_name(),
            "GDB^A_2"
        );
        assert_eq!(
            SparsifierSpec::gdb()
                .cut_rule(CutRule::AllCuts)
                .backbone(BackboneKind::Random)
                .display_name(),
            "GDB^A_n"
        );
        assert_eq!(SparsifierSpec::lp().display_name(), "LP^A-t");
    }

    #[test]
    fn spec_accessors_and_trait_object_dispatch() {
        let spec = SparsifierSpec::emd().alpha(0.4).entropy_h(0.1);
        assert_eq!(spec.method(), Method::Emd);
        assert!((spec.configured_alpha() - 0.4).abs() < 1e-12);
        assert_eq!(Method::Emd.name(), "EMD");

        let g = test_graph(4, 20, 60);
        let sparsifiers: Vec<Box<dyn Sparsifier>> = vec![
            Box::new(SparsifierSpec::gdb().alpha(0.4)),
            Box::new(SparsifierSpec::emd().alpha(0.4)),
        ];
        let mut rng = SmallRng::seed_from_u64(1);
        for s in &sparsifiers {
            let out = s.sparsify_dyn(&g, &mut rng).unwrap();
            assert_eq!(out.graph.num_edges(), 24);
            assert_eq!(out.diagnostics.method, s.name());
        }
    }

    #[test]
    fn invalid_alpha_is_rejected_before_any_work() {
        let g = test_graph(5, 10, 20);
        let mut rng = SmallRng::seed_from_u64(0);
        for alpha in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            let result = SparsifierSpec::gdb().alpha(alpha).sparsify(&g, &mut rng);
            assert!(
                matches!(result, Err(SparsifyError::InvalidAlpha { .. })),
                "alpha {alpha}"
            );
        }
    }

    #[test]
    fn materialize_floors_zero_probabilities() {
        let g = test_graph(6, 10, 20);
        let assignment = vec![(0, 0.0), (1, 0.5), (2, 1.0)];
        let s = materialize(&g, &assignment).unwrap();
        assert_eq!(s.num_edges(), 3);
        let probs: Vec<f64> = s.edges().map(|e| e.p).collect();
        assert!(probs.iter().all(|&p| p > 0.0 && p <= 1.0));
        assert!(probs.contains(&MIN_PROBABILITY));
    }

    #[test]
    fn relative_entropy_of_zero_entropy_original_is_zero() {
        let d = Diagnostics {
            method: "x".into(),
            alpha: 0.5,
            target_edges: 1,
            iterations: 1,
            swaps: 0,
            objective_trace: vec![],
            entropy_original: 0.0,
            entropy_sparsified: 0.0,
            elapsed: Duration::from_millis(1),
            phases: PhaseTimings::default(),
        };
        assert_eq!(d.relative_entropy(), 0.0);
    }
}
