//! Error types shared by all sparsifiers.

use std::fmt;

use uncertain_graph::GraphError;

/// Errors raised while sparsifying an uncertain graph.
#[derive(Debug, Clone, PartialEq)]
pub enum SparsifyError {
    /// The sparsification ratio was outside the open interval `(0, 1)`.
    InvalidAlpha {
        /// The rejected ratio.
        alpha: f64,
    },
    /// The requested ratio leaves no edges at all (`⌊α|E|⌉ = 0`).
    NoEdgesSelected {
        /// The requested ratio.
        alpha: f64,
        /// Number of edges in the input graph.
        num_edges: usize,
    },
    /// The input graph has no edges.
    EmptyGraph,
    /// A configuration parameter was invalid (e.g. `h` outside `[0, 1]`).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The linear-programming solver failed.
    Lp(String),
    /// An underlying graph operation failed (should not happen for valid
    /// inputs; indicates a bug).
    Graph(GraphError),
}

impl fmt::Display for SparsifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparsifyError::InvalidAlpha { alpha } => {
                write!(f, "sparsification ratio {alpha} must be in (0, 1)")
            }
            SparsifyError::NoEdgesSelected { alpha, num_edges } => write!(
                f,
                "ratio {alpha} of {num_edges} edges rounds to zero edges; nothing to sparsify into"
            ),
            SparsifyError::EmptyGraph => write!(f, "the input graph has no edges"),
            SparsifyError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            SparsifyError::Lp(msg) => write!(f, "LP solver failure: {msg}"),
            SparsifyError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl std::error::Error for SparsifyError {}

impl From<GraphError> for SparsifyError {
    fn from(err: GraphError) -> Self {
        SparsifyError::Graph(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SparsifyError, &str)> = vec![
            (
                SparsifyError::InvalidAlpha { alpha: 1.5 },
                "must be in (0, 1)",
            ),
            (
                SparsifyError::NoEdgesSelected {
                    alpha: 0.001,
                    num_edges: 10,
                },
                "zero edges",
            ),
            (SparsifyError::EmptyGraph, "no edges"),
            (
                SparsifyError::InvalidParameter {
                    name: "h",
                    message: "must be in [0,1]".into(),
                },
                "invalid parameter h",
            ),
            (SparsifyError::Lp("iteration limit".into()), "LP solver"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn graph_error_converts() {
        let err: SparsifyError = GraphError::SelfLoop { vertex: 3 }.into();
        assert!(matches!(err, SparsifyError::Graph(_)));
        assert!(err.to_string().contains("self loop"));
    }
}
