//! Reusable workspace for the indexed sparsification engine.
//!
//! The hot loops of this crate — backbone construction, the `GDB` sweep loop
//! and the `EMD` E/M-phases — all need graph-sized buffers.  The reference
//! implementations allocate them per call, which is fine for a one-shot
//! sparsification but wasteful for parameter sweeps and the per-shard use
//! envisioned by the ROADMAP's graph-sharded direction.  [`CoreScratch`]
//! owns every buffer once and is threaded through
//! [`build_backbone_into`](crate::backbone::build_backbone_into),
//! [`gradient_descent_assign_with`](crate::gdb::gradient_descent_assign_with),
//! [`expectation_maximization_sparsify_with`](crate::emd::expectation_maximization_sparsify_with)
//! and [`SparsifierSpec::sparsify_with`](crate::spec::SparsifierSpec::sparsify_with):
//! after a warm-up run, steady-state `GDB` sweeps and `EMD` E-phase
//! iterations perform **zero** heap allocations (proven by the counting
//! `#[global_allocator]` suite in `crates/bench/tests/zero_alloc.rs`).
//!
//! # The worklist machinery
//!
//! Two incremental indexes make [`Engine::Indexed`](crate::gdb::Engine) fast
//! while staying bit-identical to the reference sweeps:
//!
//! * **Worklist `GDB`** — a sweep walks the backbone in the reference visit
//!   order but skips slots it can *prove* are no-ops, two ways.  The clamp
//!   **sign-guard**: an edge pinned at probability 1 whose endpoint
//!   discrepancies are both non-negative re-solves to exactly 1 (the
//!   Equation-8 step is a quotient of products and sums of non-negative
//!   floats, which IEEE arithmetic keeps sign-exact), and symmetrically at
//!   probability 0 — the workhorse in the saturating regimes of Section 6.3
//!   where most kept edges hit 1 early and stay.  The **version stamps**:
//!   [`DegreeTracker`](crate::discrepancy::DegreeTracker) bumps a per-vertex
//!   *change version* in `apply_edge_change` whenever a discrepancy moves
//!   (plus one global version for the `Cuts`/`AllCuts` rules, whose
//!   closed-form step reads the total deficit), and every backbone slot
//!   carries an `EdgeStamp` recording the versions seen after its last
//!   no-op re-solve; while the stamps are current the update — a pure
//!   function of the stamped inputs — would recompute the same no-op.
//!   Bit-identity follows by construction; the `sparsify_parity` suite
//!   checks it across the full configuration grid.
//! * **Heap-driven `EMD`** — the reference rebuilds the max-heap over
//!   `|δ(u)|` with `O(|V| log |V|)` pushes into a freshly allocated heap at
//!   the start of every E-phase and re-clones the backbone snapshot.  The
//!   indexed engine re-heapifies in place (`O(|V|)` Floyd build into reused
//!   buffers), reuses the snapshot buffer, and maintains an edge →
//!   backbone-position map so swap bookkeeping is `O(1)` instead of a
//!   linear scan per swap.  The heap's ordering is total (priority, then
//!   smaller vertex id), so its maximum is unique and independent of the
//!   internal layout — peeks agree with the reference heap bit for bit.

use graph_algos::FlatMaxHeap;
use uncertain_graph::EdgeId;

use crate::gdb::{AssignmentState, WorklistStamps};

/// Scratch space for one `GDB` run (also the `EMD` M-phase workspace).
#[derive(Debug, Default)]
pub(crate) struct GdbScratch {
    /// The probability assignment under optimisation.
    pub(crate) state: AssignmentState,
    /// Worklist stamps, one per backbone slot.
    pub(crate) stamps: WorklistStamps,
    /// Objective trace of the current run.
    pub(crate) trace: Vec<f64>,
    /// Sweeps executed by the current run.
    pub(crate) iterations: usize,
}

impl GdbScratch {
    /// Materialises the run recorded in this scratch as a `GdbResult`
    /// (allocates the output vectors; the run itself does not).
    pub(crate) fn to_result(&self, backbone: &[EdgeId]) -> crate::gdb::GdbResult {
        crate::gdb::GdbResult {
            probabilities: backbone.iter().map(|&e| (e, self.state.prob[e])).collect(),
            iterations: self.iterations,
            objective_trace: self.trace.clone(),
            entropy: self.state.entropy(),
        }
    }
}

/// Scratch space for one `EMD` run.
#[derive(Debug)]
pub(crate) struct EmdScratch {
    /// The outer probability assignment evolved across EM iterations.
    pub(crate) state: AssignmentState,
    /// Reusable cache-aware max-heap over the vertex discrepancies
    /// `|δ(u)|` (same total order as the reference's binary heap, so peeks
    /// agree bit for bit).
    pub(crate) heap: FlatMaxHeap,
    /// Reusable E-phase snapshot of the backbone.
    pub(crate) snapshot: Vec<EdgeId>,
    /// The evolving backbone edge set.
    pub(crate) backbone: Vec<EdgeId>,
    /// `position_of[e]` = slot of `e` in `backbone` (valid only for kept
    /// edges; maintained on every swap).
    pub(crate) position_of: Vec<usize>,
    /// Objective trace across EM iterations.
    pub(crate) trace: Vec<f64>,
    /// M-phase workspace.
    pub(crate) mphase: GdbScratch,
}

impl Default for EmdScratch {
    fn default() -> Self {
        EmdScratch {
            state: AssignmentState::default(),
            heap: FlatMaxHeap::new(),
            snapshot: Vec::new(),
            backbone: Vec::new(),
            position_of: Vec::new(),
            trace: Vec::new(),
            mphase: GdbScratch::default(),
        }
    }
}

/// Scratch space for backbone construction.
#[derive(Debug, Default)]
pub(crate) struct BackboneScratch {
    /// Edge-selected flags.
    pub(crate) selected: Vec<bool>,
    /// Sweep order / remaining-edge pool for the Bernoulli phases.
    pub(crate) order: Vec<EdgeId>,
    /// Weighted-sampling pool.
    pub(crate) pool: Vec<EdgeId>,
    /// `(u, v, p)` triples for the spanning-forest extraction.
    pub(crate) weighted: Vec<(usize, usize, f64)>,
    /// Membership flags of the current spanning forest.
    pub(crate) in_forest: Vec<bool>,
    /// Local-degree nominations `(hub score, edge)`.
    pub(crate) nominated: Vec<(f64, EdgeId)>,
    /// Per-vertex incident-edge buffer of the local-degree construction.
    pub(crate) incident: Vec<(f64, EdgeId)>,
}

/// The shared workspace of the indexed sparsification engine.
///
/// Create one with [`CoreScratch::new`] and pass it to the `*_with` /
/// `*_into` entry points; every buffer is sized on first use and reused
/// afterwards.  A single scratch can serve graphs of different sizes and any
/// mix of `GDB`/`EMD`/backbone calls — each run fully re-initialises the
/// slices it reads.  The scratch is deliberately opaque: its layout is an
/// implementation detail of the engine.
#[derive(Debug, Default)]
pub struct CoreScratch {
    pub(crate) gdb: GdbScratch,
    pub(crate) emd: EmdScratch,
    pub(crate) backbone: BackboneScratch,
    /// Backbone buffer used by `SparsifierSpec::sparsify_with` (taken out of
    /// the scratch while the optimisation phases borrow it).
    pub(crate) spec_backbone: Vec<EdgeId>,
}

impl CoreScratch {
    /// Creates an empty workspace; buffers grow to fit on first use.
    pub fn new() -> Self {
        CoreScratch::default()
    }
}
