//! Deterministic *representative instances* of uncertain graphs.
//!
//! The closest prior work the paper discusses ([29, 30], "the pursuit of a
//! good possible world") does not sparsify: it extracts a single
//! **deterministic** graph whose vertex degrees approximate the *expected*
//! degrees of the uncertain graph, so that conventional graph algorithms can
//! be run once instead of over many sampled worlds.  The paper contrasts its
//! own output (an uncertain graph with tunable size and reduced entropy)
//! against these zero-entropy representatives: a representative cannot answer
//! inherently probabilistic queries (reliability, probability of
//! connectivity) and offers no control over its edge count.
//!
//! This module implements the two representative extractors so that the
//! comparison can be made inside this workspace as well:
//!
//! * [`most_probable_world`] — keeps every edge with `p_e > 0.5`
//!   (the maximum-likelihood world under independent edges),
//! * [`average_degree_rewiring`] — the greedy `ADR`-style extractor: starting
//!   from the most probable world, it greedily inserts or removes the edge
//!   that most reduces the total absolute degree discrepancy
//!   `Σ_u |d_G(u) − d_R(u)|`, until no single change improves it.
//!
//! Both return a [`PossibleWorld`] over the original graph, plus summary
//! statistics used in tests and benchmarks.

use uncertain_graph::{PossibleWorld, UncertainGraph};

/// Summary of a representative instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RepresentativeStats {
    /// Number of edges in the representative.
    pub num_edges: usize,
    /// Total absolute degree discrepancy `Σ_u |d_G(u) − d_R(u)|` between the
    /// expected degrees of the uncertain graph and the (integer) degrees of
    /// the representative.
    pub degree_discrepancy: f64,
    /// Number of greedy edit steps performed (0 for the most probable world).
    pub edits: usize,
}

/// The most probable possible world: every edge with probability greater
/// than ½ is kept, all others are dropped.
pub fn most_probable_world(g: &UncertainGraph) -> (PossibleWorld, RepresentativeStats) {
    let mask: Vec<bool> = g.probabilities().iter().map(|&p| p > 0.5).collect();
    let world = PossibleWorld::new(mask);
    let stats = RepresentativeStats {
        num_edges: world.num_present(),
        degree_discrepancy: total_degree_discrepancy(g, &world),
        edits: 0,
    };
    (world, stats)
}

/// Greedy degree-preserving representative in the spirit of `ADR` \[29\]:
/// starting from the most probable world, repeatedly flips (inserts or
/// deletes) the single edge whose flip most decreases the total absolute
/// degree discrepancy, until no flip improves it or `max_edits` is reached.
pub fn average_degree_rewiring(
    g: &UncertainGraph,
    max_edits: usize,
) -> (PossibleWorld, RepresentativeStats) {
    let expected = g.expected_degrees();
    let mut present: Vec<bool> = g.probabilities().iter().map(|&p| p > 0.5).collect();
    let mut degrees: Vec<f64> = vec![0.0; g.num_vertices()];
    for e in g.edges() {
        if present[e.id] {
            degrees[e.u] += 1.0;
            degrees[e.v] += 1.0;
        }
    }
    let mut edits = 0usize;
    while edits < max_edits {
        // The gain of flipping edge e is the reduction in
        // |δ(u)| + |δ(v)| caused by changing both endpoint degrees by ±1.
        let mut best: Option<(usize, f64)> = None;
        for e in g.edges() {
            let sign = if present[e.id] { -1.0 } else { 1.0 };
            let du_before = (expected[e.u] - degrees[e.u]).abs();
            let dv_before = (expected[e.v] - degrees[e.v]).abs();
            let du_after = (expected[e.u] - (degrees[e.u] + sign)).abs();
            let dv_after = (expected[e.v] - (degrees[e.v] + sign)).abs();
            let gain = (du_before - du_after) + (dv_before - dv_after);
            if gain > 1e-12 && best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((e.id, gain));
            }
        }
        let Some((edge, _)) = best else { break };
        let (u, v) = g.edge_endpoints(edge);
        let sign = if present[edge] { -1.0 } else { 1.0 };
        present[edge] = !present[edge];
        degrees[u] += sign;
        degrees[v] += sign;
        edits += 1;
    }
    let world = PossibleWorld::new(present);
    let stats = RepresentativeStats {
        num_edges: world.num_present(),
        degree_discrepancy: total_degree_discrepancy(g, &world),
        edits,
    };
    (world, stats)
}

/// Total absolute discrepancy between the expected degrees of `g` and the
/// integer degrees of the deterministic world `world`.
pub fn total_degree_discrepancy(g: &UncertainGraph, world: &PossibleWorld) -> f64 {
    let expected = g.expected_degrees();
    let mut degrees = vec![0.0f64; g.num_vertices()];
    for e in g.edges() {
        if world.contains(e.id) {
            degrees[e.u] += 1.0;
            degrees[e.v] += 1.0;
        }
    }
    expected
        .iter()
        .zip(degrees.iter())
        .map(|(a, b)| (a - b).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(
            5,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.55),
                (3, 4, 0.3),
                (4, 0, 0.2),
                (0, 2, 0.45),
            ],
        )
        .unwrap()
    }

    #[test]
    fn most_probable_world_keeps_majority_edges() {
        let g = toy();
        let (world, stats) = most_probable_world(&g);
        assert_eq!(stats.num_edges, 3); // 0.9, 0.8, 0.55
        assert!(world.contains(0) && world.contains(1) && world.contains(2));
        assert!(!world.contains(3) && !world.contains(4) && !world.contains(5));
        assert_eq!(stats.edits, 0);
        assert!(stats.degree_discrepancy > 0.0);
    }

    #[test]
    fn rewiring_never_increases_the_degree_discrepancy() {
        let g = toy();
        let (_, baseline) = most_probable_world(&g);
        let (_, improved) = average_degree_rewiring(&g, 100);
        assert!(improved.degree_discrepancy <= baseline.degree_discrepancy + 1e-12);
    }

    #[test]
    fn rewiring_respects_the_edit_budget() {
        let g = toy();
        let (_, stats) = average_degree_rewiring(&g, 1);
        assert!(stats.edits <= 1);
        let (_, stats) = average_degree_rewiring(&g, 0);
        assert_eq!(stats.edits, 0);
    }

    #[test]
    fn rewiring_terminates_at_a_local_optimum() {
        let g = toy();
        let (world, stats) = average_degree_rewiring(&g, 1_000);
        // Re-running from the produced world: no single flip should improve.
        let expected = g.expected_degrees();
        let mut degrees = vec![0.0; g.num_vertices()];
        for e in g.edges() {
            if world.contains(e.id) {
                degrees[e.u] += 1.0;
                degrees[e.v] += 1.0;
            }
        }
        for e in g.edges() {
            let sign = if world.contains(e.id) { -1.0 } else { 1.0 };
            let before =
                (expected[e.u] - degrees[e.u]).abs() + (expected[e.v] - degrees[e.v]).abs();
            let after = (expected[e.u] - (degrees[e.u] + sign)).abs()
                + (expected[e.v] - (degrees[e.v] + sign)).abs();
            assert!(
                after >= before - 1e-9,
                "flip of edge {} would still improve",
                e.id
            );
        }
        assert!(stats.edits < 1_000);
    }

    #[test]
    fn deterministic_graph_is_its_own_representative() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let (world, stats) = average_degree_rewiring(&g, 10);
        assert_eq!(world.num_present(), 2);
        assert!(stats.degree_discrepancy < 1e-12);
        assert_eq!(stats.edits, 0);
    }

    #[test]
    fn representative_cannot_express_probabilistic_queries() {
        // The paper's argument for sparsification over representatives: a
        // deterministic instance reports connectivity as 0/1, while the
        // uncertain graph has an intermediate probability.
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.6)]).unwrap();
        let (world, _) = most_probable_world(&g);
        let deterministic_answer = world.is_connected(&g);
        let true_probability = uncertain_graph::worlds::exact_connected_probability(&g).unwrap();
        assert!(deterministic_answer); // representative says "connected"
        assert!((true_probability - 0.6).abs() < 1e-12); // truth is 0.6
    }
}
