//! Bit-parity suite: the indexed (worklist/heap) engine must reproduce the
//! retained reference implementations **bit for bit** — probabilities,
//! objective traces, iteration counts, swap counts and entropies — across
//! the full configuration grid of the paper: seeds × {Absolute, Relative} ×
//! {Degree, Cuts(2), AllCuts} × h ∈ {0.0, 0.05, 1.0}.
//!
//! The suite also proves that scratch reuse cannot leak state between runs:
//! a single [`CoreScratch`] driven across many different graphs and configs
//! produces the same bits as a fresh scratch per run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_core::backbone::{build_backbone, build_backbone_into, BackboneConfig};
use ugs_core::emd::{expectation_maximization_sparsify_with, EmdConfig, EmdResult};
use ugs_core::gdb::{gradient_descent_assign_with, CutRule, Engine, GdbConfig, GdbResult};
use ugs_core::prelude::*;
use uncertain_graph::{EdgeId, UncertainGraph, UncertainGraphBuilder};

const SEEDS: [u64; 3] = [1, 7, 23];
const KINDS: [DiscrepancyKind; 2] = [DiscrepancyKind::Absolute, DiscrepancyKind::Relative];
const RULES: [CutRule; 3] = [CutRule::Degree, CutRule::Cuts(2), CutRule::AllCuts];
const HS: [f64; 3] = [0.0, 0.05, 1.0];

fn random_graph(seed: u64, n: usize, m: usize) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = UncertainGraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n, 0.1 + 0.8 * rng.gen::<f64>())
            .unwrap();
    }
    let mut added = n;
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v
            && b.add_edge_if_absent(u, v, 0.05 + 0.9 * rng.gen::<f64>())
                .unwrap()
        {
            added += 1;
        }
    }
    b.build()
}

fn backbone_for(g: &UncertainGraph, seed: u64, alpha: f64) -> Vec<EdgeId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    build_backbone(g, alpha, &BackboneConfig::spanning(), &mut rng).unwrap()
}

fn bits(values: impl IntoIterator<Item = f64>) -> Vec<u64> {
    values.into_iter().map(f64::to_bits).collect()
}

fn assert_gdb_identical(reference: &GdbResult, indexed: &GdbResult, context: &str) {
    assert_eq!(reference.iterations, indexed.iterations, "{context}");
    assert_eq!(
        reference.probabilities.len(),
        indexed.probabilities.len(),
        "{context}"
    );
    for (r, i) in reference
        .probabilities
        .iter()
        .zip(indexed.probabilities.iter())
    {
        assert_eq!(r.0, i.0, "{context}: edge order");
        assert_eq!(
            r.1.to_bits(),
            i.1.to_bits(),
            "{context}: edge {} probability {} vs {}",
            r.0,
            r.1,
            i.1
        );
    }
    assert_eq!(
        bits(reference.objective_trace.iter().copied()),
        bits(indexed.objective_trace.iter().copied()),
        "{context}: objective trace"
    );
    assert_eq!(
        reference.entropy.to_bits(),
        indexed.entropy.to_bits(),
        "{context}: entropy"
    );
}

fn assert_emd_identical(reference: &EmdResult, indexed: &EmdResult, context: &str) {
    assert_eq!(reference.iterations, indexed.iterations, "{context}");
    assert_eq!(reference.swaps, indexed.swaps, "{context}: swaps");
    assert_eq!(
        reference.probabilities.len(),
        indexed.probabilities.len(),
        "{context}"
    );
    for (r, i) in reference
        .probabilities
        .iter()
        .zip(indexed.probabilities.iter())
    {
        assert_eq!(r.0, i.0, "{context}: edge order (swap bookkeeping)");
        assert_eq!(
            r.1.to_bits(),
            i.1.to_bits(),
            "{context}: edge {} probability",
            r.0
        );
    }
    assert_eq!(
        bits(reference.objective_trace.iter().copied()),
        bits(indexed.objective_trace.iter().copied()),
        "{context}: objective trace"
    );
    assert_eq!(
        reference.entropy.to_bits(),
        indexed.entropy.to_bits(),
        "{context}: entropy"
    );
}

#[test]
fn gdb_engines_are_bit_identical_across_the_grid() {
    let mut scratch = CoreScratch::new();
    for seed in SEEDS {
        let g = random_graph(seed, 40, 160);
        let backbone = backbone_for(&g, seed, 0.35);
        for kind in KINDS {
            for rule in RULES {
                for h in HS {
                    let context = format!("seed {seed}, {kind:?}, {rule:?}, h={h}");
                    let config = GdbConfig {
                        discrepancy: kind,
                        cut_rule: rule,
                        entropy_h: h,
                        engine: Engine::Reference,
                        ..Default::default()
                    };
                    let reference =
                        gradient_descent_assign_with(&g, &backbone, &config, &mut scratch).unwrap();
                    let indexed = gradient_descent_assign_with(
                        &g,
                        &backbone,
                        &GdbConfig {
                            engine: Engine::Indexed,
                            ..config
                        },
                        &mut scratch,
                    )
                    .unwrap();
                    assert_gdb_identical(&reference, &indexed, &context);
                }
            }
        }
    }
}

#[test]
fn emd_engines_are_bit_identical_across_the_grid() {
    let mut scratch = CoreScratch::new();
    for seed in SEEDS {
        let g = random_graph(seed + 100, 35, 140);
        let backbone = backbone_for(&g, seed, 0.3);
        for kind in KINDS {
            for h in HS {
                let context = format!("seed {seed}, {kind:?}, h={h}");
                let config = EmdConfig {
                    discrepancy: kind,
                    entropy_h: h,
                    engine: Engine::Reference,
                    ..Default::default()
                };
                let reference =
                    expectation_maximization_sparsify_with(&g, &backbone, &config, &mut scratch)
                        .unwrap();
                let indexed = expectation_maximization_sparsify_with(
                    &g,
                    &backbone,
                    &EmdConfig {
                        engine: Engine::Indexed,
                        ..config
                    },
                    &mut scratch,
                )
                .unwrap();
                assert_emd_identical(&reference, &indexed, &context);
            }
        }
    }
}

#[test]
fn spec_level_runs_agree_between_engines_and_scratch_modes() {
    // End-to-end through SparsifierSpec: reference vs indexed, fresh scratch
    // vs sparsify(), must produce identical graphs and diagnostics for the
    // same RNG seed.
    let mut warm = CoreScratch::new();
    for seed in SEEDS {
        let g = random_graph(seed + 200, 50, 200);
        for spec in [
            SparsifierSpec::gdb().alpha(0.3).entropy_h(0.05),
            SparsifierSpec::gdb()
                .alpha(0.4)
                .discrepancy(DiscrepancyKind::Relative)
                .cut_rule(CutRule::Cuts(2)),
            SparsifierSpec::emd().alpha(0.3),
            SparsifierSpec::emd()
                .alpha(0.5)
                .discrepancy(DiscrepancyKind::Relative)
                .entropy_h(1.0),
        ] {
            let reference = spec
                .engine(Engine::Reference)
                .sparsify(&g, &mut SmallRng::seed_from_u64(seed))
                .unwrap();
            let indexed = spec
                .engine(Engine::Indexed)
                .sparsify(&g, &mut SmallRng::seed_from_u64(seed))
                .unwrap();
            let warm_indexed = spec
                .engine(Engine::Indexed)
                .sparsify_with(&g, &mut SmallRng::seed_from_u64(seed), &mut warm)
                .unwrap();
            for run in [&indexed, &warm_indexed] {
                assert_eq!(
                    reference.graph.num_edges(),
                    run.graph.num_edges(),
                    "{}",
                    spec.display_name()
                );
                for (a, b) in reference.graph.edges().zip(run.graph.edges()) {
                    assert_eq!((a.u, a.v), (b.u, b.v), "{}", spec.display_name());
                    assert_eq!(a.p.to_bits(), b.p.to_bits(), "{}", spec.display_name());
                }
                assert_eq!(reference.diagnostics.iterations, run.diagnostics.iterations);
                assert_eq!(reference.diagnostics.swaps, run.diagnostics.swaps);
                assert_eq!(
                    bits(reference.diagnostics.objective_trace.iter().copied()),
                    bits(run.diagnostics.objective_trace.iter().copied())
                );
            }
        }
    }
}

#[test]
fn backbone_into_matches_the_allocating_builder() {
    // The scratch-reusing builder must consume the RNG identically and
    // produce the same edges, for every backbone kind, even with a polluted
    // scratch.
    let mut scratch = CoreScratch::new();
    for seed in SEEDS {
        let g = random_graph(seed + 300, 30, 120);
        for kind in [
            BackboneKind::Random,
            BackboneKind::SpanningForests,
            BackboneKind::LocalDegree,
        ] {
            for alpha in [0.15, 0.4, 0.8] {
                let config = BackboneConfig {
                    kind,
                    ..Default::default()
                };
                let fresh =
                    build_backbone(&g, alpha, &config, &mut SmallRng::seed_from_u64(seed)).unwrap();
                let mut reused = Vec::new();
                build_backbone_into(
                    &g,
                    alpha,
                    &config,
                    &mut SmallRng::seed_from_u64(seed),
                    &mut scratch,
                    &mut reused,
                )
                .unwrap();
                assert_eq!(fresh, reused, "{kind:?}, alpha {alpha}, seed {seed}");
            }
        }
    }
}

#[test]
fn scratch_reuse_cannot_leak_state_between_runs() {
    // Drive one scratch across wildly different graphs, methods and configs;
    // every run must match a run with a brand-new scratch bit for bit.
    let mut warm = CoreScratch::new();
    for (index, (n, m)) in [(12usize, 30usize), (60, 240), (25, 80), (40, 300)]
        .iter()
        .enumerate()
    {
        let seed = index as u64;
        let g = random_graph(seed + 400, *n, *m);
        let backbone = backbone_for(&g, seed, 0.4);
        let gdb_config = GdbConfig {
            discrepancy: KINDS[index % 2],
            cut_rule: RULES[index % 3],
            entropy_h: HS[index % 3],
            engine: Engine::Indexed,
            ..Default::default()
        };
        let warm_gdb = gradient_descent_assign_with(&g, &backbone, &gdb_config, &mut warm).unwrap();
        let cold_gdb =
            gradient_descent_assign_with(&g, &backbone, &gdb_config, &mut CoreScratch::new())
                .unwrap();
        assert_gdb_identical(&cold_gdb, &warm_gdb, &format!("gdb run {index}"));

        let emd_config = EmdConfig {
            discrepancy: KINDS[(index + 1) % 2],
            entropy_h: HS[(index + 1) % 3],
            engine: Engine::Indexed,
            ..Default::default()
        };
        let warm_emd =
            expectation_maximization_sparsify_with(&g, &backbone, &emd_config, &mut warm).unwrap();
        let cold_emd = expectation_maximization_sparsify_with(
            &g,
            &backbone,
            &emd_config,
            &mut CoreScratch::new(),
        )
        .unwrap();
        assert_emd_identical(&cold_emd, &warm_emd, &format!("emd run {index}"));
    }
}
