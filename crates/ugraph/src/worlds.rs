//! Possible-world semantics: exact enumeration and Monte-Carlo sampling.
//!
//! An uncertain graph `G = (V, E, p)` denotes a distribution over the
//! `2^|E|` deterministic graphs (*possible worlds*) obtained by keeping each
//! edge independently with its probability.  The probability of a world
//! `G ⊑ 𝒢` with edge set `E_G ⊆ E` is
//!
//! ```text
//! Pr(G) = Π_{e ∈ E_G} p_e · Π_{e ∈ E \ E_G} (1 - p_e)
//! ```
//!
//! [`enumerate_worlds`] iterates all worlds exactly (only feasible for small
//! `|E|`); [`WorldSampler`] draws independent Monte-Carlo worlds for graphs of
//! any size.  Both represent a world as a [`PossibleWorld`] edge mask over the
//! parent graph, which downstream algorithms (connected components, shortest
//! paths, PageRank, …) can interpret without copying the topology.

use rand::Rng;

use crate::error::GraphError;
use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// Ziggurat sampler for the standard exponential distribution
/// (Marsaglia & Tsang, 2000; 256 layers).
///
/// The skip sampler converts `E ~ Exp(1)` into geometric jump lengths via
/// `⌊E / λ⌋` with `λ = −ln(1 − p)`; the ziggurat makes drawing `E` cost a
/// single `u64` draw plus two comparisons in ~98.9 % of cases — an order of
/// magnitude cheaper than the naive `−ln(U)` inversion, which pays a
/// logarithm per draw.
mod exponential {
    use rand::Rng;
    use std::sync::OnceLock;

    /// Right edge of the base layer.
    const R: f64 = 7.697117470131487;
    /// Area of each layer.
    const V: f64 = 3.949_659_822_581_557e-3;
    const LAYERS: usize = 256;
    const U53: f64 = 1.0 / (1u64 << 53) as f64;

    struct Tables {
        /// Layer x-coordinates, `LAYERS + 1` entries, decreasing to 0.
        x: [f64; LAYERS + 1],
        /// Density at every `x`, increasing to 1.
        f: [f64; LAYERS + 1],
    }

    fn tables() -> &'static Tables {
        static TABLES: OnceLock<Tables> = OnceLock::new();
        TABLES.get_or_init(|| {
            let density = |x: f64| (-x).exp();
            let mut x = [0.0; LAYERS + 1];
            x[0] = V / density(R);
            x[1] = R;
            for i in 2..LAYERS {
                // x[i] solves V = x[i-1] · (f(x[i]) − f(x[i-1])):
                x[i] = -(V / x[i - 1] + density(x[i - 1])).ln();
            }
            x[LAYERS] = 0.0;
            let mut f = [0.0; LAYERS + 1];
            for i in 0..=LAYERS {
                f[i] = density(x[i]);
            }
            Tables { x, f }
        })
    }

    /// A handle on the (lazily built, then immutable) ziggurat tables:
    /// resolve once per sampler, draw many times without re-touching the
    /// `OnceLock`.
    #[derive(Clone, Copy)]
    pub struct Exp1 {
        tables: &'static Tables,
    }

    impl std::fmt::Debug for Exp1 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Exp1")
        }
    }

    impl Default for Exp1 {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Exp1 {
        /// Resolves the shared tables.
        pub fn new() -> Self {
            Exp1 { tables: tables() }
        }

        /// Draws one standard exponential variate.
        #[inline]
        pub fn sample<R2: Rng + ?Sized>(&self, rng: &mut R2) -> f64 {
            let t = self.tables;
            loop {
                let bits = rng.gen::<u64>();
                let i = (bits & 0xff) as usize;
                let u = (bits >> 11) as f64 * U53;
                let x = u * t.x[i];
                if x < t.x[i + 1] {
                    return x; // inside the layer: the common case (~98 %)
                }
                if i == 0 {
                    // Tail: E > R is distributed as R + Exp(1); 1 − gen()
                    // maps [0, 1) onto (0, 1] so the logarithm is finite.
                    return R - (1.0 - rng.gen::<f64>()).ln();
                }
                // Wedge: accept against the true density.
                if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.gen::<f64>() < (-x).exp() {
                    return x;
                }
            }
        }
    }
}

/// Maximum number of edges for which exact possible-world enumeration is
/// permitted (`2^26` worlds ≈ 67 million — a few seconds of work).
pub const MAX_ENUMERATION_EDGES: usize = 26;

/// One deterministic possible world of an uncertain graph, represented as an
/// inclusion mask over the parent graph's edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleWorld {
    present: Vec<bool>,
}

impl PossibleWorld {
    /// Creates a world from an explicit inclusion mask.
    pub fn new(present: Vec<bool>) -> Self {
        PossibleWorld { present }
    }

    /// Creates the world in which every edge of `g` is present.
    pub fn full(g: &UncertainGraph) -> Self {
        PossibleWorld {
            present: vec![true; g.num_edges()],
        }
    }

    /// Creates the world with no edges.
    pub fn empty(g: &UncertainGraph) -> Self {
        PossibleWorld {
            present: vec![false; g.num_edges()],
        }
    }

    /// Returns `true` if edge `e` exists in this world.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.present[e]
    }

    /// Number of edges in the mask (present or not) — equals the parent
    /// graph's edge count.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Returns `true` if the mask covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Number of edges present in this world.
    pub fn num_present(&self) -> usize {
        self.present.iter().filter(|&&b| b).count()
    }

    /// The raw inclusion mask.
    pub fn mask(&self) -> &[bool] {
        &self.present
    }

    /// Iterator over the ids of the edges present in this world.
    pub fn present_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(e, _)| e)
    }

    /// Probability of this world under graph `g`.
    ///
    /// # Panics
    /// Panics if the mask length differs from `g.num_edges()`.
    pub fn probability(&self, g: &UncertainGraph) -> f64 {
        assert_eq!(
            self.present.len(),
            g.num_edges(),
            "world mask does not match graph"
        );
        let mut pr = 1.0;
        for (e, &present) in self.present.iter().enumerate() {
            let p = g.edge_probability(e);
            pr *= if present { p } else { 1.0 - p };
        }
        pr
    }

    /// Returns `true` if all vertices of `g` belong to a single connected
    /// component in this world.  Isolated-vertex graphs with `|V| ≤ 1` are
    /// connected by convention.
    pub fn is_connected(&self, g: &UncertainGraph) -> bool {
        let n = g.num_vertices();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<VertexId> = vec![0];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, e, _) in g.neighbors(u) {
                if self.present[e] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Connected components of this world as a label vector (`labels[u]` is
    /// the component id of `u`, components numbered from 0 in discovery
    /// order), plus the number of components.
    pub fn connected_components(&self, g: &UncertainGraph) -> (Vec<usize>, usize) {
        let n = g.num_vertices();
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if labels[start] != usize::MAX {
                continue;
            }
            labels[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for (v, e, _) in g.neighbors(u) {
                    if self.present[e] && labels[v] == usize::MAX {
                        labels[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        (labels, next)
    }
}

/// Monte-Carlo sampler of possible worlds (the *per-edge* reference path).
///
/// Sampling a world costs `O(|E|)` random draws — one Bernoulli draw per
/// edge, in edge-id order — the dominant cost of every sampling-based query
/// evaluation, which is precisely why sparsification (fewer edges) speeds
/// queries up.  The [`SkipSampler`] replaces the per-draw loop with
/// geometric skips and costs `O(Σ pₑ)` expected work per world instead; this
/// type is kept both as the simplest possible reference implementation and
/// as the exact draw-order contract the engine's per-edge mode reproduces.
#[derive(Debug, Clone, Default)]
pub struct WorldSampler;

impl WorldSampler {
    /// Creates a sampler.
    pub fn new() -> Self {
        WorldSampler
    }

    /// Draws one world from `g` using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, g: &UncertainGraph, rng: &mut R) -> PossibleWorld {
        let present = g
            .probabilities()
            .iter()
            .map(|&p| rng.gen::<f64>() < p)
            .collect();
        PossibleWorld::new(present)
    }

    /// Draws one world into a caller-owned mask, resizing it to
    /// `g.num_edges()`.  Consumes the RNG exactly like
    /// [`WorldSampler::sample`] (one `f64` draw per edge in edge-id order)
    /// and performs no allocation once `mask` has sufficient capacity.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        g: &UncertainGraph,
        rng: &mut R,
        mask: &mut Vec<bool>,
    ) {
        mask.clear();
        mask.extend(g.probabilities().iter().map(|&p| rng.gen::<f64>() < p));
    }

    /// Draws one world as a list of present edge ids (ascending), appended
    /// into a caller-owned buffer.  Consumes the RNG exactly like
    /// [`WorldSampler::sample`]; allocation-free once `out` has capacity
    /// `g.num_edges()`.
    pub fn sample_present_into<R: Rng + ?Sized>(
        &self,
        g: &UncertainGraph,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        for (e, &p) in g.probabilities().iter().enumerate() {
            if rng.gen::<f64>() < p {
                out.push(e as u32);
            }
        }
    }

    /// Draws `count` independent worlds.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        g: &UncertainGraph,
        count: usize,
        rng: &mut R,
    ) -> Vec<PossibleWorld> {
        (0..count).map(|_| self.sample(g, rng)).collect()
    }
}

/// Skip-based (geometric) Monte-Carlo world sampler: `O(Σ pₑ)` expected cost
/// per world instead of one Bernoulli draw per edge.
///
/// Construction sorts the edges once by descending probability.  Sampling
/// walks the sorted order jumping directly between *candidate* edges with
/// geometric skips: at position `i` the remaining maximum probability is
/// `p⁺ = p[i]`, the number of skipped edges is `⌊ln U / ln(1 − p⁺)⌋`
/// (`U` uniform on `(0, 1]`), and the candidate edge `j` it lands on is
/// accepted with probability `p[j]/p⁺` (thinning) — which makes every edge
/// present with exactly its own probability while never touching the edges
/// in between.  On the low-entropy sparsified graphs the paper produces
/// (mean probability well below 1) this is the difference between `O(|E|)`
/// and `O(Σ pₑ)` work per world.
///
/// The sampler is immutable after construction and can be shared freely
/// across threads; all per-world state lives in the caller-owned output
/// buffer, so steady-state sampling allocates nothing.
#[derive(Debug, Clone)]
pub struct SkipSampler {
    /// Total number of edges of the parent graph.
    num_edges: usize,
    /// One packed entry per edge, sorted by descending probability — a
    /// single cache line serves the whole candidate step.
    entries: Vec<SkipEntry>,
    /// `Σ pₑ` — the expected number of present edges per world.
    expected_present: f64,
    /// Ziggurat exponential sampler (tables resolved once).
    exp: exponential::Exp1,
}

/// Per-edge sampling data, packed for locality in the skip walk (24 bytes,
/// no padding).
#[derive(Debug, Clone, Copy)]
struct SkipEntry {
    /// Edge probability.
    prob: f64,
    /// `1 / λ = −1 / ln(1 − p)` (`0.0` for `p = 1`, never read in that
    /// case): converts a standard exponential variate into a geometric skip
    /// length.
    inv_lambda: f64,
    /// The edge id this sorted position refers to.
    edge: u32,
    /// One past the end of the run of equal-probability entries this
    /// position belongs to (its *plateau*).  Within a plateau the walk can
    /// keep the bound in registers and skip the thinning test entirely.
    plateau_end: u32,
}

impl SkipSampler {
    /// Builds the sampler for `g` (one `O(|E| log |E|)` sort).
    pub fn new(g: &UncertainGraph) -> Self {
        let probs = g.probabilities();
        let mut entries: Vec<SkipEntry> = probs
            .iter()
            .enumerate()
            .map(|(e, &p)| SkipEntry {
                prob: p,
                // ln_1p avoids cancellation in 1 − p for tiny p (and
                // yields exactly 0.0 for p = 1, which is never read).
                inv_lambda: -(-p).ln_1p().recip(),
                edge: e as u32,
                plateau_end: 0,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.prob
                .partial_cmp(&a.prob)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Mark runs of equal probability.
        let mut run_start = 0usize;
        for i in 0..=entries.len() {
            if i == entries.len() || entries[i].prob != entries[run_start].prob {
                for entry in &mut entries[run_start..i] {
                    entry.plateau_end = i as u32;
                }
                run_start = i;
            }
        }
        SkipSampler {
            num_edges: probs.len(),
            entries,
            expected_present: probs.iter().sum(),
            exp: exponential::Exp1::new(),
        }
    }

    /// Number of edges of the parent graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `Σ pₑ` — the expected number of present edges per sampled world.
    pub fn expected_present(&self) -> f64 {
        self.expected_present
    }

    /// Draws one world as a list of present edge ids appended into a
    /// caller-owned buffer (allocation-free once `out` has capacity
    /// `num_edges`).  The ids arrive in descending-probability order, **not**
    /// ascending id order.
    // `!(skip < remaining)` is deliberate: it also routes a NaN skip (which
    // cannot arise from finite inputs, but would otherwise corrupt the walk)
    // to the "past the end" exit.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn sample_present_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<u32>) {
        out.clear();
        let entries = self.entries.as_slice();
        let m = entries.len();
        // Exponential variates are drawn in small stack-resident batches:
        // the draws are independent of the walk positions, so batching
        // decouples the RNG/ziggurat dependency chain from the
        // position-to-position chain of the walk itself (a sizeable win on
        // out-of-order cores; the walk is otherwise latency-bound).
        const BATCH: usize = 64;
        let batch = BATCH.min(m.max(1));
        let mut exponentials = [0.0f64; BATCH];
        let mut next = batch; // forces a refill on first use
                              // Minimum plateau length for which the register-resident truncated
                              // walk below beats a thinning jump.
        const PLATEAU_MIN: usize = 8;
        let mut i = 0usize;
        while i < m {
            let start = entries[i];
            let bound = start.prob;
            let plateau_end = start.plateau_end as usize;
            if bound >= 1.0 {
                // Deterministic prefix: every edge with p = 1 is present.
                out.extend(entries[i..plateau_end].iter().map(|entry| entry.edge));
                i = plateau_end;
                continue;
            }
            if plateau_end - i >= PLATEAU_MIN {
                // Plateau fast path: bound and 1/λ stay in registers, every
                // landing inside the run is accepted outright (identical
                // probability), and a jump clearing the run is *truncated*
                // there — exact, because a truncated geometric simulates the
                // Bernoulli run directly and the continuation at the run end
                // is independent by memorylessness.
                let inv_lambda = start.inv_lambda;
                loop {
                    if next == batch {
                        for slot in exponentials[..batch].iter_mut() {
                            *slot = self.exp.sample(rng);
                        }
                        next = 0;
                    }
                    let skip = exponentials[next] * inv_lambda;
                    next += 1;
                    if !(skip < (plateau_end - i) as f64) {
                        i = plateau_end;
                        break;
                    }
                    let j = i + skip as usize;
                    out.push(entries[j].edge);
                    i = j + 1;
                    if i >= plateau_end {
                        break;
                    }
                }
                continue;
            }
            if next == batch {
                for slot in exponentials[..batch].iter_mut() {
                    *slot = self.exp.sample(rng);
                }
                next = 0;
            }
            // Thinning jump across heterogeneous probabilities: with
            // λ = −ln(1 − p⁺), ⌊E/λ⌋ is geometric with success probability
            // p⁺; the candidate it lands on is accepted with `p/p⁺`.
            let skip = exponentials[next] * start.inv_lambda;
            next += 1;
            let remaining = (m - i) as f64;
            if !(skip < remaining) {
                // The geometric jump clears the end of the edge list: no
                // further edge is present in this world.
                break;
            }
            let j = i + skip as usize;
            let candidate = entries[j];
            // When probabilities are equal no extra draw is consumed.
            if candidate.prob >= bound || rng.gen::<f64>() * bound < candidate.prob {
                out.push(candidate.edge);
            }
            i = j + 1;
        }
    }

    /// Draws one world into a caller-owned mask (cleared and resized to
    /// `num_edges`), using the same skip process as
    /// [`SkipSampler::sample_present_into`].
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mask: &mut Vec<bool>,
        scratch: &mut Vec<u32>,
    ) {
        self.sample_present_into(rng, scratch);
        mask.clear();
        mask.resize(self.num_edges, false);
        for &e in scratch.iter() {
            mask[e as usize] = true;
        }
    }

    /// Draws one world as an owned [`PossibleWorld`] (allocating; prefer the
    /// `*_into` variants on hot paths).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld {
        let mut mask = Vec::new();
        let mut scratch = Vec::new();
        self.sample_into(rng, &mut mask, &mut scratch);
        PossibleWorld::new(mask)
    }
}

/// Exactly enumerates all `2^|E|` worlds of `g`, calling `visit(world, pr)`
/// for each.  Fails if the graph has more than [`MAX_ENUMERATION_EDGES`]
/// edges.
pub fn enumerate_worlds<F>(g: &UncertainGraph, mut visit: F) -> Result<(), GraphError>
where
    F: FnMut(&PossibleWorld, f64),
{
    let m = g.num_edges();
    if m > MAX_ENUMERATION_EDGES {
        return Err(GraphError::TooManyEdgesForEnumeration {
            num_edges: m,
            max_edges: MAX_ENUMERATION_EDGES,
        });
    }
    let total = 1u64 << m;
    let mut mask = vec![false; m];
    for bits in 0..total {
        let mut pr = 1.0;
        for (e, slot) in mask.iter_mut().enumerate() {
            let present = (bits >> e) & 1 == 1;
            *slot = present;
            let p = g.edge_probability(e);
            pr *= if present { p } else { 1.0 - p };
        }
        let world = PossibleWorld::new(mask.clone());
        visit(&world, pr);
    }
    Ok(())
}

/// Exact probability that a query predicate holds, by enumeration
/// (Equation 1 of the paper).  Only feasible for small graphs.
pub fn exact_query_probability<Q>(g: &UncertainGraph, mut predicate: Q) -> Result<f64, GraphError>
where
    Q: FnMut(&PossibleWorld) -> bool,
{
    let mut total = 0.0;
    enumerate_worlds(g, |world, pr| {
        if predicate(world) {
            total += pr;
        }
    })?;
    Ok(total)
}

/// Exact probability that the uncertain graph is connected (single connected
/// component spanning all vertices), computed by enumeration.
///
/// For Figure 1(a) of the paper this returns ≈ 0.219.
pub fn exact_connected_probability(g: &UncertainGraph) -> Result<f64, GraphError> {
    exact_query_probability(g, |world| world.is_connected(g))
}

/// Monte-Carlo estimate of the probability that `predicate` holds, using
/// `samples` sampled worlds.
pub fn estimate_query_probability<Q, R>(
    g: &UncertainGraph,
    samples: usize,
    rng: &mut R,
    mut predicate: Q,
) -> f64
where
    Q: FnMut(&PossibleWorld) -> bool,
    R: Rng + ?Sized,
{
    if samples == 0 {
        return 0.0;
    }
    let sampler = WorldSampler::new();
    let mut hits = 0usize;
    for _ in 0..samples {
        let world = sampler.sample(g, rng);
        if predicate(&world) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn figure1a() -> UncertainGraph {
        UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.3),
                (0, 2, 0.3),
                (0, 3, 0.3),
                (1, 2, 0.3),
                (1, 3, 0.3),
                (2, 3, 0.3),
            ],
        )
        .unwrap()
    }

    fn figure1b() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6)]).unwrap()
    }

    #[test]
    fn world_probability_sums_to_one() {
        let g = figure1a();
        let mut total = 0.0;
        enumerate_worlds(&g, |_, pr| total += pr).unwrap();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_connected_probabilities_match_paper() {
        // The paper reports Pr[G connected] = 0.219 for Figure 1(a) and
        // 0.216 for the sparsified graph of Figure 1(b).
        let p_a = exact_connected_probability(&figure1a()).unwrap();
        assert!((p_a - 0.219).abs() < 2e-3, "got {p_a}");
        let p_b = exact_connected_probability(&figure1b()).unwrap();
        assert!((p_b - 0.216).abs() < 1e-9, "got {p_b}");
    }

    #[test]
    fn enumeration_counts_all_worlds() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let mut count = 0usize;
        enumerate_worlds(&g, |_, _| count += 1).unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn enumeration_rejects_large_graphs() {
        let edges: Vec<(usize, usize, f64)> = (0..40).map(|i| (i, i + 1, 0.5)).collect();
        let g = UncertainGraph::from_edges(41, edges).unwrap();
        assert!(matches!(
            enumerate_worlds(&g, |_, _| ()),
            Err(GraphError::TooManyEdgesForEnumeration { .. })
        ));
    }

    #[test]
    fn world_mask_and_probability() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.25), (1, 2, 0.5)]).unwrap();
        let w = PossibleWorld::new(vec![true, false]);
        assert!(w.contains(0));
        assert!(!w.contains(1));
        assert_eq!(w.num_present(), 1);
        assert_eq!(w.present_edges().collect::<Vec<_>>(), vec![0]);
        assert!((w.probability(&g) - 0.25 * 0.5).abs() < 1e-12);
        assert_eq!(PossibleWorld::full(&g).num_present(), 2);
        assert_eq!(PossibleWorld::empty(&g).num_present(), 0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn connectivity_and_components_of_worlds() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]).unwrap();
        let all = PossibleWorld::full(&g);
        assert!(all.is_connected(&g));
        let (labels, k) = all.connected_components(&g);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));

        let broken = PossibleWorld::new(vec![true, false, true]);
        assert!(!broken.is_connected(&g));
        let (labels, k) = broken.connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn ziggurat_exponential_has_unit_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut tail = 0usize;
        let exp = super::exponential::Exp1::new();
        for _ in 0..n {
            let e = exp.sample(&mut rng);
            assert!(e >= 0.0);
            sum += e;
            sum_sq += e * e;
            tail += usize::from(e > 2.0);
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
        // P(E > 2) = e^{-2} ≈ 0.1353
        let p_tail = tail as f64 / n as f64;
        assert!((p_tail - (-2.0f64).exp()).abs() < 0.005, "tail {p_tail}");
    }

    #[test]
    fn skip_sampler_matches_per_edge_frequencies_on_heterogeneous_probabilities() {
        // Mixed probability levels, including a deterministic edge and a big
        // probability drop right after it (the worst case for the thinning
        // bound).
        let probs = [1.0, 0.9, 0.9, 0.02, 0.02, 0.02, 0.5, 0.004, 0.3];
        let edges: Vec<(usize, usize, f64)> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, i + 1, p))
            .collect();
        let g = UncertainGraph::from_edges(probs.len() + 1, edges).unwrap();
        let sampler = SkipSampler::new(&g);
        assert_eq!(sampler.num_edges(), probs.len());
        assert!((sampler.expected_present() - probs.iter().sum::<f64>()).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(17);
        let worlds = 80_000;
        let mut hits = vec![0usize; probs.len()];
        let mut out = Vec::new();
        for _ in 0..worlds {
            sampler.sample_present_into(&mut rng, &mut out);
            for &e in &out {
                hits[e as usize] += 1;
            }
        }
        for (e, &p) in probs.iter().enumerate() {
            let freq = hits[e] as f64 / worlds as f64;
            let sigma = (p * (1.0 - p) / worlds as f64).sqrt();
            assert!(
                (freq - p).abs() < 5.0 * sigma + 1e-9,
                "edge {e}: frequency {freq} vs probability {p}"
            );
        }
    }

    #[test]
    fn skip_sampler_mask_api_agrees_with_present_list() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.4), (1, 2, 0.8), (2, 3, 0.1)]).unwrap();
        let sampler = SkipSampler::new(&g);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut mask = Vec::new();
        let mut scratch = Vec::new();
        for _ in 0..200 {
            sampler.sample_into(&mut rng, &mut mask, &mut scratch);
            assert_eq!(mask.len(), 3);
            for (e, &present) in mask.iter().enumerate() {
                assert_eq!(present, scratch.contains(&(e as u32)));
            }
        }
        // owned variant
        let world = sampler.sample(&mut rng);
        assert_eq!(world.len(), 3);
    }

    #[test]
    fn sampler_matches_expected_edge_frequency() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.25)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let sampler = WorldSampler::new();
        let worlds = sampler.sample_many(&g, 20_000, &mut rng);
        let freq = worlds.iter().filter(|w| w.contains(0)).count() as f64 / worlds.len() as f64;
        assert!((freq - 0.25).abs() < 0.02, "frequency {freq}");
    }

    #[test]
    fn monte_carlo_estimate_approaches_exact_value() {
        let g = figure1a();
        let exact = exact_connected_probability(&g).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let estimate = estimate_query_probability(&g, 30_000, &mut rng, |w| w.is_connected(&g));
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
        assert_eq!(estimate_query_probability(&g, 0, &mut rng, |_| true), 0.0);
    }

    #[test]
    fn exact_query_probability_for_edge_presence_is_its_probability() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.37), (1, 2, 0.8)]).unwrap();
        let p = exact_query_probability(&g, |w| w.contains(0)).unwrap();
        assert!((p - 0.37).abs() < 1e-12);
    }
}
