//! Possible-world semantics: exact enumeration and Monte-Carlo sampling.
//!
//! An uncertain graph `G = (V, E, p)` denotes a distribution over the
//! `2^|E|` deterministic graphs (*possible worlds*) obtained by keeping each
//! edge independently with its probability.  The probability of a world
//! `G ⊑ 𝒢` with edge set `E_G ⊆ E` is
//!
//! ```text
//! Pr(G) = Π_{e ∈ E_G} p_e · Π_{e ∈ E \ E_G} (1 - p_e)
//! ```
//!
//! [`enumerate_worlds`] iterates all worlds exactly (only feasible for small
//! `|E|`); [`WorldSampler`] draws independent Monte-Carlo worlds for graphs of
//! any size.  Both represent a world as a [`PossibleWorld`] edge mask over the
//! parent graph, which downstream algorithms (connected components, shortest
//! paths, PageRank, …) can interpret without copying the topology.

use rand::Rng;

use crate::error::GraphError;
use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// Maximum number of edges for which exact possible-world enumeration is
/// permitted (`2^26` worlds ≈ 67 million — a few seconds of work).
pub const MAX_ENUMERATION_EDGES: usize = 26;

/// One deterministic possible world of an uncertain graph, represented as an
/// inclusion mask over the parent graph's edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleWorld {
    present: Vec<bool>,
}

impl PossibleWorld {
    /// Creates a world from an explicit inclusion mask.
    pub fn new(present: Vec<bool>) -> Self {
        PossibleWorld { present }
    }

    /// Creates the world in which every edge of `g` is present.
    pub fn full(g: &UncertainGraph) -> Self {
        PossibleWorld { present: vec![true; g.num_edges()] }
    }

    /// Creates the world with no edges.
    pub fn empty(g: &UncertainGraph) -> Self {
        PossibleWorld { present: vec![false; g.num_edges()] }
    }

    /// Returns `true` if edge `e` exists in this world.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.present[e]
    }

    /// Number of edges in the mask (present or not) — equals the parent
    /// graph's edge count.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Returns `true` if the mask covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Number of edges present in this world.
    pub fn num_present(&self) -> usize {
        self.present.iter().filter(|&&b| b).count()
    }

    /// The raw inclusion mask.
    pub fn mask(&self) -> &[bool] {
        &self.present
    }

    /// Iterator over the ids of the edges present in this world.
    pub fn present_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.present.iter().enumerate().filter(|(_, &b)| b).map(|(e, _)| e)
    }

    /// Probability of this world under graph `g`.
    ///
    /// # Panics
    /// Panics if the mask length differs from `g.num_edges()`.
    pub fn probability(&self, g: &UncertainGraph) -> f64 {
        assert_eq!(self.present.len(), g.num_edges(), "world mask does not match graph");
        let mut pr = 1.0;
        for (e, &present) in self.present.iter().enumerate() {
            let p = g.edge_probability(e);
            pr *= if present { p } else { 1.0 - p };
        }
        pr
    }

    /// Returns `true` if all vertices of `g` belong to a single connected
    /// component in this world.  Isolated-vertex graphs with `|V| ≤ 1` are
    /// connected by convention.
    pub fn is_connected(&self, g: &UncertainGraph) -> bool {
        let n = g.num_vertices();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<VertexId> = vec![0];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, e, _) in g.neighbors(u) {
                if self.present[e] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Connected components of this world as a label vector (`labels[u]` is
    /// the component id of `u`, components numbered from 0 in discovery
    /// order), plus the number of components.
    pub fn connected_components(&self, g: &UncertainGraph) -> (Vec<usize>, usize) {
        let n = g.num_vertices();
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if labels[start] != usize::MAX {
                continue;
            }
            labels[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for (v, e, _) in g.neighbors(u) {
                    if self.present[e] && labels[v] == usize::MAX {
                        labels[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        (labels, next)
    }
}

/// Monte-Carlo sampler of possible worlds.
///
/// Sampling a world costs `O(|E|)` random draws, the dominant cost of every
/// sampling-based query evaluation — which is precisely why sparsification
/// (fewer edges) speeds queries up.
#[derive(Debug, Clone, Default)]
pub struct WorldSampler;

impl WorldSampler {
    /// Creates a sampler.
    pub fn new() -> Self {
        WorldSampler
    }

    /// Draws one world from `g` using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, g: &UncertainGraph, rng: &mut R) -> PossibleWorld {
        let present = g
            .probabilities()
            .iter()
            .map(|&p| rng.gen::<f64>() < p)
            .collect();
        PossibleWorld::new(present)
    }

    /// Draws `count` independent worlds.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        g: &UncertainGraph,
        count: usize,
        rng: &mut R,
    ) -> Vec<PossibleWorld> {
        (0..count).map(|_| self.sample(g, rng)).collect()
    }
}

/// Exactly enumerates all `2^|E|` worlds of `g`, calling `visit(world, pr)`
/// for each.  Fails if the graph has more than [`MAX_ENUMERATION_EDGES`]
/// edges.
pub fn enumerate_worlds<F>(g: &UncertainGraph, mut visit: F) -> Result<(), GraphError>
where
    F: FnMut(&PossibleWorld, f64),
{
    let m = g.num_edges();
    if m > MAX_ENUMERATION_EDGES {
        return Err(GraphError::TooManyEdgesForEnumeration {
            num_edges: m,
            max_edges: MAX_ENUMERATION_EDGES,
        });
    }
    let total = 1u64 << m;
    let mut mask = vec![false; m];
    for bits in 0..total {
        let mut pr = 1.0;
        for e in 0..m {
            let present = (bits >> e) & 1 == 1;
            mask[e] = present;
            let p = g.edge_probability(e);
            pr *= if present { p } else { 1.0 - p };
        }
        let world = PossibleWorld::new(mask.clone());
        visit(&world, pr);
    }
    Ok(())
}

/// Exact probability that a query predicate holds, by enumeration
/// (Equation 1 of the paper).  Only feasible for small graphs.
pub fn exact_query_probability<Q>(g: &UncertainGraph, mut predicate: Q) -> Result<f64, GraphError>
where
    Q: FnMut(&PossibleWorld) -> bool,
{
    let mut total = 0.0;
    enumerate_worlds(g, |world, pr| {
        if predicate(world) {
            total += pr;
        }
    })?;
    Ok(total)
}

/// Exact probability that the uncertain graph is connected (single connected
/// component spanning all vertices), computed by enumeration.
///
/// For Figure 1(a) of the paper this returns ≈ 0.219.
pub fn exact_connected_probability(g: &UncertainGraph) -> Result<f64, GraphError> {
    exact_query_probability(g, |world| world.is_connected(g))
}

/// Monte-Carlo estimate of the probability that `predicate` holds, using
/// `samples` sampled worlds.
pub fn estimate_query_probability<Q, R>(
    g: &UncertainGraph,
    samples: usize,
    rng: &mut R,
    mut predicate: Q,
) -> f64
where
    Q: FnMut(&PossibleWorld) -> bool,
    R: Rng + ?Sized,
{
    if samples == 0 {
        return 0.0;
    }
    let sampler = WorldSampler::new();
    let mut hits = 0usize;
    for _ in 0..samples {
        let world = sampler.sample(g, rng);
        if predicate(&world) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn figure1a() -> UncertainGraph {
        UncertainGraph::from_edges(
            4,
            [(0, 1, 0.3), (0, 2, 0.3), (0, 3, 0.3), (1, 2, 0.3), (1, 3, 0.3), (2, 3, 0.3)],
        )
        .unwrap()
    }

    fn figure1b() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6)]).unwrap()
    }

    #[test]
    fn world_probability_sums_to_one() {
        let g = figure1a();
        let mut total = 0.0;
        enumerate_worlds(&g, |_, pr| total += pr).unwrap();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_connected_probabilities_match_paper() {
        // The paper reports Pr[G connected] = 0.219 for Figure 1(a) and
        // 0.216 for the sparsified graph of Figure 1(b).
        let p_a = exact_connected_probability(&figure1a()).unwrap();
        assert!((p_a - 0.219).abs() < 2e-3, "got {p_a}");
        let p_b = exact_connected_probability(&figure1b()).unwrap();
        assert!((p_b - 0.216).abs() < 1e-9, "got {p_b}");
    }

    #[test]
    fn enumeration_counts_all_worlds() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let mut count = 0usize;
        enumerate_worlds(&g, |_, _| count += 1).unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn enumeration_rejects_large_graphs() {
        let edges: Vec<(usize, usize, f64)> =
            (0..40).map(|i| (i, i + 1, 0.5)).collect();
        let g = UncertainGraph::from_edges(41, edges).unwrap();
        assert!(matches!(
            enumerate_worlds(&g, |_, _| ()),
            Err(GraphError::TooManyEdgesForEnumeration { .. })
        ));
    }

    #[test]
    fn world_mask_and_probability() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.25), (1, 2, 0.5)]).unwrap();
        let w = PossibleWorld::new(vec![true, false]);
        assert!(w.contains(0));
        assert!(!w.contains(1));
        assert_eq!(w.num_present(), 1);
        assert_eq!(w.present_edges().collect::<Vec<_>>(), vec![0]);
        assert!((w.probability(&g) - 0.25 * 0.5).abs() < 1e-12);
        assert_eq!(PossibleWorld::full(&g).num_present(), 2);
        assert_eq!(PossibleWorld::empty(&g).num_present(), 0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn connectivity_and_components_of_worlds() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]).unwrap();
        let all = PossibleWorld::full(&g);
        assert!(all.is_connected(&g));
        let (labels, k) = all.connected_components(&g);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));

        let broken = PossibleWorld::new(vec![true, false, true]);
        assert!(!broken.is_connected(&g));
        let (labels, k) = broken.connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn sampler_matches_expected_edge_frequency() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.25)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let sampler = WorldSampler::new();
        let worlds = sampler.sample_many(&g, 20_000, &mut rng);
        let freq =
            worlds.iter().filter(|w| w.contains(0)).count() as f64 / worlds.len() as f64;
        assert!((freq - 0.25).abs() < 0.02, "frequency {freq}");
    }

    #[test]
    fn monte_carlo_estimate_approaches_exact_value() {
        let g = figure1a();
        let exact = exact_connected_probability(&g).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let estimate = estimate_query_probability(&g, 30_000, &mut rng, |w| w.is_connected(&g));
        assert!((estimate - exact).abs() < 0.02, "estimate {estimate} vs exact {exact}");
        assert_eq!(estimate_query_probability(&g, 0, &mut rng, |_| true), 0.0);
    }

    #[test]
    fn exact_query_probability_for_edge_presence_is_its_probability() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.37), (1, 2, 0.8)]).unwrap();
        let p = exact_query_probability(&g, |w| w.contains(0)).unwrap();
        assert!((p - 0.37).abs() < 1e-12);
    }
}
