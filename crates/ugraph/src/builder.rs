//! Validated construction of [`UncertainGraph`] values.

use std::collections::HashMap;

use crate::error::{validate_probability, GraphError};
use crate::graph::{UncertainGraph, VertexId};

/// Incremental, validating builder for [`UncertainGraph`].
///
/// The builder enforces the invariants assumed by the paper and by every
/// algorithm in this workspace:
///
/// * vertex identifiers are in `0..num_vertices`,
/// * no self loops,
/// * no parallel edges (in either orientation),
/// * probabilities are in `(0, 1]`.
///
/// ```
/// use uncertain_graph::UncertainGraphBuilder;
///
/// let mut b = UncertainGraphBuilder::new(3);
/// b.add_edge(0, 1, 0.4).unwrap();
/// b.add_edge(1, 2, 1.0).unwrap();
/// assert!(b.add_edge(1, 0, 0.2).is_err()); // parallel edge
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UncertainGraphBuilder {
    num_vertices: usize,
    endpoints: Vec<(u32, u32)>,
    probabilities: Vec<f64>,
    seen: HashMap<(u32, u32), usize>,
}

impl UncertainGraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices and no
    /// edges yet.
    pub fn new(num_vertices: usize) -> Self {
        UncertainGraphBuilder {
            num_vertices,
            endpoints: Vec::new(),
            probabilities: Vec::new(),
            seen: HashMap::new(),
        }
    }

    /// Creates a builder with pre-allocated room for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        UncertainGraphBuilder {
            num_vertices,
            endpoints: Vec::with_capacity(num_edges),
            probabilities: Vec::with_capacity(num_edges),
            seen: HashMap::with_capacity(num_edges),
        }
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Normalised key used for duplicate detection.
    fn key(u: VertexId, v: VertexId) -> (u32, u32) {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        (a as u32, b as u32)
    }

    /// Returns `true` if an edge between `u` and `v` has already been added.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.seen.contains_key(&Self::key(u, v))
    }

    /// Adds an undirected uncertain edge `(u, v)` with probability `p`.
    ///
    /// Returns the edge id on success.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<usize, GraphError> {
        if u >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: self.num_vertices,
            });
        }
        if v >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        validate_probability(p)?;
        let key = Self::key(u, v);
        if self.seen.contains_key(&key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let id = self.endpoints.len();
        self.seen.insert(key, id);
        self.endpoints.push((u as u32, v as u32));
        self.probabilities.push(p);
        Ok(id)
    }

    /// Adds the edge if it is not present yet, otherwise leaves the existing
    /// probability untouched.  Returns `true` if the edge was inserted.
    ///
    /// Useful for generators that may propose the same pair twice.
    pub fn add_edge_if_absent(
        &mut self,
        u: VertexId,
        v: VertexId,
        p: f64,
    ) -> Result<bool, GraphError> {
        if self.contains_edge(u, v) {
            Ok(false)
        } else {
            self.add_edge(u, v, p)?;
            Ok(true)
        }
    }

    /// Finalises the builder into an immutable-topology [`UncertainGraph`].
    pub fn build(self) -> UncertainGraph {
        UncertainGraph::from_validated_parts(self.num_vertices, self.endpoints, self.probabilities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty_graph() {
        let g = UncertainGraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let mut b = UncertainGraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(2, 0, 0.5),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            b.add_edge(0, 5, 0.5),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }

    #[test]
    fn rejects_self_loops_and_bad_probabilities() {
        let mut b = UncertainGraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(1, 1, 0.5),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            b.add_edge(0, 1, 0.0),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 1, -3.0),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 1, 2.0),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_parallel_edges_in_both_orientations() {
        let mut b = UncertainGraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        assert!(matches!(
            b.add_edge(0, 1, 0.7),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            b.add_edge(1, 0, 0.7),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn add_edge_if_absent_is_idempotent() {
        let mut b = UncertainGraphBuilder::new(3);
        assert!(b.add_edge_if_absent(0, 1, 0.5).unwrap());
        assert!(!b.add_edge_if_absent(1, 0, 0.9).unwrap());
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!((g.edge_probability(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_ids_are_insertion_order() {
        let mut b = UncertainGraphBuilder::with_capacity(4, 3);
        let e0 = b.add_edge(0, 1, 0.1).unwrap();
        let e1 = b.add_edge(1, 2, 0.2).unwrap();
        let e2 = b.add_edge(2, 3, 0.3).unwrap();
        assert_eq!((e0, e1, e2), (0, 1, 2));
        let g = b.build();
        assert!((g.edge_probability(1) - 0.2).abs() < 1e-12);
        assert_eq!(g.edge_endpoints(2), (2, 3));
    }

    #[test]
    fn contains_edge_tracks_insertions() {
        let mut b = UncertainGraphBuilder::new(4);
        assert!(!b.contains_edge(0, 1));
        b.add_edge(0, 1, 0.3).unwrap();
        assert!(b.contains_edge(0, 1));
        assert!(b.contains_edge(1, 0));
        assert!(!b.contains_edge(2, 3));
    }
}
