//! # uncertain-graph
//!
//! Core data structures for *uncertain graphs* (also called probabilistic
//! graphs): undirected graphs `G = (V, E, p)` in which every edge `e ∈ E`
//! carries an existence probability `p(e) ∈ (0, 1]`.
//!
//! Under *possible-world semantics* an uncertain graph with `|E|` edges is a
//! compact representation of `2^|E|` deterministic graphs (worlds), each
//! obtained by independently including every edge `e` with probability
//! `p(e)`.  Exact query evaluation sums over all worlds, which is only
//! feasible for toy graphs; practical systems rely on Monte-Carlo sampling of
//! worlds.  This crate provides:
//!
//! * [`UncertainGraph`] — a compact CSR-backed representation with O(1) edge
//!   probability access and O(deg) neighbourhood iteration,
//! * [`UncertainGraphBuilder`] — validated construction (rejects self loops,
//!   parallel edges and out-of-range probabilities),
//! * [`entropy`] — per-edge and whole-graph entropy `H(G) = Σ_e H(p_e)`,
//! * [`worlds`] — exact possible-world enumeration (small graphs) and
//!   Monte-Carlo world sampling (any size),
//! * [`partition`] — vertex partitions into shards: per-shard induced
//!   subgraphs plus an explicit cut-edge set with stable id remapping (the
//!   substrate of graph-sharded evaluation),
//! * [`io`] — a plain-text edge-list format plus serde support,
//! * [`stats`] — summary statistics matching Table 1 of the paper.
//!
//! The crate is the substrate on which the sparsification algorithms
//! (`ugs-core`), the adapted deterministic baselines (`ugs-baselines`) and the
//! Monte-Carlo query engine (`ugs-queries`) are built.
//!
//! ## Example
//!
//! ```
//! use uncertain_graph::UncertainGraphBuilder;
//!
//! // The 4-vertex, 6-edge example of Figure 1(a) in the paper: every edge
//! // has probability 0.3.
//! let mut b = UncertainGraphBuilder::new(4);
//! for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
//!     b.add_edge(u, v, 0.3).unwrap();
//! }
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 6);
//! // Expected degree of every vertex is 3 * 0.3 = 0.9.
//! assert!((g.expected_degree(0) - 0.9).abs() < 1e-12);
//! // Probability that the graph is connected (Figure 1 reports ~0.219).
//! let p_connected = uncertain_graph::worlds::exact_connected_probability(&g).unwrap();
//! assert!((p_connected - 0.219).abs() < 5e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod entropy;
pub mod error;
pub mod graph;
pub mod io;
pub mod partition;
pub mod stats;
pub mod worlds;

pub use builder::UncertainGraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, EdgeRef, UncertainGraph, VertexId};
pub use partition::{
    CutEdge, GraphPartition, HaloPlan, HaloStats, PartitionError, PushEdge, Shard, ShardHalo,
    ShardHaloStats, NOT_IN_HALO,
};
pub use stats::GraphStatistics;
pub use worlds::{PossibleWorld, SkipSampler, WorldSampler};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::builder::UncertainGraphBuilder;
    pub use crate::entropy::{edge_entropy, graph_entropy, relative_entropy};
    pub use crate::error::GraphError;
    pub use crate::graph::{EdgeId, EdgeRef, UncertainGraph, VertexId};
    pub use crate::partition::{
        CutEdge, GraphPartition, HaloPlan, HaloStats, PartitionError, PushEdge, Shard, ShardHalo,
        ShardHaloStats, NOT_IN_HALO,
    };
    pub use crate::stats::GraphStatistics;
    pub use crate::worlds::{PossibleWorld, SkipSampler, WorldSampler};
}
