//! Error types for uncertain-graph construction and manipulation.

use std::fmt;

/// Errors raised when building or mutating an [`crate::UncertainGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex index was at least the number of vertices of the graph.
    VertexOutOfRange {
        /// Offending vertex index.
        vertex: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge index was at least the number of edges of the graph.
    EdgeOutOfRange {
        /// Offending edge index.
        edge: usize,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// An edge probability was outside the half-open interval `(0, 1]`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
    /// A self loop `(u, u)` was supplied; the paper assumes simple graphs.
    SelfLoop {
        /// The looping vertex.
        vertex: usize,
    },
    /// A parallel (duplicate) edge was supplied.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The requested edge does not exist.
    MissingEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// A vertex labelling did not cover the vertex set (one label per
    /// vertex is required).
    LabelingSize {
        /// Number of labels supplied.
        got: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A graph was too large for exact possible-world enumeration.
    TooManyEdgesForEnumeration {
        /// Number of edges in the graph.
        num_edges: usize,
        /// Maximum number of edges supported by exact enumeration.
        max_edges: usize,
    },
    /// An error occurred while parsing the text edge-list format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O error occurred while reading or writing a graph.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge {edge} out of range for a graph with {num_edges} edges"
                )
            }
            GraphError::InvalidProbability { value } => {
                write!(f, "edge probability {value} is outside (0, 1]")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop on vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::MissingEdge { u, v } => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::LabelingSize { got, num_vertices } => write!(
                f,
                "vertex labelling has {got} entries for a graph with {num_vertices} vertices"
            ),
            GraphError::TooManyEdgesForEnumeration {
                num_edges,
                max_edges,
            } => write!(
                f,
                "exact enumeration supports at most {max_edges} edges, graph has {num_edges}"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

/// Validates that a probability lies in `(0, 1]`.
///
/// The paper defines `p : E → (0, 1]`; a probability of exactly zero means
/// the edge does not exist and must simply be omitted from the graph.
pub fn validate_probability(p: f64) -> Result<(), GraphError> {
    if p.is_finite() && p > 0.0 && p <= 1.0 {
        Ok(())
    } else {
        Err(GraphError::InvalidProbability { value: p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_open_unit_interval() {
        assert!(validate_probability(1e-12).is_ok());
        assert!(validate_probability(0.5).is_ok());
        assert!(validate_probability(1.0).is_ok());
    }

    #[test]
    fn validate_rejects_zero_negative_and_above_one() {
        assert!(validate_probability(0.0).is_err());
        assert!(validate_probability(-0.1).is_err());
        assert!(validate_probability(1.0 + 1e-9).is_err());
    }

    #[test]
    fn validate_rejects_non_finite() {
        assert!(validate_probability(f64::NAN).is_err());
        assert!(validate_probability(f64::INFINITY).is_err());
        assert!(validate_probability(f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn errors_display_useful_messages() {
        let cases: Vec<(GraphError, &str)> = vec![
            (
                GraphError::VertexOutOfRange {
                    vertex: 7,
                    num_vertices: 5,
                },
                "vertex 7 out of range",
            ),
            (
                GraphError::EdgeOutOfRange {
                    edge: 9,
                    num_edges: 3,
                },
                "edge 9 out of range",
            ),
            (
                GraphError::InvalidProbability { value: 2.0 },
                "outside (0, 1]",
            ),
            (GraphError::SelfLoop { vertex: 3 }, "self loop"),
            (GraphError::DuplicateEdge { u: 1, v: 2 }, "duplicate edge"),
            (GraphError::MissingEdge { u: 0, v: 4 }, "does not exist"),
            (
                GraphError::TooManyEdgesForEnumeration {
                    num_edges: 64,
                    max_edges: 30,
                },
                "exact enumeration",
            ),
            (
                GraphError::Parse {
                    line: 12,
                    message: "bad float".into(),
                },
                "line 12",
            ),
            (GraphError::Io("disk on fire".into()), "disk on fire"),
        ];
        for (err, needle) in cases {
            let shown = err.to_string();
            assert!(
                shown.contains(needle),
                "{shown:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
