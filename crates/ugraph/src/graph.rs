//! The [`UncertainGraph`] type: a compact, CSR-backed undirected graph in
//! which every edge carries an existence probability in `(0, 1]`.

use crate::error::{validate_probability, GraphError};

/// Index of a vertex. Vertices are always the dense range `0..num_vertices()`.
pub type VertexId = usize;

/// Index of an edge. Edges are the dense range `0..num_edges()` in insertion
/// order; the identity of an edge is stable for the lifetime of the graph.
pub type EdgeId = usize;

/// A borrowed view of a single uncertain edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Identifier of the edge inside its graph.
    pub id: EdgeId,
    /// Smaller endpoint as stored (construction order, not sorted).
    pub u: VertexId,
    /// Other endpoint.
    pub v: VertexId,
    /// Existence probability in `(0, 1]`.
    pub p: f64,
}

impl EdgeRef {
    /// Returns the endpoint opposite to `w`, or `None` if `w` is not an
    /// endpoint of this edge.
    pub fn other(&self, w: VertexId) -> Option<VertexId> {
        if w == self.u {
            Some(self.v)
        } else if w == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

/// An undirected uncertain graph `G = (V, E, p)`.
///
/// * Vertices are the dense integer range `0..n`.
/// * Edges are simple (no self loops, no parallel edges) and undirected.
/// * Every edge has a probability of existence in `(0, 1]`.
///
/// Internally the graph stores a flat edge table plus a CSR adjacency
/// structure (offsets + packed `(neighbour, edge)` pairs) so that
/// neighbourhood iteration is cache friendly and edge-probability lookups are
/// O(1).  Edge probabilities are the only mutable part of the structure
/// ([`UncertainGraph::set_edge_probability`]); the sparsification algorithms
/// rely on this to redistribute probability mass without rebuilding the
/// adjacency.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainGraph {
    num_vertices: usize,
    /// Endpoints of every edge, `edge_endpoints[e] = (u, v)`.
    endpoints: Vec<(u32, u32)>,
    /// Probability of every edge.
    probabilities: Vec<f64>,
    /// CSR offsets: adjacency of vertex `u` is `adj[offsets[u]..offsets[u+1]]`.
    offsets: Vec<usize>,
    /// Packed adjacency entries `(neighbour, edge id)`.
    adj: Vec<(u32, u32)>,
}

impl UncertainGraph {
    /// Builds a graph directly from an edge list.
    ///
    /// This is a convenience wrapper around [`crate::UncertainGraphBuilder`];
    /// it performs the same validation (vertex range, probability range, no
    /// self loops, no duplicates).
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId, f64)>,
    {
        let mut builder = crate::builder::UncertainGraphBuilder::new(num_vertices);
        for (u, v, p) in edges {
            builder.add_edge(u, v, p)?;
        }
        Ok(builder.build())
    }

    /// Internal constructor used by the builder: inputs are already validated.
    pub(crate) fn from_validated_parts(
        num_vertices: usize,
        endpoints: Vec<(u32, u32)>,
        probabilities: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(endpoints.len(), probabilities.len());
        // Build CSR adjacency with a counting pass followed by a fill pass.
        let mut degree = vec![0usize; num_vertices];
        for &(u, v) in &endpoints {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0usize);
        for d in &degree {
            let last = *offsets.last().expect("offsets non-empty");
            offsets.push(last + d);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![(0u32, 0u32); endpoints.len() * 2];
        for (e, &(u, v)) in endpoints.iter().enumerate() {
            adj[cursor[u as usize]] = (v, e as u32);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, e as u32);
            cursor[v as usize] += 1;
        }
        UncertainGraph {
            num_vertices,
            endpoints,
            probabilities,
            offsets,
            adj,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Iterator over all vertex identifiers `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices
    }

    /// Iterator over all edges in identifier order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.endpoints
            .iter()
            .zip(self.probabilities.iter())
            .enumerate()
            .map(|(id, (&(u, v), &p))| EdgeRef {
                id,
                u: u as usize,
                v: v as usize,
                p,
            })
    }

    /// Endpoints `(u, v)` of edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (u, v) = self.endpoints[e];
        (u as usize, v as usize)
    }

    /// A full [`EdgeRef`] for edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        let (u, v) = self.edge_endpoints(e);
        EdgeRef {
            id: e,
            u,
            v,
            p: self.probabilities[e],
        }
    }

    /// Probability of edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_probability(&self, e: EdgeId) -> f64 {
        self.probabilities[e]
    }

    /// Overwrites the probability of edge `e`.
    ///
    /// Returns an error if the new probability is outside `(0, 1]` or the
    /// edge does not exist.  The adjacency structure is untouched.
    pub fn set_edge_probability(&mut self, e: EdgeId, p: f64) -> Result<(), GraphError> {
        if e >= self.num_edges() {
            return Err(GraphError::EdgeOutOfRange {
                edge: e,
                num_edges: self.num_edges(),
            });
        }
        validate_probability(p)?;
        self.probabilities[e] = p;
        Ok(())
    }

    /// Slice of all edge probabilities indexed by [`EdgeId`].
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// A deterministic 64-bit structural fingerprint: FNV-1a over the
    /// vertex count, every edge's endpoints in id order, and the **exact
    /// bits** of every probability.  Two graphs fingerprint equal iff they
    /// have the same vertex count and the same edge list (ids, endpoints,
    /// bitwise probabilities) — the identity a deterministic result cache
    /// keys on: equal fingerprints + equal seeds/budgets replay the same
    /// worlds and therefore the same answers, bit for bit.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.num_vertices as u64);
        mix(self.endpoints.len() as u64);
        for (&(u, v), &p) in self.endpoints.iter().zip(&self.probabilities) {
            mix(u64::from(u));
            mix(u64::from(v));
            mix(p.to_bits());
        }
        hash
    }

    /// Degree of `u` in the *support* graph (number of incident edges,
    /// ignoring probabilities).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Expected degree of `u`: the sum of the probabilities of its incident
    /// edges (linearity of expectation).
    pub fn expected_degree(&self, u: VertexId) -> f64 {
        self.neighbors(u).map(|(_, _, p)| p).sum()
    }

    /// Expected degrees of all vertices as a dense vector indexed by vertex.
    pub fn expected_degrees(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.num_vertices];
        for e in self.edges() {
            d[e.u] += e.p;
            d[e.v] += e.p;
        }
        d
    }

    /// Iterator over the neighbourhood of `u`, yielding
    /// `(neighbour, edge id, probability)` triples.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = (VertexId, EdgeId, f64)> + '_ {
        self.adj[self.offsets[u]..self.offsets[u + 1]]
            .iter()
            .map(move |&(v, e)| (v as usize, e as usize, self.probabilities[e as usize]))
    }

    /// Looks up the edge between `u` and `v`, if any.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u >= self.num_vertices || v >= self.num_vertices {
            return None;
        }
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[self.offsets[a]..self.offsets[a + 1]]
            .iter()
            .find(|&&(w, _)| w as usize == b)
            .map(|&(_, e)| e as usize)
    }

    /// Returns `true` if the edge `(u, v)` exists (in either orientation).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Sum of all edge probabilities, i.e. the expected number of edges of a
    /// sampled possible world.
    pub fn expected_num_edges(&self) -> f64 {
        self.probabilities.iter().sum()
    }

    /// Mean edge probability `E[p_e]`, or 0 for an edgeless graph.
    pub fn mean_edge_probability(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.expected_num_edges() / self.num_edges() as f64
        }
    }

    /// Entropy of the graph, `H(G) = Σ_e H(p_e)` (see [`crate::entropy`]).
    pub fn entropy(&self) -> f64 {
        crate::entropy::graph_entropy(self)
    }

    /// Returns `true` if the *support* graph (every edge present) is
    /// connected.  An empty graph and a single-vertex graph are connected by
    /// convention.
    pub fn support_is_connected(&self) -> bool {
        if self.num_vertices <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_vertices];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, _, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.num_vertices
    }

    /// Builds a new uncertain graph over the *same vertex set* containing only
    /// the listed edges (by id), each with a freshly specified probability.
    ///
    /// This is the primitive used by all sparsifiers: the sparsified graph
    /// `G' = (V, E', p')` keeps `V` and selects `E' ⊂ E`.
    ///
    /// Returns an error if an edge id is out of range or a probability is
    /// invalid. Duplicated edge ids are rejected as duplicate edges.
    pub fn subgraph_with_probabilities<I>(&self, edges: I) -> Result<UncertainGraph, GraphError>
    where
        I: IntoIterator<Item = (EdgeId, f64)>,
    {
        let mut builder = crate::builder::UncertainGraphBuilder::new(self.num_vertices);
        for (e, p) in edges {
            if e >= self.num_edges() {
                return Err(GraphError::EdgeOutOfRange {
                    edge: e,
                    num_edges: self.num_edges(),
                });
            }
            let (u, v) = self.edge_endpoints(e);
            builder.add_edge(u, v, p)?;
        }
        Ok(builder.build())
    }

    /// Builds a new uncertain graph keeping the listed edges with their
    /// *current* probabilities.
    pub fn subgraph_with_edges<I>(&self, edges: I) -> Result<UncertainGraph, GraphError>
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let with_p: Result<Vec<(EdgeId, f64)>, GraphError> = edges
            .into_iter()
            .map(|e| {
                if e >= self.num_edges() {
                    Err(GraphError::EdgeOutOfRange {
                        edge: e,
                        num_edges: self.num_edges(),
                    })
                } else {
                    Ok((e, self.probabilities[e]))
                }
            })
            .collect();
        self.subgraph_with_probabilities(with_p?)
    }

    /// Builds the induced subgraph on a set of vertices, relabelling the kept
    /// vertices to `0..k` in the order given. Returns the new graph along with
    /// the mapping `new id -> old id`.
    pub fn induced_subgraph(
        &self,
        vertices: &[VertexId],
    ) -> Result<(UncertainGraph, Vec<VertexId>), GraphError> {
        let (graph, vertex_map, _) = self.induced_subgraph_with_edges(vertices)?;
        Ok((graph, vertex_map))
    }

    /// [`UncertainGraph::induced_subgraph`] plus the **edge** mapping: the
    /// third component maps every new edge id to the id of the original edge
    /// it was copied from (`new edge id -> old edge id`, in new-id order).
    ///
    /// This is the primitive the partition layer ([`crate::partition`]) is
    /// built on: a shard must translate per-shard observations back into the
    /// stable edge ids of the parent graph.
    pub fn induced_subgraph_with_edges(
        &self,
        vertices: &[VertexId],
    ) -> Result<(UncertainGraph, Vec<VertexId>, Vec<EdgeId>), GraphError> {
        let mut new_id = vec![usize::MAX; self.num_vertices];
        for (i, &v) in vertices.iter().enumerate() {
            if v >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: self.num_vertices,
                });
            }
            new_id[v] = i;
        }
        let mut builder = crate::builder::UncertainGraphBuilder::new(vertices.len());
        let mut edge_map = Vec::new();
        for e in self.edges() {
            let (nu, nv) = (new_id[e.u], new_id[e.v]);
            if nu != usize::MAX && nv != usize::MAX {
                builder.add_edge(nu, nv, e.p)?;
                edge_map.push(e.id);
            }
        }
        Ok((builder.build(), vertices.to_vec(), edge_map))
    }

    /// The ids of all edges whose endpoints carry **different** labels — the
    /// cut set of the vertex partition described by `labels` (one label per
    /// vertex), in ascending edge-id order.
    ///
    /// Returns [`GraphError::LabelingSize`] when `labels` does not have
    /// exactly one entry per vertex.
    pub fn cut_edges(&self, labels: &[usize]) -> Result<Vec<EdgeId>, GraphError> {
        if labels.len() != self.num_vertices {
            return Err(GraphError::LabelingSize {
                got: labels.len(),
                num_vertices: self.num_vertices,
            });
        }
        Ok(self
            .edges()
            .filter(|e| labels[e.u] != labels[e.v])
            .map(|e| e.id)
            .collect())
    }

    /// Sum of the probabilities of the edges crossing the labelling — the
    /// expected number of cut edges of a sampled world (the quantity a good
    /// partitioner minimises).
    pub fn cut_probability_mass(&self, labels: &[usize]) -> Result<f64, GraphError> {
        let cuts = self.cut_edges(labels)?;
        Ok(cuts.iter().map(|&e| self.probabilities[e]).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4-cycle-plus-diagonals example used throughout the paper
    /// (Figure 1(a)): K4 with p = 0.3 everywhere.
    fn figure1a() -> UncertainGraph {
        UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.3),
                (0, 2, 0.3),
                (0, 3, 0.3),
                (1, 2, 0.3),
                (1, 3, 0.3),
                (2, 3, 0.3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = figure1a();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert!(!g.is_empty());
        assert_eq!(g.vertices().count(), 4);
        assert_eq!(g.edges().count(), 6);
    }

    #[test]
    fn degrees_and_expected_degrees() {
        let g = figure1a();
        for u in g.vertices() {
            assert_eq!(g.degree(u), 3);
            assert!((g.expected_degree(u) - 0.9).abs() < 1e-12);
        }
        let d = g.expected_degrees();
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|&x| (x - 0.9).abs() < 1e-12));
    }

    #[test]
    fn expected_degree_sum_equals_twice_probability_mass() {
        let g = UncertainGraph::from_edges(5, [(0, 1, 0.2), (1, 2, 0.9), (3, 4, 0.5)]).unwrap();
        let sum: f64 = g.expected_degrees().iter().sum();
        assert!((sum - 2.0 * g.expected_num_edges()).abs() < 1e-12);
    }

    #[test]
    fn neighbors_enumerates_incident_edges() {
        let g = figure1a();
        let mut ns: Vec<usize> = g.neighbors(0).map(|(v, _, _)| v).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2, 3]);
        for (_, e, p) in g.neighbors(0) {
            assert_eq!(g.edge_probability(e), p);
        }
    }

    #[test]
    fn find_edge_both_orientations() {
        let g = figure1a();
        let e = g.find_edge(2, 3).unwrap();
        assert_eq!(g.find_edge(3, 2), Some(e));
        let (u, v) = g.edge_endpoints(e);
        assert_eq!((u.min(v), u.max(v)), (2, 3));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.find_edge(0, 99), None);
    }

    #[test]
    fn edge_ref_other_endpoint() {
        let g = figure1a();
        let e = g.edge(g.find_edge(0, 1).unwrap());
        assert_eq!(e.other(e.u), Some(e.v));
        assert_eq!(e.other(e.v), Some(e.u));
        // vertex 3 is not an endpoint of edge (0, 1)
        assert_eq!(e.other(3), None);
    }

    #[test]
    fn set_edge_probability_validates() {
        let mut g = figure1a();
        g.set_edge_probability(0, 0.6).unwrap();
        assert!((g.edge_probability(0) - 0.6).abs() < 1e-12);
        assert!(g.set_edge_probability(0, 0.0).is_err());
        assert!(g.set_edge_probability(0, 1.5).is_err());
        assert!(g.set_edge_probability(99, 0.5).is_err());
        // failed updates must not corrupt the stored value
        assert!((g.edge_probability(0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn expected_num_edges_and_mean_probability() {
        let g = figure1a();
        assert!((g.expected_num_edges() - 1.8).abs() < 1e-12);
        assert!((g.mean_edge_probability() - 0.3).abs() < 1e-12);
        let empty = UncertainGraph::from_edges(3, []).unwrap();
        assert_eq!(empty.mean_edge_probability(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn support_connectivity() {
        let g = figure1a();
        assert!(g.support_is_connected());
        let disconnected = UncertainGraph::from_edges(4, [(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        assert!(!disconnected.support_is_connected());
        let single = UncertainGraph::from_edges(1, []).unwrap();
        assert!(single.support_is_connected());
        let empty = UncertainGraph::from_edges(0, []).unwrap();
        assert!(empty.support_is_connected());
    }

    #[test]
    fn subgraph_with_probabilities_keeps_vertex_set() {
        let g = figure1a();
        // Figure 1(b): the sparsified graph keeps half the edges with p = 0.6.
        let kept = vec![
            (g.find_edge(0, 1).unwrap(), 0.6),
            (g.find_edge(1, 2).unwrap(), 0.6),
            (g.find_edge(2, 3).unwrap(), 0.6),
        ];
        let s = g.subgraph_with_probabilities(kept).unwrap();
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.num_edges(), 3);
        assert!((s.expected_num_edges() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn subgraph_with_edges_preserves_probabilities() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.25), (1, 2, 0.75)]).unwrap();
        let s = g.subgraph_with_edges([1]).unwrap();
        assert_eq!(s.num_edges(), 1);
        assert!((s.edge_probability(0) - 0.75).abs() < 1e-12);
        assert!(g.subgraph_with_edges([7]).is_err());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = figure1a();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // triangle 1-2-3
        assert_eq!(map, vec![1, 2, 3]);
        assert!(g.induced_subgraph(&[0, 9]).is_err());
    }

    #[test]
    fn induced_subgraph_with_edges_maps_edge_ids() {
        let g = figure1a();
        let (sub, vmap, emap) = g.induced_subgraph_with_edges(&[1, 2, 3]).unwrap();
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(emap.len(), 3);
        assert_eq!(vmap, vec![1, 2, 3]);
        // Every mapped edge must connect the same global endpoints with the
        // same probability.
        for (local, &global) in emap.iter().enumerate() {
            let le = sub.edge(local);
            let ge = g.edge(global);
            let (lu, lv) = (vmap[le.u], vmap[le.v]);
            assert_eq!((lu.min(lv), lu.max(lv)), (ge.u.min(ge.v), ge.u.max(ge.v)));
            assert_eq!(le.p, ge.p);
        }
        // Edge ids are handed out in ascending global-edge order.
        let mut sorted = emap.clone();
        sorted.sort_unstable();
        assert_eq!(emap, sorted);
    }

    #[test]
    fn cut_edges_extracts_the_crossing_set() {
        let g = figure1a();
        // {0, 1} vs {2, 3}: crossing edges are (0,2), (0,3), (1,2), (1,3).
        let labels = [0usize, 0, 1, 1];
        let cuts = g.cut_edges(&labels).unwrap();
        assert_eq!(cuts.len(), 4);
        for &e in &cuts {
            let (u, v) = g.edge_endpoints(e);
            assert_ne!(labels[u], labels[v]);
        }
        assert!((g.cut_probability_mass(&labels).unwrap() - 4.0 * 0.3).abs() < 1e-12);
        // One shard: no cuts.  Wrong labelling length: typed error.
        assert!(g.cut_edges(&[0, 0, 0, 0]).unwrap().is_empty());
        assert_eq!(
            g.cut_edges(&[0, 1]),
            Err(GraphError::LabelingSize {
                got: 2,
                num_vertices: 4
            })
        );
    }

    #[test]
    fn from_edges_rejects_invalid_input() {
        assert!(UncertainGraph::from_edges(2, [(0, 0, 0.5)]).is_err());
        assert!(UncertainGraph::from_edges(2, [(0, 1, 0.0)]).is_err());
        assert!(UncertainGraph::from_edges(2, [(0, 3, 0.5)]).is_err());
        assert!(UncertainGraph::from_edges(2, [(0, 1, 0.5), (1, 0, 0.6)]).is_err());
    }

    #[test]
    fn fingerprints_identify_the_exact_graph() {
        let build = |p: f64| UncertainGraph::from_edges(3, [(0, 1, p), (1, 2, 0.5)]).unwrap();
        // Stable: rebuilding the same graph reproduces the fingerprint.
        assert_eq!(build(0.9).fingerprint(), build(0.9).fingerprint());
        // Sensitive to probability bits …
        assert_ne!(build(0.9).fingerprint(), build(0.9 + 1e-12).fingerprint());
        // … to endpoints …
        let other = UncertainGraph::from_edges(3, [(0, 2, 0.9), (1, 2, 0.5)]).unwrap();
        assert_ne!(build(0.9).fingerprint(), other.fingerprint());
        // … and to isolated vertices the edge list alone cannot see.
        let padded = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5)]).unwrap();
        assert_ne!(build(0.9).fingerprint(), padded.fingerprint());
    }
}
