//! Reading and writing uncertain graphs.
//!
//! Two formats are supported:
//!
//! * **Text edge list** — one `u v p` triple per line, `#`-prefixed comment
//!   lines and blank lines ignored.  A header comment carries the number of
//!   vertices so isolated vertices survive a round trip.  This matches the
//!   de-facto format used by published uncertain-graph datasets (Flickr,
//!   Twitter, BIOMINE, …).
//! * **Serde** — [`SerializableGraph`] is a `serde`-friendly mirror of
//!   [`UncertainGraph`] that can be written as JSON (or any serde format) and
//!   converted back, plus a compact binary encoding built on [`bytes`].

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::UncertainGraph;

/// A serde-serializable mirror of an [`UncertainGraph`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SerializableGraph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Edge list `(u, v, p)`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl From<&UncertainGraph> for SerializableGraph {
    fn from(g: &UncertainGraph) -> Self {
        SerializableGraph {
            num_vertices: g.num_vertices(),
            edges: g.edges().map(|e| (e.u, e.v, e.p)).collect(),
        }
    }
}

impl TryFrom<SerializableGraph> for UncertainGraph {
    type Error = GraphError;

    fn try_from(s: SerializableGraph) -> Result<Self, Self::Error> {
        UncertainGraph::from_edges(s.num_vertices, s.edges)
    }
}

/// Writes `g` in the text edge-list format to an arbitrary writer.
pub fn write_text<W: Write>(g: &UncertainGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# uncertain graph: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    writeln!(w, "# vertices {}", g.num_vertices())?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.p)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` as a text edge list to a file path.
pub fn write_text_file<P: AsRef<Path>>(g: &UncertainGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_text(g, file)
}

/// Reads an uncertain graph from the text edge-list format.
///
/// If no `# vertices N` header is present, the number of vertices is inferred
/// as `max vertex id + 1`.
pub fn read_text<R: BufRead>(reader: R) -> Result<UncertainGraph, GraphError> {
    let mut declared_vertices: Option<usize> = None;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("vertices") {
                if let Some(n) = parts.next() {
                    declared_vertices = Some(n.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("invalid vertex count {n:?}"),
                    })?);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_field = |part: Option<&str>, what: &str| -> Result<String, GraphError> {
            part.map(str::to_owned).ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })
        };
        let u: usize = parse_field(parts.next(), "source vertex")?.parse().map_err(|_| {
            GraphError::Parse { line: lineno, message: "invalid source vertex".into() }
        })?;
        let v: usize = parse_field(parts.next(), "target vertex")?.parse().map_err(|_| {
            GraphError::Parse { line: lineno, message: "invalid target vertex".into() }
        })?;
        let p: f64 = parse_field(parts.next(), "probability")?.parse().map_err(|_| {
            GraphError::Parse { line: lineno, message: "invalid probability".into() }
        })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse { line: lineno, message: "trailing fields".into() });
        }
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v, p));
    }
    let num_vertices = declared_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_vertex + 1 });
    UncertainGraph::from_edges(num_vertices, edges)
}

/// Reads an uncertain graph from a text edge-list file.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_text(std::io::BufReader::new(file))
}

/// Serialises `g` to a JSON string.
pub fn to_json(g: &UncertainGraph) -> Result<String, GraphError> {
    serde_json::to_string(&SerializableGraph::from(g)).map_err(|e| GraphError::Io(e.to_string()))
}

/// Deserialises an uncertain graph from a JSON string produced by
/// [`to_json`].
pub fn from_json(json: &str) -> Result<UncertainGraph, GraphError> {
    let s: SerializableGraph =
        serde_json::from_str(json).map_err(|e| GraphError::Parse { line: 0, message: e.to_string() })?;
    s.try_into()
}

/// Magic bytes identifying the compact binary encoding.
const BINARY_MAGIC: &[u8; 4] = b"UGS1";

/// Encodes `g` into a compact binary representation:
/// magic, `u64` vertex count, `u64` edge count, then `(u32, u32, f64)` per
/// edge in little-endian order.
pub fn to_bytes(g: &UncertainGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 16 + g.num_edges() * 16);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for e in g.edges() {
        buf.put_u32_le(e.u as u32);
        buf.put_u32_le(e.v as u32);
        buf.put_f64_le(e.p);
    }
    buf.freeze()
}

/// Decodes a graph previously encoded with [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<UncertainGraph, GraphError> {
    if data.len() < 20 || &data[..4] != BINARY_MAGIC {
        return Err(GraphError::Parse { line: 0, message: "bad magic for binary graph".into() });
    }
    data.advance(4);
    let num_vertices = data.get_u64_le() as usize;
    let num_edges = data.get_u64_le() as usize;
    if data.remaining() < num_edges * 16 {
        return Err(GraphError::Parse { line: 0, message: "truncated binary graph".into() });
    }
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = data.get_u32_le() as usize;
        let v = data.get_u32_le() as usize;
        let p = data.get_f64_le();
        edges.push((u, v, p));
    }
    UncertainGraph::from_edges(num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UncertainGraph {
        UncertainGraph::from_edges(5, [(0, 1, 0.25), (1, 2, 0.5), (3, 4, 1.0)]).unwrap()
    }

    #[test]
    fn text_round_trip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let back = read_text(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 3);
        assert!((back.edge_probability(back.find_edge(1, 2).unwrap()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_reader_infers_vertex_count_without_header() {
        let input = "0 1 0.3\n2 5 0.9\n";
        let g = read_text(std::io::Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_skips_comments_and_blank_lines() {
        let input = "# a comment\n\n0 1 0.3\n   \n# another\n1 2 0.4\n";
        let g = read_text(std::io::Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_reports_line_numbers_on_errors() {
        let input = "0 1 0.3\n0 oops 0.4\n";
        match read_text(std::io::Cursor::new(input)) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let input = "0 1\n";
        assert!(matches!(read_text(std::io::Cursor::new(input)), Err(GraphError::Parse { line: 1, .. })));
        let input = "0 1 0.5 9\n";
        assert!(matches!(read_text(std::io::Cursor::new(input)), Err(GraphError::Parse { line: 1, .. })));
        let input = "# vertices nope\n0 1 0.5\n";
        assert!(matches!(read_text(std::io::Cursor::new(input)), Err(GraphError::Parse { line: 1, .. })));
    }

    #[test]
    fn text_file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("ugs-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        write_text_file(&g, &path).unwrap();
        let back = read_text_file(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_round_trip() {
        let g = sample();
        let json = to_json(&g).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(SerializableGraph::from(&g), SerializableGraph::from(&back));
        assert!(from_json("{not json").is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(SerializableGraph::from(&g), SerializableGraph::from(&back));
    }

    #[test]
    fn binary_rejects_corrupt_input() {
        assert!(from_bytes(b"??").is_err());
        assert!(from_bytes(b"XXXX0000000000000000").is_err());
        let g = sample();
        let bytes = to_bytes(&g);
        assert!(from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn serializable_graph_rejects_invalid_edges_on_conversion() {
        let s = SerializableGraph { num_vertices: 2, edges: vec![(0, 1, 2.0)] };
        assert!(UncertainGraph::try_from(s).is_err());
    }
}
