//! Reading and writing uncertain graphs.
//!
//! Three formats are supported:
//!
//! * **Text edge list** — one `u v p` triple per line, `#`-prefixed comment
//!   lines and blank lines ignored.  A header comment carries the number of
//!   vertices so isolated vertices survive a round trip.  This matches the
//!   de-facto format used by published uncertain-graph datasets (Flickr,
//!   Twitter, BIOMINE, …).
//! * **JSON** — [`SerializableGraph`] is a plain mirror of
//!   [`UncertainGraph`] written and read with the workspace's dependency-free
//!   `minijson` crate ([`to_json`] / [`from_json`]).
//! * **Binary** — a compact little-endian encoding ([`to_bytes`] /
//!   [`from_bytes`]) that round-trips probabilities exactly.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use minijson::{ObjBuilder, Value};

use crate::error::GraphError;
use crate::graph::UncertainGraph;

/// A serialisation-friendly mirror of an [`UncertainGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct SerializableGraph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Edge list `(u, v, p)`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl From<&UncertainGraph> for SerializableGraph {
    fn from(g: &UncertainGraph) -> Self {
        SerializableGraph {
            num_vertices: g.num_vertices(),
            edges: g.edges().map(|e| (e.u, e.v, e.p)).collect(),
        }
    }
}

impl TryFrom<SerializableGraph> for UncertainGraph {
    type Error = GraphError;

    fn try_from(s: SerializableGraph) -> Result<Self, Self::Error> {
        UncertainGraph::from_edges(s.num_vertices, s.edges)
    }
}

impl SerializableGraph {
    /// Renders the mirror as a compact JSON document.
    pub fn to_json(&self) -> String {
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|&(u, v, p)| Value::Arr(vec![u.into(), v.into(), p.into()]))
            .collect();
        ObjBuilder::new()
            .field("num_vertices", self.num_vertices)
            .field("edges", Value::Arr(edges))
            .build()
            .render()
    }

    /// Parses a JSON document produced by [`SerializableGraph::to_json`].
    pub fn from_json(json: &str) -> Result<Self, GraphError> {
        let parse_err = |message: String| GraphError::Parse { line: 0, message };
        let value = Value::parse(json).map_err(|e| parse_err(e.to_string()))?;
        let num_vertices = value
            .get_usize("num_vertices")
            .ok_or_else(|| parse_err("missing or invalid `num_vertices`".into()))?;
        let edge_values = value
            .get("edges")
            .and_then(Value::as_array)
            .ok_or_else(|| parse_err("missing or invalid `edges`".into()))?;
        let mut edges = Vec::with_capacity(edge_values.len());
        for (i, edge) in edge_values.iter().enumerate() {
            let triple = edge.as_array().filter(|t| t.len() == 3);
            let parsed =
                triple.and_then(|t| Some((t[0].as_usize()?, t[1].as_usize()?, t[2].as_f64()?)));
            match parsed {
                Some(triple) => edges.push(triple),
                None => return Err(parse_err(format!("edge {i} is not a [u, v, p] triple"))),
            }
        }
        Ok(SerializableGraph {
            num_vertices,
            edges,
        })
    }
}

/// Writes `g` in the text edge-list format to an arbitrary writer.
pub fn write_text<W: Write>(g: &UncertainGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# uncertain graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    writeln!(w, "# vertices {}", g.num_vertices())?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.p)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` as a text edge list to a file path.
pub fn write_text_file<P: AsRef<Path>>(g: &UncertainGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_text(g, file)
}

/// Reads an uncertain graph from the text edge-list format.
///
/// If no `# vertices N` header is present, the number of vertices is inferred
/// as `max vertex id + 1`.
pub fn read_text<R: BufRead>(reader: R) -> Result<UncertainGraph, GraphError> {
    let mut declared_vertices: Option<usize> = None;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("vertices") {
                if let Some(n) = parts.next() {
                    declared_vertices = Some(n.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("invalid vertex count {n:?}"),
                    })?);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_field = |part: Option<&str>, what: &str| -> Result<String, GraphError> {
            part.map(str::to_owned).ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })
        };
        let u: usize = parse_field(parts.next(), "source vertex")?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: "invalid source vertex".into(),
            })?;
        let v: usize = parse_field(parts.next(), "target vertex")?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: "invalid target vertex".into(),
            })?;
        let p: f64 = parse_field(parts.next(), "probability")?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: "invalid probability".into(),
            })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                message: "trailing fields".into(),
            });
        }
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v, p));
    }
    let num_vertices =
        declared_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_vertex + 1 });
    UncertainGraph::from_edges(num_vertices, edges)
}

/// Reads an uncertain graph from a text edge-list file.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_text(std::io::BufReader::new(file))
}

/// Serialises `g` to a JSON string.
pub fn to_json(g: &UncertainGraph) -> Result<String, GraphError> {
    Ok(SerializableGraph::from(g).to_json())
}

/// Deserialises an uncertain graph from a JSON string produced by
/// [`to_json`].
pub fn from_json(json: &str) -> Result<UncertainGraph, GraphError> {
    SerializableGraph::from_json(json)?.try_into()
}

/// Magic bytes identifying the compact binary encoding.
const BINARY_MAGIC: &[u8; 4] = b"UGS1";

/// Encodes `g` into a compact binary representation:
/// magic, `u64` vertex count, `u64` edge count, then `(u32, u32, f64)` per
/// edge in little-endian order.
pub fn to_bytes(g: &UncertainGraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 16 + g.num_edges() * 16);
    buf.extend_from_slice(BINARY_MAGIC);
    buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    buf.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    for e in g.edges() {
        buf.extend_from_slice(&(e.u as u32).to_le_bytes());
        buf.extend_from_slice(&(e.v as u32).to_le_bytes());
        buf.extend_from_slice(&e.p.to_le_bytes());
    }
    buf
}

/// Decodes a graph previously encoded with [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<UncertainGraph, GraphError> {
    let corrupt = |message: &str| GraphError::Parse {
        line: 0,
        message: message.into(),
    };
    if data.len() < 20 || &data[..4] != BINARY_MAGIC {
        return Err(corrupt("bad magic for binary graph"));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
    let num_vertices = read_u64(4) as usize;
    let num_edges = read_u64(12) as usize;
    let body = &data[20..];
    if body.len() < num_edges.saturating_mul(16) {
        return Err(corrupt("truncated binary graph"));
    }
    let mut edges = Vec::with_capacity(num_edges);
    for chunk in body.chunks_exact(16).take(num_edges) {
        let u = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) as usize;
        let v = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes")) as usize;
        let p = f64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
        edges.push((u, v, p));
    }
    UncertainGraph::from_edges(num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UncertainGraph {
        UncertainGraph::from_edges(5, [(0, 1, 0.25), (1, 2, 0.5), (3, 4, 1.0)]).unwrap()
    }

    #[test]
    fn text_round_trip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let back = read_text(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 3);
        assert!((back.edge_probability(back.find_edge(1, 2).unwrap()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_reader_infers_vertex_count_without_header() {
        let input = "0 1 0.3\n2 5 0.9\n";
        let g = read_text(std::io::Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_skips_comments_and_blank_lines() {
        let input = "# a comment\n\n0 1 0.3\n   \n# another\n1 2 0.4\n";
        let g = read_text(std::io::Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_reports_line_numbers_on_errors() {
        let input = "0 1 0.3\n0 oops 0.4\n";
        match read_text(std::io::Cursor::new(input)) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let input = "0 1\n";
        assert!(matches!(
            read_text(std::io::Cursor::new(input)),
            Err(GraphError::Parse { line: 1, .. })
        ));
        let input = "0 1 0.5 9\n";
        assert!(matches!(
            read_text(std::io::Cursor::new(input)),
            Err(GraphError::Parse { line: 1, .. })
        ));
        let input = "# vertices nope\n0 1 0.5\n";
        assert!(matches!(
            read_text(std::io::Cursor::new(input)),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn text_file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("ugs-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        write_text_file(&g, &path).unwrap();
        let back = read_text_file(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_round_trip() {
        let g = sample();
        let json = to_json(&g).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(SerializableGraph::from(&g), SerializableGraph::from(&back));
        assert!(from_json("{not json").is_err());
    }

    #[test]
    fn json_rejects_structurally_wrong_documents() {
        assert!(
            from_json(r#"{"edges": []}"#).is_err(),
            "missing num_vertices"
        );
        assert!(
            from_json(r#"{"num_vertices": 3}"#).is_err(),
            "missing edges"
        );
        assert!(
            from_json(r#"{"num_vertices": 3, "edges": [[0, 1]]}"#).is_err(),
            "short triple"
        );
        assert!(
            from_json(r#"{"num_vertices": 3, "edges": [[0, "x", 0.5]]}"#).is_err(),
            "non-numeric vertex"
        );
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(SerializableGraph::from(&g), SerializableGraph::from(&back));
    }

    #[test]
    fn binary_rejects_corrupt_input() {
        assert!(from_bytes(b"??").is_err());
        assert!(from_bytes(b"XXXX0000000000000000").is_err());
        let g = sample();
        let bytes = to_bytes(&g);
        assert!(from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn serializable_graph_rejects_invalid_edges_on_conversion() {
        let s = SerializableGraph {
            num_vertices: 2,
            edges: vec![(0, 1, 2.0)],
        };
        assert!(UncertainGraph::try_from(s).is_err());
    }
}
