//! Summary statistics of uncertain graphs (Table 1 of the paper).

use minijson::{ObjBuilder, Value};

use crate::entropy::graph_entropy;
use crate::error::GraphError;
use crate::graph::UncertainGraph;

/// Per-dataset characteristics as reported in Table 1 of the paper:
/// vertices, edges, density `|E|/|V|`, mean edge probability `E[p_e]` and
/// mean expected degree `E[d_u]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStatistics {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of edges `|E|`.
    pub num_edges: usize,
    /// Edge-to-vertex ratio `|E| / |V|`.
    pub edge_vertex_ratio: f64,
    /// Fraction of the complete graph: `|E| / (|V|·(|V|-1)/2)`.
    pub density: f64,
    /// Mean edge probability `E[p_e]`.
    pub mean_edge_probability: f64,
    /// Mean expected degree `E[d_u] = (2 Σ_e p_e) / |V|`.
    pub mean_expected_degree: f64,
    /// Maximum expected degree over all vertices.
    pub max_expected_degree: f64,
    /// Total entropy `H(G)` in bits.
    pub entropy: f64,
    /// Whether the support graph (all edges present) is connected.
    pub support_connected: bool,
}

impl GraphStatistics {
    /// Computes the statistics of `g`.
    pub fn compute(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let expected_degrees = g.expected_degrees();
        let max_expected_degree = expected_degrees.iter().copied().fold(0.0, f64::max);
        let mean_expected_degree = if n == 0 {
            0.0
        } else {
            expected_degrees.iter().sum::<f64>() / n as f64
        };
        let complete_edges = if n < 2 {
            0.0
        } else {
            n as f64 * (n as f64 - 1.0) / 2.0
        };
        GraphStatistics {
            num_vertices: n,
            num_edges: m,
            edge_vertex_ratio: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            density: if complete_edges == 0.0 {
                0.0
            } else {
                m as f64 / complete_edges
            },
            mean_edge_probability: g.mean_edge_probability(),
            mean_expected_degree,
            max_expected_degree,
            entropy: graph_entropy(g),
            support_connected: g.support_is_connected(),
        }
    }

    /// Formats the statistics as a single Table-1-style row:
    /// `vertices  edges  |E|/|V|  E[p_e]  E[d_u]`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<12} {:>9} {:>11} {:>9.2} {:>7.3} {:>7.2}",
            name,
            self.num_vertices,
            self.num_edges,
            self.edge_vertex_ratio,
            self.mean_edge_probability,
            self.mean_expected_degree
        )
    }

    /// Header matching [`GraphStatistics::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>9} {:>11} {:>9} {:>7} {:>7}",
            "dataset", "vertices", "edges", "|E|/|V|", "E[p]", "E[d]"
        )
    }

    /// Renders the statistics as a compact JSON object.
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("num_vertices", self.num_vertices)
            .field("num_edges", self.num_edges)
            .field("edge_vertex_ratio", self.edge_vertex_ratio)
            .field("density", self.density)
            .field("mean_edge_probability", self.mean_edge_probability)
            .field("mean_expected_degree", self.mean_expected_degree)
            .field("max_expected_degree", self.max_expected_degree)
            .field("entropy", self.entropy)
            .field("support_connected", self.support_connected)
            .build()
            .render()
    }

    /// Parses a JSON object produced by [`GraphStatistics::to_json`].
    pub fn from_json(json: &str) -> Result<Self, GraphError> {
        let parse_err = |message: String| GraphError::Parse { line: 0, message };
        let value = Value::parse(json).map_err(|e| parse_err(e.to_string()))?;
        let f64_field = |key: &str| {
            value
                .get_f64(key)
                .ok_or_else(|| parse_err(format!("missing or invalid `{key}`")))
        };
        Ok(GraphStatistics {
            num_vertices: value
                .get_usize("num_vertices")
                .ok_or_else(|| parse_err("missing or invalid `num_vertices`".into()))?,
            num_edges: value
                .get_usize("num_edges")
                .ok_or_else(|| parse_err("missing or invalid `num_edges`".into()))?,
            edge_vertex_ratio: f64_field("edge_vertex_ratio")?,
            density: f64_field("density")?,
            mean_edge_probability: f64_field("mean_edge_probability")?,
            mean_expected_degree: f64_field("mean_expected_degree")?,
            max_expected_degree: f64_field("max_expected_degree")?,
            entropy: f64_field("entropy")?,
            support_connected: value
                .get("support_connected")
                .and_then(Value::as_bool)
                .ok_or_else(|| parse_err("missing or invalid `support_connected`".into()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_of_figure1a() {
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.3),
                (0, 2, 0.3),
                (0, 3, 0.3),
                (1, 2, 0.3),
                (1, 3, 0.3),
                (2, 3, 0.3),
            ],
        )
        .unwrap();
        let s = GraphStatistics::compute(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 6);
        assert!((s.edge_vertex_ratio - 1.5).abs() < 1e-12);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.mean_edge_probability - 0.3).abs() < 1e-12);
        assert!((s.mean_expected_degree - 0.9).abs() < 1e-12);
        assert!((s.max_expected_degree - 0.9).abs() < 1e-12);
        assert!(s.support_connected);
        assert!(s.entropy > 0.0);
    }

    #[test]
    fn statistics_of_empty_graph_are_zero() {
        let g = UncertainGraph::from_edges(0, []).unwrap();
        let s = GraphStatistics::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.edge_vertex_ratio, 0.0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.mean_expected_degree, 0.0);
    }

    #[test]
    fn table_rendering_contains_fields() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let s = GraphStatistics::compute(&g);
        let header = GraphStatistics::table_header();
        let row = s.table_row("toy");
        assert!(header.contains("dataset"));
        assert!(row.contains("toy"));
        assert!(row.contains('3'));
        assert!(row.contains('2'));
    }

    #[test]
    fn statistics_serialize_round_trip() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)]).unwrap();
        let s = GraphStatistics::compute(&g);
        let json = s.to_json();
        let back = GraphStatistics::from_json(&json).unwrap();
        assert_eq!(s, back);
        assert!(GraphStatistics::from_json("{}").is_err());
        assert!(GraphStatistics::from_json("not json").is_err());
    }
}
