//! Entropy of uncertain graphs.
//!
//! The entropy of an uncertain graph `G = (V, E, p)` is the joint entropy of
//! its (independent) edges,
//!
//! ```text
//! H(G) = Σ_{e ∈ E} H(p_e)
//!      = Σ_{e ∈ E} ( -p_e·log2(p_e) - (1 - p_e)·log2(1 - p_e) ).
//! ```
//!
//! Entropy is the quantity the sparsifiers of the paper explicitly try to
//! *reduce*: the number of Monte-Carlo samples needed for an accurate query
//! estimate is proportional to the uncertainty of the graph, so a sparsified
//! graph with lower entropy is cheaper to query (Section 1 and 3 of the
//! paper).  Deterministic edges (`p = 1`) contribute zero entropy.

use crate::graph::UncertainGraph;

/// Binary entropy (in bits) of a single edge probability.
///
/// `H(p) = -p·log2(p) - (1-p)·log2(1-p)`, with the usual convention
/// `0·log2(0) = 0`.  Values outside `[0, 1]` are clamped — callers are
/// expected to hold valid probabilities, but numerical noise from gradient
/// updates must not produce NaNs.
pub fn edge_entropy(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    let q = 1.0 - p;
    if q > 0.0 {
        h -= q * q.log2();
    }
    h
}

/// Total entropy of the graph: the sum of the entropies of its edges.
pub fn graph_entropy(g: &UncertainGraph) -> f64 {
    g.probabilities().iter().copied().map(edge_entropy).sum()
}

/// Entropy of an arbitrary probability assignment (used by sparsifiers before
/// the final graph is materialised).
pub fn assignment_entropy(probabilities: &[f64]) -> f64 {
    probabilities.iter().copied().map(edge_entropy).sum()
}

/// Relative entropy `H(G') / H(G)` of a sparsified graph with respect to the
/// original.  Returns 0 when the original graph has zero entropy (e.g. a
/// deterministic graph), matching the convention used in the paper's Figure 8.
pub fn relative_entropy(original: &UncertainGraph, sparsified: &UncertainGraph) -> f64 {
    let h0 = graph_entropy(original);
    if h0 <= 0.0 {
        0.0
    } else {
        graph_entropy(sparsified) / h0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UncertainGraph;

    #[test]
    fn edge_entropy_basic_values() {
        assert_eq!(edge_entropy(1.0), 0.0);
        assert!((edge_entropy(0.5) - 1.0).abs() < 1e-12);
        // symmetric around 0.5
        assert!((edge_entropy(0.3) - edge_entropy(0.7)).abs() < 1e-12);
        // maximum at 0.5
        assert!(edge_entropy(0.5) > edge_entropy(0.49));
        assert!(edge_entropy(0.5) > edge_entropy(0.51));
    }

    #[test]
    fn edge_entropy_clamps_numerical_noise() {
        assert_eq!(edge_entropy(-1e-12), 0.0);
        assert_eq!(edge_entropy(1.0 + 1e-12), 0.0);
        assert!(edge_entropy(f64::MIN_POSITIVE).is_finite());
    }

    #[test]
    fn figure1_entropy_values() {
        // Figure 1 of the paper: the original K4 with p = 0.3 has entropy
        // ~0.94 *per edge pair of the example text*; the text reports a total
        // entropy decrease from 0.94·6 ≈ 5.29?  The extended abstract quotes
        // H(G) = 0.94 and H(G') = 0.4 per... in fact 6·H(0.3) = 5.29 and
        // 3·H(0.6) = 2.91; the paper normalises differently.  We simply check
        // the ratio direction: the sparsified graph has lower entropy.
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.3),
                (0, 2, 0.3),
                (0, 3, 0.3),
                (1, 2, 0.3),
                (1, 3, 0.3),
                (2, 3, 0.3),
            ],
        )
        .unwrap();
        let s = UncertainGraph::from_edges(4, [(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6)]).unwrap();
        assert!(graph_entropy(&s) < graph_entropy(&g));
        let rel = relative_entropy(&g, &s);
        assert!(rel > 0.0 && rel < 1.0);
    }

    #[test]
    fn graph_entropy_sums_edges() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 1.0)]).unwrap();
        assert!((graph_entropy(&g) - 1.0).abs() < 1e-12);
        assert!((assignment_entropy(&[0.5, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_entropy_of_deterministic_original_is_zero() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 1.0)]).unwrap();
        let s = UncertainGraph::from_edges(2, [(0, 1, 0.5)]).unwrap();
        assert_eq!(relative_entropy(&g, &s), 0.0);
    }

    #[test]
    fn graph_entropy_matches_method_on_graph() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.25), (2, 3, 0.75), (1, 2, 0.9)]).unwrap();
        assert!((g.entropy() - graph_entropy(&g)).abs() < 1e-12);
    }
}
