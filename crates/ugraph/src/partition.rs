//! Vertex partitions of an uncertain graph: per-shard induced subgraphs plus
//! an explicit cut-edge set with stable id remapping.
//!
//! A [`GraphPartition`] splits the vertex set `V` into `k` **shards**.  Each
//! shard materialises the induced uncertain subgraph on its vertices
//! (relabelled to dense local ids) together with both id maps
//! (`local vertex -> global vertex`, `local edge -> global edge`), and every
//! edge whose endpoints land in *different* shards becomes a [`CutEdge`]
//! record carrying its global id, probability, and the `(shard, local id)`
//! coordinates of both endpoints.
//!
//! The partition is purely structural — it never looks at a sampled world —
//! which makes it the seam for *graph-sharded* evaluation: a worker that
//! owns one shard only needs that shard's subgraph plus the cut records
//! touching it, and any observation it produces can be translated back into
//! the parent graph's stable vertex/edge ids.  The shard-aware Monte-Carlo
//! engine in `ugs-queries` builds directly on this type.
//!
//! # Example
//!
//! ```
//! use uncertain_graph::{GraphPartition, UncertainGraph};
//!
//! // A 6-cycle split into two halves: exactly two edges cross the cut.
//! let g = UncertainGraph::from_edges(
//!     6,
//!     [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.6), (4, 5, 0.5), (5, 0, 0.4)],
//! )
//! .unwrap();
//! let partition = GraphPartition::contiguous(&g, 2).unwrap();
//! assert_eq!(partition.num_shards(), 2);
//! assert_eq!(partition.shard(0).num_vertices(), 3);
//! assert_eq!(partition.cut_edges().len(), 2);
//! // Shards keep stable maps back into the parent graph.
//! let shard = partition.shard(1);
//! assert_eq!(shard.global_vertex(0), 3);
//! for cut in partition.cut_edges() {
//!     assert_ne!(cut.shard_u, cut.shard_v);
//! }
//! ```

use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// One shard of a [`GraphPartition`]: the induced uncertain subgraph on the
/// shard's vertices (dense local ids) plus the maps back into the parent
/// graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    graph: UncertainGraph,
    /// `local vertex id -> global vertex id` (ascending).
    vertices: Vec<VertexId>,
    /// `local edge id -> global edge id` (ascending).
    edges: Vec<EdgeId>,
}

impl Shard {
    /// The induced uncertain subgraph over the shard's local vertex ids.
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }

    /// Map `local vertex id -> global vertex id` (sorted ascending).
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Map `local edge id -> global edge id` (sorted ascending).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Global id of the shard-local vertex `v`.
    #[inline]
    pub fn global_vertex(&self, v: VertexId) -> VertexId {
        self.vertices[v]
    }

    /// Global id of the shard-local edge `e`.
    #[inline]
    pub fn global_edge(&self, e: EdgeId) -> EdgeId {
        self.edges[e]
    }

    /// Number of vertices in the shard.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of intra-shard edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// An edge of the parent graph whose endpoints lie in different shards.
///
/// Cut edges are *not* part of any shard's induced subgraph; shard-aware
/// world sources sample them in a dedicated boundary pass and observers
/// apply them as a cut correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// Global id of the edge in the parent graph.
    pub edge: EdgeId,
    /// First global endpoint (as stored by the parent graph).
    pub u: VertexId,
    /// Second global endpoint.
    pub v: VertexId,
    /// Existence probability.
    pub p: f64,
    /// Shard containing `u`.
    pub shard_u: usize,
    /// Shard containing `v`.
    pub shard_v: usize,
    /// Local id of `u` inside `shard_u`.
    pub local_u: VertexId,
    /// Local id of `v` inside `shard_v`.
    pub local_v: VertexId,
}

/// Why a vertex labelling could not be turned into a [`GraphPartition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A partition needs at least one shard.
    NoShards,
    /// The labelling does not have one entry per vertex.
    LabelingSize {
        /// Number of labels supplied.
        got: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A label referenced a shard outside `0..num_shards`.
    ShardOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of shards the partition was declared with.
        num_shards: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoShards => write!(f, "a graph partition needs at least one shard"),
            PartitionError::LabelingSize { got, num_vertices } => write!(
                f,
                "vertex labelling has {got} entries for a graph with {num_vertices} vertices"
            ),
            PartitionError::ShardOutOfRange { label, num_shards } => write!(
                f,
                "shard label {label} out of range for a partition with {num_shards} shards"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A split of an uncertain graph's vertex set into shards; see the
/// [module docs](self) for the data model and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPartition {
    num_vertices: usize,
    num_edges: usize,
    /// `global vertex -> shard`.
    labels: Vec<u32>,
    /// `global vertex -> local index inside its shard`.
    local_index: Vec<u32>,
    shards: Vec<Shard>,
    cuts: Vec<CutEdge>,
    /// CSR over global vertices: incident cut-edge ids (indices into
    /// `cuts`) of vertex `v` are `cut_ids[cut_offsets[v]..cut_offsets[v+1]]`.
    cut_offsets: Vec<u32>,
    cut_ids: Vec<u32>,
}

impl GraphPartition {
    /// Builds the partition described by a caller-supplied labelling
    /// (`labels[v]` = shard of vertex `v`, each in `0..num_shards`).  Shards
    /// may be empty.
    pub fn from_labels(
        g: &UncertainGraph,
        labels: &[usize],
        num_shards: usize,
    ) -> Result<Self, PartitionError> {
        if num_shards == 0 {
            return Err(PartitionError::NoShards);
        }
        if labels.len() != g.num_vertices() {
            return Err(PartitionError::LabelingSize {
                got: labels.len(),
                num_vertices: g.num_vertices(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_shards) {
            return Err(PartitionError::ShardOutOfRange {
                label: bad,
                num_shards,
            });
        }

        // Shard vertex lists in ascending global order, plus the local index
        // of every vertex inside its shard.
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); num_shards];
        let mut local_index = vec![0u32; g.num_vertices()];
        for (v, &label) in labels.iter().enumerate() {
            local_index[v] = shard_vertices[label].len() as u32;
            shard_vertices[label].push(v);
        }

        // Induced subgraph (with the edge map) per shard — the standalone
        // helper guarantees ascending edge ids, which keeps the remapping
        // stable.
        let shards = shard_vertices
            .into_iter()
            .map(|vertices| {
                let (graph, vertices, edges) = g
                    .induced_subgraph_with_edges(&vertices)
                    .expect("validated labels produce valid shard vertex lists");
                Shard {
                    graph,
                    vertices,
                    edges,
                }
            })
            .collect();

        // Cut records in ascending global-edge order.
        let cuts: Vec<CutEdge> = g
            .edges()
            .filter(|e| labels[e.u] != labels[e.v])
            .map(|e| CutEdge {
                edge: e.id,
                u: e.u,
                v: e.v,
                p: e.p,
                shard_u: labels[e.u],
                shard_v: labels[e.v],
                local_u: local_index[e.u] as usize,
                local_v: local_index[e.v] as usize,
            })
            .collect();

        // CSR of incident cut edges per global vertex (counting pass + fill).
        let n = g.num_vertices();
        let mut cut_offsets = vec![0u32; n + 1];
        for cut in &cuts {
            cut_offsets[cut.u + 1] += 1;
            cut_offsets[cut.v + 1] += 1;
        }
        for v in 0..n {
            cut_offsets[v + 1] += cut_offsets[v];
        }
        let mut cursor: Vec<u32> = cut_offsets[..n].to_vec();
        let mut cut_ids = vec![0u32; 2 * cuts.len()];
        for (c, cut) in cuts.iter().enumerate() {
            cut_ids[cursor[cut.u] as usize] = c as u32;
            cursor[cut.u] += 1;
            cut_ids[cursor[cut.v] as usize] = c as u32;
            cursor[cut.v] += 1;
        }

        Ok(GraphPartition {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            labels: labels.iter().map(|&l| l as u32).collect(),
            local_index,
            shards,
            cuts,
            cut_offsets,
            cut_ids,
        })
    }

    /// Splits the dense vertex range into `num_shards` contiguous chunks
    /// (the first `|V| mod k` shards get one extra vertex) — the cheapest
    /// deterministic labelling, and the one the query service defaults to.
    pub fn contiguous(g: &UncertainGraph, num_shards: usize) -> Result<Self, PartitionError> {
        if num_shards == 0 {
            return Err(PartitionError::NoShards);
        }
        let n = g.num_vertices();
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut labels = Vec::with_capacity(n);
        for shard in 0..num_shards {
            let count = base + usize::from(shard < extra);
            labels.extend(std::iter::repeat_n(shard, count));
        }
        Self::from_labels(g, &labels, num_shards)
    }

    /// Number of vertices of the parent graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the parent graph (intra-shard plus cut).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by shard id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &Shard {
        &self.shards[shard]
    }

    /// The cut-edge records, in ascending global-edge order.
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cuts
    }

    /// One cut-edge record.
    ///
    /// # Panics
    /// Panics if `cut` is out of range.
    #[inline]
    pub fn cut_edge(&self, cut: usize) -> &CutEdge {
        &self.cuts[cut]
    }

    /// The shard of global vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.labels[v] as usize
    }

    /// `(shard, local id)` coordinates of global vertex `v`.
    #[inline]
    pub fn locate(&self, v: VertexId) -> (usize, usize) {
        (self.labels[v] as usize, self.local_index[v] as usize)
    }

    /// Indices (into [`GraphPartition::cut_edges`]) of the cut edges
    /// incident to global vertex `v`.
    #[inline]
    pub fn incident_cuts(&self, v: VertexId) -> &[u32] {
        &self.cut_ids[self.cut_offsets[v] as usize..self.cut_offsets[v + 1] as usize]
    }

    /// Sum of the cut-edge probabilities — the expected number of boundary
    /// edges per sampled world.
    pub fn cut_probability_mass(&self) -> f64 {
        self.cuts.iter().map(|c| c.p).sum()
    }

    /// Checks that this partition was built from a graph shaped like `g`
    /// (same vertex and edge counts).  Shard-aware engines call this before
    /// trusting the partition's id maps.
    pub fn matches(&self, g: &UncertainGraph) -> bool {
        self.num_vertices == g.num_vertices() && self.num_edges == g.num_edges()
    }
}

/// Re-derive the labelling of a partition (`vertex -> shard`), mostly for
/// diagnostics and tests.
impl GraphPartition {
    /// The labelling `global vertex -> shard`.
    pub fn labels(&self) -> Vec<usize> {
        self.labels.iter().map(|&l| l as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_bridge() -> UncertainGraph {
        // Two triangles {0,1,2} and {3,4,5} joined by the bridge (2,3).
        UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (0, 2, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (3, 5, 0.4),
                (2, 3, 0.25),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_labels_builds_shards_and_cuts() {
        let g = two_triangles_bridge();
        let p = GraphPartition::from_labels(&g, &[0, 0, 0, 1, 1, 1], 2).unwrap();
        assert_eq!(p.num_shards(), 2);
        assert_eq!(p.shard(0).num_vertices(), 3);
        assert_eq!(p.shard(0).num_edges(), 3);
        assert_eq!(p.shard(1).num_edges(), 3);
        assert_eq!(p.cut_edges().len(), 1);
        let cut = p.cut_edge(0);
        assert_eq!((cut.u, cut.v), (2, 3));
        assert_eq!((cut.shard_u, cut.shard_v), (0, 1));
        assert_eq!(cut.local_u, 2);
        assert_eq!(cut.local_v, 0);
        assert!((cut.p - 0.25).abs() < 1e-12);
        assert!((p.cut_probability_mass() - 0.25).abs() < 1e-12);
        assert!(p.matches(&g));
    }

    #[test]
    fn shard_maps_translate_back_to_global_ids() {
        let g = two_triangles_bridge();
        let p = GraphPartition::from_labels(&g, &[0, 1, 0, 1, 0, 1], 2).unwrap();
        // Every intra-shard edge must exist in the parent with the same
        // endpoints and probability; every parent edge must be exactly one
        // of: in one shard, or a cut.
        let mut seen = vec![false; g.num_edges()];
        for shard in p.shards() {
            for le in shard.graph().edges() {
                let ge = shard.global_edge(le.id);
                assert!(!seen[ge]);
                seen[ge] = true;
                let (gu, gv) = (shard.global_vertex(le.u), shard.global_vertex(le.v));
                let (eu, ev) = g.edge_endpoints(ge);
                assert_eq!((gu.min(gv), gu.max(gv)), (eu.min(ev), eu.max(ev)));
                assert_eq!(le.p, g.edge_probability(ge));
            }
        }
        for cut in p.cut_edges() {
            assert!(!seen[cut.edge]);
            seen[cut.edge] = true;
            assert_eq!(p.shard(cut.shard_u).global_vertex(cut.local_u), cut.u);
            assert_eq!(p.shard(cut.shard_v).global_vertex(cut.local_v), cut.v);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn locate_and_incident_cuts_agree_with_the_labelling() {
        let g = two_triangles_bridge();
        let labels = [0usize, 0, 0, 1, 1, 1];
        let p = GraphPartition::from_labels(&g, &labels, 2).unwrap();
        for (v, &label) in labels.iter().enumerate() {
            let (s, l) = p.locate(v);
            assert_eq!(s, label);
            assert_eq!(p.shard_of(v), label);
            assert_eq!(p.shard(s).global_vertex(l), v);
        }
        assert_eq!(p.incident_cuts(2), &[0]);
        assert_eq!(p.incident_cuts(3), &[0]);
        assert!(p.incident_cuts(0).is_empty());
    }

    #[test]
    fn contiguous_balances_shard_sizes() {
        let g = two_triangles_bridge();
        let p = GraphPartition::contiguous(&g, 4).unwrap();
        let sizes: Vec<usize> = p.shards().iter().map(Shard::num_vertices).collect();
        assert_eq!(sizes, vec![2, 2, 1, 1]);
        assert_eq!(p.labels(), vec![0, 0, 1, 1, 2, 3]);
        // A 1-shard partition has no cuts and one full shard.
        let whole = GraphPartition::contiguous(&g, 1).unwrap();
        assert_eq!(whole.num_shards(), 1);
        assert!(whole.cut_edges().is_empty());
        assert_eq!(whole.shard(0).num_edges(), g.num_edges());
    }

    #[test]
    fn empty_shards_and_tiny_graphs_are_allowed() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.5)]).unwrap();
        let p = GraphPartition::contiguous(&g, 4).unwrap();
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.shard(2).num_vertices(), 0);
        assert_eq!(p.cut_edges().len(), 1);
        let empty = UncertainGraph::from_edges(0, []).unwrap();
        let p = GraphPartition::contiguous(&empty, 2).unwrap();
        assert_eq!(p.num_shards(), 2);
        assert!(p.cut_edges().is_empty());
    }

    #[test]
    fn invalid_labellings_are_rejected_with_typed_errors() {
        let g = two_triangles_bridge();
        assert_eq!(
            GraphPartition::from_labels(&g, &[0; 6], 0),
            Err(PartitionError::NoShards)
        );
        assert_eq!(
            GraphPartition::from_labels(&g, &[0; 4], 2),
            Err(PartitionError::LabelingSize {
                got: 4,
                num_vertices: 6
            })
        );
        assert_eq!(
            GraphPartition::from_labels(&g, &[0, 0, 0, 1, 1, 7], 2),
            Err(PartitionError::ShardOutOfRange {
                label: 7,
                num_shards: 2
            })
        );
        assert_eq!(
            GraphPartition::contiguous(&g, 0),
            Err(PartitionError::NoShards)
        );
    }
}
