//! Vertex partitions of an uncertain graph: per-shard induced subgraphs plus
//! an explicit cut-edge set with stable id remapping.
//!
//! A [`GraphPartition`] splits the vertex set `V` into `k` **shards**.  Each
//! shard materialises the induced uncertain subgraph on its vertices
//! (relabelled to dense local ids) together with both id maps
//! (`local vertex -> global vertex`, `local edge -> global edge`), and every
//! edge whose endpoints land in *different* shards becomes a [`CutEdge`]
//! record carrying its global id, probability, and the `(shard, local id)`
//! coordinates of both endpoints.
//!
//! The partition is purely structural — it never looks at a sampled world —
//! which makes it the seam for *graph-sharded* evaluation: a worker that
//! owns one shard only needs that shard's subgraph plus the cut records
//! touching it, and any observation it produces can be translated back into
//! the parent graph's stable vertex/edge ids.  The shard-aware Monte-Carlo
//! engine in `ugs-queries` builds directly on this type.
//!
//! # Example
//!
//! ```
//! use uncertain_graph::{GraphPartition, UncertainGraph};
//!
//! // A 6-cycle split into two halves: exactly two edges cross the cut.
//! let g = UncertainGraph::from_edges(
//!     6,
//!     [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.6), (4, 5, 0.5), (5, 0, 0.4)],
//! )
//! .unwrap();
//! let partition = GraphPartition::contiguous(&g, 2).unwrap();
//! assert_eq!(partition.num_shards(), 2);
//! assert_eq!(partition.shard(0).num_vertices(), 3);
//! assert_eq!(partition.cut_edges().len(), 2);
//! // Shards keep stable maps back into the parent graph.
//! let shard = partition.shard(1);
//! assert_eq!(shard.global_vertex(0), 3);
//! for cut in partition.cut_edges() {
//!     assert_ne!(cut.shard_u, cut.shard_v);
//! }
//! ```

use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// One shard of a [`GraphPartition`]: the induced uncertain subgraph on the
/// shard's vertices (dense local ids) plus the maps back into the parent
/// graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    graph: UncertainGraph,
    /// `local vertex id -> global vertex id` (ascending).
    vertices: Vec<VertexId>,
    /// `local edge id -> global edge id` (ascending).
    edges: Vec<EdgeId>,
}

impl Shard {
    /// The induced uncertain subgraph over the shard's local vertex ids.
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }

    /// Map `local vertex id -> global vertex id` (sorted ascending).
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Map `local edge id -> global edge id` (sorted ascending).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Global id of the shard-local vertex `v`.
    #[inline]
    pub fn global_vertex(&self, v: VertexId) -> VertexId {
        self.vertices[v]
    }

    /// Global id of the shard-local edge `e`.
    #[inline]
    pub fn global_edge(&self, e: EdgeId) -> EdgeId {
        self.edges[e]
    }

    /// Number of vertices in the shard.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of intra-shard edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// An edge of the parent graph whose endpoints lie in different shards.
///
/// Cut edges are *not* part of any shard's induced subgraph; shard-aware
/// world sources sample them in a dedicated boundary pass and observers
/// apply them as a cut correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// Global id of the edge in the parent graph.
    pub edge: EdgeId,
    /// First global endpoint (as stored by the parent graph).
    pub u: VertexId,
    /// Second global endpoint.
    pub v: VertexId,
    /// Existence probability.
    pub p: f64,
    /// Shard containing `u`.
    pub shard_u: usize,
    /// Shard containing `v`.
    pub shard_v: usize,
    /// Local id of `u` inside `shard_u`.
    pub local_u: VertexId,
    /// Local id of `v` inside `shard_v`.
    pub local_v: VertexId,
}

/// Why a vertex labelling could not be turned into a [`GraphPartition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A partition needs at least one shard.
    NoShards,
    /// The labelling does not have one entry per vertex.
    LabelingSize {
        /// Number of labels supplied.
        got: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A label referenced a shard outside `0..num_shards`.
    ShardOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of shards the partition was declared with.
        num_shards: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoShards => write!(f, "a graph partition needs at least one shard"),
            PartitionError::LabelingSize { got, num_vertices } => write!(
                f,
                "vertex labelling has {got} entries for a graph with {num_vertices} vertices"
            ),
            PartitionError::ShardOutOfRange { label, num_shards } => write!(
                f,
                "shard label {label} out of range for a partition with {num_shards} shards"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A split of an uncertain graph's vertex set into shards; see the
/// [module docs](self) for the data model and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPartition {
    num_vertices: usize,
    num_edges: usize,
    /// `global vertex -> shard`.
    labels: Vec<u32>,
    /// `global vertex -> local index inside its shard`.
    local_index: Vec<u32>,
    shards: Vec<Shard>,
    cuts: Vec<CutEdge>,
    /// CSR over global vertices: incident cut-edge ids (indices into
    /// `cuts`) of vertex `v` are `cut_ids[cut_offsets[v]..cut_offsets[v+1]]`.
    cut_offsets: Vec<u32>,
    cut_ids: Vec<u32>,
}

impl GraphPartition {
    /// Builds the partition described by a caller-supplied labelling
    /// (`labels[v]` = shard of vertex `v`, each in `0..num_shards`).  Shards
    /// may be empty.
    pub fn from_labels(
        g: &UncertainGraph,
        labels: &[usize],
        num_shards: usize,
    ) -> Result<Self, PartitionError> {
        if num_shards == 0 {
            return Err(PartitionError::NoShards);
        }
        if labels.len() != g.num_vertices() {
            return Err(PartitionError::LabelingSize {
                got: labels.len(),
                num_vertices: g.num_vertices(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_shards) {
            return Err(PartitionError::ShardOutOfRange {
                label: bad,
                num_shards,
            });
        }

        // Shard vertex lists in ascending global order, plus the local index
        // of every vertex inside its shard.
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); num_shards];
        let mut local_index = vec![0u32; g.num_vertices()];
        for (v, &label) in labels.iter().enumerate() {
            local_index[v] = shard_vertices[label].len() as u32;
            shard_vertices[label].push(v);
        }

        // Induced subgraph (with the edge map) per shard — the standalone
        // helper guarantees ascending edge ids, which keeps the remapping
        // stable.
        let shards = shard_vertices
            .into_iter()
            .map(|vertices| {
                let (graph, vertices, edges) = g
                    .induced_subgraph_with_edges(&vertices)
                    .expect("validated labels produce valid shard vertex lists");
                Shard {
                    graph,
                    vertices,
                    edges,
                }
            })
            .collect();

        // Cut records in ascending global-edge order.
        let cuts: Vec<CutEdge> = g
            .edges()
            .filter(|e| labels[e.u] != labels[e.v])
            .map(|e| CutEdge {
                edge: e.id,
                u: e.u,
                v: e.v,
                p: e.p,
                shard_u: labels[e.u],
                shard_v: labels[e.v],
                local_u: local_index[e.u] as usize,
                local_v: local_index[e.v] as usize,
            })
            .collect();

        // CSR of incident cut edges per global vertex (counting pass + fill).
        let n = g.num_vertices();
        let mut cut_offsets = vec![0u32; n + 1];
        for cut in &cuts {
            cut_offsets[cut.u + 1] += 1;
            cut_offsets[cut.v + 1] += 1;
        }
        for v in 0..n {
            cut_offsets[v + 1] += cut_offsets[v];
        }
        let mut cursor: Vec<u32> = cut_offsets[..n].to_vec();
        let mut cut_ids = vec![0u32; 2 * cuts.len()];
        for (c, cut) in cuts.iter().enumerate() {
            cut_ids[cursor[cut.u] as usize] = c as u32;
            cursor[cut.u] += 1;
            cut_ids[cursor[cut.v] as usize] = c as u32;
            cursor[cut.v] += 1;
        }

        Ok(GraphPartition {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            labels: labels.iter().map(|&l| l as u32).collect(),
            local_index,
            shards,
            cuts,
            cut_offsets,
            cut_ids,
        })
    }

    /// Splits the dense vertex range into `num_shards` contiguous chunks
    /// (the first `|V| mod k` shards get one extra vertex) — the cheapest
    /// deterministic labelling, and the one the query service defaults to.
    pub fn contiguous(g: &UncertainGraph, num_shards: usize) -> Result<Self, PartitionError> {
        if num_shards == 0 {
            return Err(PartitionError::NoShards);
        }
        let n = g.num_vertices();
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut labels = Vec::with_capacity(n);
        for shard in 0..num_shards {
            let count = base + usize::from(shard < extra);
            labels.extend(std::iter::repeat_n(shard, count));
        }
        Self::from_labels(g, &labels, num_shards)
    }

    /// Number of vertices of the parent graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the parent graph (intra-shard plus cut).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by shard id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &Shard {
        &self.shards[shard]
    }

    /// The cut-edge records, in ascending global-edge order.
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cuts
    }

    /// One cut-edge record.
    ///
    /// # Panics
    /// Panics if `cut` is out of range.
    #[inline]
    pub fn cut_edge(&self, cut: usize) -> &CutEdge {
        &self.cuts[cut]
    }

    /// The shard of global vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.labels[v] as usize
    }

    /// `(shard, local id)` coordinates of global vertex `v`.
    #[inline]
    pub fn locate(&self, v: VertexId) -> (usize, usize) {
        (self.labels[v] as usize, self.local_index[v] as usize)
    }

    /// Indices (into [`GraphPartition::cut_edges`]) of the cut edges
    /// incident to global vertex `v`.
    #[inline]
    pub fn incident_cuts(&self, v: VertexId) -> &[u32] {
        &self.cut_ids[self.cut_offsets[v] as usize..self.cut_offsets[v + 1] as usize]
    }

    /// Sum of the cut-edge probabilities — the expected number of boundary
    /// edges per sampled world.
    pub fn cut_probability_mass(&self) -> f64 {
        self.cuts.iter().map(|c| c.p).sum()
    }

    /// Checks that this partition was built from a graph shaped like `g`
    /// (same vertex and edge counts).  Shard-aware engines call this before
    /// trusting the partition's id maps.
    pub fn matches(&self, g: &UncertainGraph) -> bool {
        self.num_vertices == g.num_vertices() && self.num_edges == g.num_edges()
    }
}

/// Re-derive the labelling of a partition (`vertex -> shard`), mostly for
/// diagnostics and tests.
impl GraphPartition {
    /// The labelling `global vertex -> shard`.
    pub fn labels(&self) -> Vec<usize> {
        self.labels.iter().map(|&l| l as usize).collect()
    }
}

/// Sentinel in [`ShardHalo::halo_index`]: the vertex is outside the shard's
/// halo (neither owned nor a ghost).
pub const NOT_IN_HALO: u32 = u32::MAX;

/// One contribution edge of a shard's PageRank push pass: when the support
/// edge `edge` is present in a world, halo vertex `source_halo` pushes mass
/// into the owned vertex `target_local`.
///
/// Push lists are sorted by `(source, edge)` — ascending *global* source
/// id — so that, for any fixed target, contributions fold in exactly the
/// order the monolithic kernel adds them (ascending source vertex, then
/// ascending edge id).  That ordering is what makes the sharded per-target
/// sums bit-identical to the monolithic ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushEdge {
    /// Global id of the pushing vertex (degree lookups are global).
    pub source: u32,
    /// Halo-local id of the pushing vertex (rank lookups are halo-local).
    pub source_halo: u32,
    /// Shard-local id of the owned target vertex.
    pub target_local: u32,
    /// Global edge id (world-presence lookups are global).
    pub edge: u32,
}

/// The ghost halo of one shard: the shard's owned vertices plus every
/// cut-edge endpoint owned elsewhere (its *ghosts*), with a stable
/// halo-local numbering (`owned locals first, then ghosts in ascending
/// global order`) and the support edges running inside that vertex set.
///
/// The halo edge set deliberately includes ghost–ghost edges (edges of
/// *other* shards whose both endpoints happen to be ghosts here): clustering
/// coefficients of owned boundary vertices need the edges *among* their
/// 1-hop neighbours, which is exactly that second hop.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHalo {
    owned: usize,
    ghosts: Vec<VertexId>,
    /// `global vertex -> halo-local id`, [`NOT_IN_HALO`] outside the halo.
    halo_index: Vec<u32>,
    /// PageRank contribution edges, sorted by `(source, edge)`.
    push: Vec<PushEdge>,
    /// `(halo-local a, halo-local b, global edge id)` for every support edge
    /// with both endpoints in the halo, in ascending global-edge order.
    halo_edges: Vec<(u32, u32, u32)>,
    /// Owned vertices incident to at least one cut edge (ascending global
    /// ids) — the values other shards need from this one each superstep.
    boundary: Vec<VertexId>,
    /// CSR over halo-local vertices: `(neighbour halo-local, global edge)`.
    csr_offsets: Vec<u32>,
    csr_adj: Vec<(u32, u32)>,
    expected_halo_mass: f64,
}

impl ShardHalo {
    /// Number of owned vertices (halo-local ids `0..owned()`).
    pub fn owned(&self) -> usize {
        self.owned
    }

    /// Ghost vertices in ascending global order; ghost `j` has halo-local
    /// id `owned() + j`.
    pub fn ghosts(&self) -> &[VertexId] {
        &self.ghosts
    }

    /// Total halo size (owned + ghosts).
    pub fn halo_len(&self) -> usize {
        self.owned + self.ghosts.len()
    }

    /// Halo-local id of global vertex `v`, or [`NOT_IN_HALO`].
    #[inline]
    pub fn halo_index(&self, v: VertexId) -> u32 {
        self.halo_index[v]
    }

    /// The PageRank push list (sorted by ascending global source, then
    /// edge id; see [`PushEdge`]).
    pub fn push_edges(&self) -> &[PushEdge] {
        &self.push
    }

    /// Support edges inside the halo as `(halo-local a, halo-local b,
    /// global edge id)`, ascending by global edge id.
    pub fn halo_edges(&self) -> &[(u32, u32, u32)] {
        &self.halo_edges
    }

    /// Owned cut-edge endpoints (ascending global ids).
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Halo support adjacency of halo-local vertex `v`:
    /// `(neighbour halo-local id, global edge id)` pairs.
    #[inline]
    pub fn halo_neighbors(&self, v: usize) -> &[(u32, u32)] {
        &self.csr_adj[self.csr_offsets[v] as usize..self.csr_offsets[v + 1] as usize]
    }

    /// Sum of existence probabilities over the halo edge set — the expected
    /// number of halo edges present per sampled world.
    pub fn expected_halo_mass(&self) -> f64 {
        self.expected_halo_mass
    }
}

/// Per-shard halo statistics for operators judging a labelling; see
/// [`HaloPlan::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHaloStats {
    /// Vertices owned by the shard.
    pub owned_vertices: usize,
    /// Ghost vertices replicated into the shard.
    pub ghost_vertices: usize,
    /// Owned vertices whose value is exported each superstep.
    pub boundary_vertices: usize,
    /// Support edges inside the halo (owned + ghost endpoints).
    pub halo_edges: usize,
    /// Expected number of halo edges present per sampled world.
    pub expected_halo_mass: f64,
}

/// Aggregate halo statistics of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloStats {
    /// One entry per shard.
    pub shards: Vec<ShardHaloStats>,
    /// `Σ (owned + ghosts) / |V|` — how many copies of a vertex the halo
    /// scheme stores on average (1.0 means no replication).
    pub replication_factor: f64,
}

/// Ghost-halo replication plan for every shard of a [`GraphPartition`]:
/// the static (world-independent) side of the ghost-halo exchange
/// subsystem.  Per-world presence filtering happens in `ugs-queries`.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloPlan {
    num_vertices: usize,
    shards: Vec<ShardHalo>,
}

impl HaloPlan {
    /// Builds the halo plan of `partition` over `g`.
    ///
    /// # Panics
    /// Panics if `partition` was not built from a graph shaped like `g`.
    pub fn new(g: &UncertainGraph, partition: &GraphPartition) -> Self {
        assert!(
            partition.matches(g),
            "partition was built for a {}-vertex/{}-edge graph, got {}/{}",
            partition.num_vertices(),
            partition.num_edges(),
            g.num_vertices(),
            g.num_edges()
        );
        let n = g.num_vertices();
        let shards = (0..partition.num_shards())
            .map(|s| {
                let shard = partition.shard(s);
                let owned = shard.num_vertices();
                let mut ghosts: Vec<VertexId> = Vec::new();
                let mut boundary: Vec<VertexId> = Vec::new();
                for cut in partition.cut_edges() {
                    if cut.shard_u == s {
                        ghosts.push(cut.v);
                        boundary.push(cut.u);
                    } else if cut.shard_v == s {
                        ghosts.push(cut.u);
                        boundary.push(cut.v);
                    }
                }
                ghosts.sort_unstable();
                ghosts.dedup();
                boundary.sort_unstable();
                boundary.dedup();
                let mut halo_index = vec![NOT_IN_HALO; n];
                for (local, &global) in shard.vertices().iter().enumerate() {
                    halo_index[global] = local as u32;
                }
                for (j, &global) in ghosts.iter().enumerate() {
                    halo_index[global] = (owned + j) as u32;
                }
                let mut halo_edges = Vec::new();
                let mut push = Vec::new();
                let mut expected_halo_mass = 0.0f64;
                for e in g.edges() {
                    let a = halo_index[e.u];
                    let b = halo_index[e.v];
                    if a != NOT_IN_HALO && b != NOT_IN_HALO {
                        halo_edges.push((a, b, e.id as u32));
                        expected_halo_mass += e.p;
                    }
                    if partition.shard_of(e.u) == s {
                        push.push(PushEdge {
                            source: e.v as u32,
                            source_halo: b,
                            target_local: a,
                            edge: e.id as u32,
                        });
                    }
                    if partition.shard_of(e.v) == s {
                        push.push(PushEdge {
                            source: e.u as u32,
                            source_halo: a,
                            target_local: b,
                            edge: e.id as u32,
                        });
                    }
                }
                push.sort_unstable_by_key(|p| (p.source, p.edge));
                let halo_len = owned + ghosts.len();
                let mut csr_offsets = vec![0u32; halo_len + 1];
                for &(a, b, _) in &halo_edges {
                    csr_offsets[a as usize + 1] += 1;
                    csr_offsets[b as usize + 1] += 1;
                }
                for v in 0..halo_len {
                    csr_offsets[v + 1] += csr_offsets[v];
                }
                let mut cursor: Vec<u32> = csr_offsets[..halo_len].to_vec();
                let mut csr_adj = vec![(0u32, 0u32); 2 * halo_edges.len()];
                for &(a, b, e) in &halo_edges {
                    csr_adj[cursor[a as usize] as usize] = (b, e);
                    cursor[a as usize] += 1;
                    csr_adj[cursor[b as usize] as usize] = (a, e);
                    cursor[b as usize] += 1;
                }
                ShardHalo {
                    owned,
                    ghosts,
                    halo_index,
                    push,
                    halo_edges,
                    boundary,
                    csr_offsets,
                    csr_adj,
                    expected_halo_mass,
                }
            })
            .collect();
        HaloPlan {
            num_vertices: n,
            shards,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices of the parent graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The halo of one shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &ShardHalo {
        &self.shards[shard]
    }

    /// Per-shard and aggregate halo statistics.
    pub fn stats(&self) -> HaloStats {
        let shards: Vec<ShardHaloStats> = self
            .shards
            .iter()
            .map(|s| ShardHaloStats {
                owned_vertices: s.owned,
                ghost_vertices: s.ghosts.len(),
                boundary_vertices: s.boundary.len(),
                halo_edges: s.halo_edges.len(),
                expected_halo_mass: s.expected_halo_mass,
            })
            .collect();
        let replicated: usize = shards
            .iter()
            .map(|s| s.owned_vertices + s.ghost_vertices)
            .sum();
        let replication_factor = if self.num_vertices == 0 {
            1.0
        } else {
            replicated as f64 / self.num_vertices as f64
        };
        HaloStats {
            shards,
            replication_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_bridge() -> UncertainGraph {
        // Two triangles {0,1,2} and {3,4,5} joined by the bridge (2,3).
        UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (0, 2, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (3, 5, 0.4),
                (2, 3, 0.25),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_labels_builds_shards_and_cuts() {
        let g = two_triangles_bridge();
        let p = GraphPartition::from_labels(&g, &[0, 0, 0, 1, 1, 1], 2).unwrap();
        assert_eq!(p.num_shards(), 2);
        assert_eq!(p.shard(0).num_vertices(), 3);
        assert_eq!(p.shard(0).num_edges(), 3);
        assert_eq!(p.shard(1).num_edges(), 3);
        assert_eq!(p.cut_edges().len(), 1);
        let cut = p.cut_edge(0);
        assert_eq!((cut.u, cut.v), (2, 3));
        assert_eq!((cut.shard_u, cut.shard_v), (0, 1));
        assert_eq!(cut.local_u, 2);
        assert_eq!(cut.local_v, 0);
        assert!((cut.p - 0.25).abs() < 1e-12);
        assert!((p.cut_probability_mass() - 0.25).abs() < 1e-12);
        assert!(p.matches(&g));
    }

    #[test]
    fn shard_maps_translate_back_to_global_ids() {
        let g = two_triangles_bridge();
        let p = GraphPartition::from_labels(&g, &[0, 1, 0, 1, 0, 1], 2).unwrap();
        // Every intra-shard edge must exist in the parent with the same
        // endpoints and probability; every parent edge must be exactly one
        // of: in one shard, or a cut.
        let mut seen = vec![false; g.num_edges()];
        for shard in p.shards() {
            for le in shard.graph().edges() {
                let ge = shard.global_edge(le.id);
                assert!(!seen[ge]);
                seen[ge] = true;
                let (gu, gv) = (shard.global_vertex(le.u), shard.global_vertex(le.v));
                let (eu, ev) = g.edge_endpoints(ge);
                assert_eq!((gu.min(gv), gu.max(gv)), (eu.min(ev), eu.max(ev)));
                assert_eq!(le.p, g.edge_probability(ge));
            }
        }
        for cut in p.cut_edges() {
            assert!(!seen[cut.edge]);
            seen[cut.edge] = true;
            assert_eq!(p.shard(cut.shard_u).global_vertex(cut.local_u), cut.u);
            assert_eq!(p.shard(cut.shard_v).global_vertex(cut.local_v), cut.v);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn locate_and_incident_cuts_agree_with_the_labelling() {
        let g = two_triangles_bridge();
        let labels = [0usize, 0, 0, 1, 1, 1];
        let p = GraphPartition::from_labels(&g, &labels, 2).unwrap();
        for (v, &label) in labels.iter().enumerate() {
            let (s, l) = p.locate(v);
            assert_eq!(s, label);
            assert_eq!(p.shard_of(v), label);
            assert_eq!(p.shard(s).global_vertex(l), v);
        }
        assert_eq!(p.incident_cuts(2), &[0]);
        assert_eq!(p.incident_cuts(3), &[0]);
        assert!(p.incident_cuts(0).is_empty());
    }

    #[test]
    fn contiguous_balances_shard_sizes() {
        let g = two_triangles_bridge();
        let p = GraphPartition::contiguous(&g, 4).unwrap();
        let sizes: Vec<usize> = p.shards().iter().map(Shard::num_vertices).collect();
        assert_eq!(sizes, vec![2, 2, 1, 1]);
        assert_eq!(p.labels(), vec![0, 0, 1, 1, 2, 3]);
        // A 1-shard partition has no cuts and one full shard.
        let whole = GraphPartition::contiguous(&g, 1).unwrap();
        assert_eq!(whole.num_shards(), 1);
        assert!(whole.cut_edges().is_empty());
        assert_eq!(whole.shard(0).num_edges(), g.num_edges());
    }

    #[test]
    fn empty_shards_and_tiny_graphs_are_allowed() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.5)]).unwrap();
        let p = GraphPartition::contiguous(&g, 4).unwrap();
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.shard(2).num_vertices(), 0);
        assert_eq!(p.cut_edges().len(), 1);
        let empty = UncertainGraph::from_edges(0, []).unwrap();
        let p = GraphPartition::contiguous(&empty, 2).unwrap();
        assert_eq!(p.num_shards(), 2);
        assert!(p.cut_edges().is_empty());
    }

    #[test]
    fn halo_plan_replicates_cut_endpoints_with_their_second_hop() {
        let g = two_triangles_bridge();
        let p = GraphPartition::from_labels(&g, &[0, 0, 0, 1, 1, 1], 2).unwrap();
        let plan = HaloPlan::new(&g, &p);
        assert_eq!(plan.num_shards(), 2);
        // Shard 0 owns {0,1,2}; vertex 3 is its only ghost (via the bridge).
        let h0 = plan.shard(0);
        assert_eq!(h0.owned(), 3);
        assert_eq!(h0.ghosts(), &[3]);
        assert_eq!(h0.boundary(), &[2]);
        assert_eq!(h0.halo_index(3), 3);
        assert_eq!(h0.halo_index(4), NOT_IN_HALO);
        // Halo edges of shard 0: the three intra edges plus the bridge.
        assert_eq!(h0.halo_edges().len(), 4);
        // Shard 1's halo sees vertex 2 as a ghost, and no edge among its
        // (single) ghost beyond the bridge itself.
        let h1 = plan.shard(1);
        assert_eq!(h1.ghosts(), &[2]);
        assert_eq!(h1.boundary(), &[3]);
        assert_eq!(h1.halo_edges().len(), 4);
        let stats = plan.stats();
        assert_eq!(stats.shards[0].ghost_vertices, 1);
        assert_eq!(stats.shards[1].ghost_vertices, 1);
        assert!((stats.replication_factor - 8.0 / 6.0).abs() < 1e-12);
        let mass: f64 = [0.9, 0.8, 0.7, 0.25].iter().sum();
        assert!((stats.shards[0].expected_halo_mass - mass).abs() < 1e-12);
    }

    #[test]
    fn halo_ghost_ghost_edges_are_included() {
        // Triangle 0-1-2 with each vertex in its own shard: every shard's
        // halo contains the other two vertices AND the edge between them.
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)]).unwrap();
        let p = GraphPartition::from_labels(&g, &[0, 1, 2], 3).unwrap();
        let plan = HaloPlan::new(&g, &p);
        for s in 0..3 {
            let h = plan.shard(s);
            assert_eq!(h.owned(), 1);
            assert_eq!(h.ghosts().len(), 2);
            // All three edges lie inside every shard's halo.
            assert_eq!(h.halo_edges().len(), 3);
            // Exactly two pushes target the single owned vertex.
            assert_eq!(h.push_edges().len(), 2);
            assert!(h
                .push_edges()
                .windows(2)
                .all(|w| (w[0].source, w[0].edge) <= (w[1].source, w[1].edge)));
        }
    }

    #[test]
    fn halo_push_lists_cover_every_owned_incidence_in_source_order() {
        let g = two_triangles_bridge();
        let p = GraphPartition::from_labels(&g, &[0, 1, 0, 1, 0, 1], 2).unwrap();
        let plan = HaloPlan::new(&g, &p);
        let mut covered = vec![0usize; g.num_edges()];
        for s in 0..2 {
            let h = plan.shard(s);
            let mut last = (0u32, 0u32);
            for (i, push) in h.push_edges().iter().enumerate() {
                let key = (push.source, push.edge);
                assert!(i == 0 || last <= key, "push list out of order");
                last = key;
                // The target really is owned and the source is its halo id.
                let target_global = p.shard(s).global_vertex(push.target_local as usize);
                let (eu, ev) = g.edge_endpoints(push.edge as usize);
                assert!(
                    (eu == target_global && ev == push.source as usize)
                        || (ev == target_global && eu == push.source as usize)
                );
                assert_eq!(h.halo_index(push.source as usize), push.source_halo);
                covered[push.edge as usize] += 1;
            }
        }
        // Every edge contributes one push per owned endpoint: intra edges
        // twice in their own shard, cut edges once per side.
        assert!(covered.iter().all(|&c| c == 2));
    }

    #[test]
    fn single_shard_halo_has_no_ghosts() {
        let g = two_triangles_bridge();
        let p = GraphPartition::contiguous(&g, 1).unwrap();
        let plan = HaloPlan::new(&g, &p);
        let h = plan.shard(0);
        assert!(h.ghosts().is_empty());
        assert!(h.boundary().is_empty());
        assert_eq!(h.halo_edges().len(), g.num_edges());
        assert!((plan.stats().replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_labellings_are_rejected_with_typed_errors() {
        let g = two_triangles_bridge();
        assert_eq!(
            GraphPartition::from_labels(&g, &[0; 6], 0),
            Err(PartitionError::NoShards)
        );
        assert_eq!(
            GraphPartition::from_labels(&g, &[0; 4], 2),
            Err(PartitionError::LabelingSize {
                got: 4,
                num_vertices: 6
            })
        );
        assert_eq!(
            GraphPartition::from_labels(&g, &[0, 0, 0, 1, 1, 7], 2),
            Err(PartitionError::ShardOutOfRange {
                label: 7,
                num_shards: 2
            })
        );
        assert_eq!(
            GraphPartition::contiguous(&g, 0),
            Err(PartitionError::NoShards)
        );
    }
}
