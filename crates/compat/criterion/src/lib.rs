//! A minimal, dependency-free, API-compatible subset of the `criterion`
//! benchmark harness.
//!
//! The workspace builds fully offline, so `cargo bench` runs against this
//! shim instead of the real criterion.  It implements the slice of the API
//! the benches use — `criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`
//! and the `sample_size` / `measurement_time` / `warm_up_time` knobs — with a
//! simple adaptive timing loop that reports the mean iteration time.
//!
//! Measurements are printed in a criterion-like one-line format:
//!
//! ```text
//! group/name              time: [   12.345 µs]   (10 samples)
//! ```
//!
//! [`Bencher::mean_time`] additionally exposes the measured mean to callers
//! that want to persist results (the workspace's `mc_engine` bench records a
//! JSON trajectory this way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterised benchmark: `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing state handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: u64,
    measurement_time: Duration,
    warm_up_time: Duration,
    mean: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: first for the warm-up window, then until
    /// either the measurement window elapses or `sample_size` samples were
    /// taken, and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let started = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            let elapsed = started.elapsed();
            if iterations >= self.sample_size && elapsed >= self.measurement_time {
                self.mean = elapsed / iterations as u32;
                break;
            }
            if elapsed >= 2 * self.measurement_time {
                self.mean = elapsed / iterations as u32;
                break;
            }
        }
    }

    /// Mean time of one iteration, available after [`Bencher::iter`] ran.
    pub fn mean_time(&self) -> Duration {
        self.mean
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:9.3} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:9.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:9.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:9.3} s ", nanos / 1_000_000_000.0)
    }
}

/// Measurement markers (API compatibility with criterion's
/// `measurement::WallTime`; the shim always measures wall time).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Configuration shared by a group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c, M = measurement::WallTime> {
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    warm_up_time: Duration,
    criterion: &'c mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Target measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "{:<44} time: [{}]   ({} samples)",
            format!("{}/{}", self.name, id),
            format_duration(bencher.mean_time()),
            self.sample_size
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id), bencher.mean_time()));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// All `(name, mean time)` pairs measured so far, in execution order.
    pub fn measurements(&self) -> &[(String, Duration)] {
        &self.results
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(5)
                .measurement_time(Duration::from_millis(5))
                .warm_up_time(Duration::from_millis(1));
            group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements()[0].1 > Duration::ZERO);
        assert_eq!(c.measurements()[1].0, "g/param/3");
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("x", 7).to_string(), "x/7");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(format_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(format_duration(Duration::from_micros(5)).contains("µs"));
        assert!(format_duration(Duration::from_millis(5)).contains("ms"));
        assert!(format_duration(Duration::from_secs(5)).contains('s'));
    }
}
