//! A minimal, dependency-free, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in fully offline environments, so instead of the
//! real `rand` it vendors this shim, which provides exactly the surface the
//! workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64,
//! * `gen::<T>()` for the primitive types, `gen_range` over half-open and
//!   inclusive integer/float ranges, and `gen_bool`.
//!
//! Streams are deterministic for a fixed seed, which the Monte-Carlo engine
//! relies on for reproducible experiments.  The shim intentionally does NOT
//! promise value-compatibility with the real `rand` crate — only API and
//! determinism compatibility.  One known divergence: `gen_range` over an
//! *inclusive float* range (`a..=b`) computes `a + u·(b − a)` with `u`
//! uniform on `[0, 1)`, so it never returns exactly `b` — callers that need
//! the endpoint with positive probability (e.g. deterministic `p = 1`
//! edges) must set it explicitly rather than sample it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (the high half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via 128-bit multiply-shift.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64/u128-like domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ seeded via
    /// SplitMix64 (the same construction the real `rand` crate documents for
    /// its `SmallRng` on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_uniform_on_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            seen_lo |= y == 0;
            seen_hi |= y == 4;
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
    }

    #[test]
    fn gen_range_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| rng.gen_range(0usize..10) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_references() {
        fn consume<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            let x: u64 = rng.gen();
            x ^ rng.gen_range(0u64..1000)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = consume(&mut rng);
        let dynamic: &mut dyn RngCore = &mut rng;
        let _ = consume(dynamic);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 zero bytes after filling would be astronomically unlikely
        assert!(buf.iter().any(|&b| b != 0));
    }
}
