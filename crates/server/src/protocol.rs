//! The line-delimited minijson wire protocol: request parsing (strict about
//! unknown fields) and response rendering; see the [crate docs](crate) for
//! the full grammar.
//!
//! Every parse failure maps to an [`ErrorCode`] plus a human-readable
//! message — a malformed line is answered, never dropped, and never kills
//! the connection.

use minijson::{ObjBuilder, Value};
use ugs_queries::halo::f64_from_hex;
use ugs_queries::SampleMethod;
use ugs_service::{parse_mode, QueryPlan};

/// Hard cap on one request line; longer lines are answered with
/// [`ErrorCode::BadRequest`] so a runaway client cannot balloon the
/// connection thread's buffer.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Machine-readable error class of a `{"status": "error"}` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON, not an object, missing a required
    /// field, carried an unknown field, or exceeded [`MAX_LINE_BYTES`].
    BadRequest,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The submitted plan document failed to parse or validate.
    Plan,
    /// The connection already has `max_inflight` undelivered jobs.
    OverBudget,
    /// The server-wide submission queue is full; retry after draining.
    Overloaded,
    /// `poll`/`cancel` named a job this connection does not hold (unknown,
    /// already delivered, or already cancelled).
    UnknownJob,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// A distributed worker process was lost mid-plan (connection died,
    /// request timed out, or bounded retries ran out); the coordinator
    /// degrades to this typed error instead of hanging.
    WorkerLost,
    /// An internal invariant broke (a typed answer, never a panic).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::Plan => "plan",
            ErrorCode::OverBudget => "over_budget",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::WorkerLost => "worker_lost",
            ErrorCode::Internal => "internal",
        }
    }

    /// Whether a client may usefully retry the failed request as-is.
    ///
    /// `worker_lost` names a transient fleet condition (a worker died and
    /// may be respawned or failed over), `overloaded` and `over_budget`
    /// clear as jobs drain — all three are worth retrying after a backoff.
    /// Everything else (malformed requests, plan errors, unknown jobs,
    /// shutdown, internal invariants) would fail identically again.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::WorkerLost | ErrorCode::Overloaded | ErrorCode::OverBudget
        )
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op": "submit", "plan": {...}}` — enqueue a plan, get a job id.
    Submit(QueryPlan),
    /// `{"op": "poll", "job": N}` — probe a job; a finished report is
    /// delivered exactly once and frees the job's in-flight slot.
    Poll(u64),
    /// `{"op": "cancel", "job": N}` — abandon a job (queued jobs are never
    /// executed; a running job's answer is discarded at delivery).
    Cancel(u64),
    /// `{"op": "stats"}` — server and cache counters.
    Stats,
    /// `{"op": "ping"}` — liveness probe.
    Ping,
    /// `{"op": "shutdown"}` — ask the server to stop gracefully.
    Shutdown,
    /// `{"op": "shard_submit", "job": "t", "shard": K, "shards": W,
    /// "worlds": N, "seed": "S", "mode": "skip"}` — start (or extend) a
    /// shard sampling job on a worker; only accepted by servers running
    /// with a shard role.
    ShardSubmit(ShardJobRequest),
    /// `{"op": "boundary", "job": "t", "from": F, "max": M}` — page the
    /// per-world boundary records of a shard job, `M` records starting at
    /// world `F` (idempotent reads; fewer may come back if sampling has not
    /// reached `F + M` yet).
    Boundary {
        /// Job token named by the `shard_submit` that started the job.
        job: String,
        /// First world index requested.
        from: usize,
        /// Maximum records to return.
        max: usize,
    },
    /// `{"op": "shard_result", "job": "t"}` — fetch the job's cross-world
    /// aggregates (degree histogram, per-edge presence counts) once every
    /// targeted world is sampled.
    ShardResult {
        /// Job token named by the `shard_submit` that started the job.
        job: String,
    },
    /// `{"op": "halo", "job": "t", "shard": K, "shards": W, "seed": "S",
    /// "mode": "skip", "kernel": {...}, "world": N, "phase": "...", ...}` —
    /// one superstep interaction of the ghost-halo exchange (PageRank /
    /// clustering / BFS over a sharded world); only accepted by servers
    /// running with a shard role.  See [`HaloRequest`].
    Halo(HaloRequest),
}

/// The parsed body of a `shard_submit` request: which shard job to start or
/// extend, and the exact replay identity it samples under.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJobRequest {
    /// Client-chosen job token, scoped to the connection.
    pub job: String,
    /// Shard index this worker must own.
    pub shard: usize,
    /// Total shard count of the partition.
    pub shards: usize,
    /// Absolute world target (re-submitting with a larger target extends a
    /// running job without resampling).
    pub worlds: usize,
    /// Batch seed of the shared replay stream.  Carried as a **decimal
    /// string** on the wire: JSON numbers are f64 here, which cannot hold
    /// every u64 seed bit-exactly.
    pub seed: u64,
    /// Sampling method; `auto` resolves on the worker through the same
    /// shared rule as everywhere else, so all workers pick the same path.
    pub mode: SampleMethod,
}

/// The superstep kernel a `halo` request drives.  Carried on the wire as a
/// nested object: `{"type": "pagerank", "damping": "<16-hex f64 bits>"}`,
/// `{"type": "clustering"}`, or `{"type": "bfs", "source": N}`.  PageRank's
/// damping factor travels as IEEE-754 bits ([`ugs_queries::halo::f64_to_hex`])
/// so every worker computes with exactly the coordinator's value; the
/// iteration cap and tolerance stay coordinator-side (the coordinator owns
/// the stop decision).
#[derive(Debug, Clone, PartialEq)]
pub enum HaloKernel {
    /// Push-style PageRank; one `step` per iteration.
    PageRank {
        /// Damping factor, decoded from its wire hex form.
        damping: f64,
    },
    /// Local clustering coefficients; a pure `collect` kernel (no steps).
    Clustering,
    /// Level-synchronous BFS from `source` (the k-NN traversal core).
    Bfs {
        /// Global id of the traversal source.
        source: usize,
    },
}

impl HaloKernel {
    /// The wire spelling of the kernel type.
    pub fn type_name(&self) -> &'static str {
        match self {
            HaloKernel::PageRank { .. } => "pagerank",
            HaloKernel::Clustering => "clustering",
            HaloKernel::Bfs { .. } => "bfs",
        }
    }
}

/// The phase of one `halo` interaction.  A world runs as: optional `feed`
/// lines installing exchanged ghost values, `step` lines running supersteps
/// (paged via `page` when a report overflows one line), and `collect` lines
/// paging the owned final values.
#[derive(Debug, Clone, PartialEq)]
pub enum HaloPhase {
    /// `{"phase": "feed", "values": ["gid:hex", ...]}` — install exchanged
    /// ghost ranks (global-id addressed) for the upcoming superstep.
    Feed {
        /// `id:value` entries ([`ugs_queries::halo::encode_rank`] form).
        values: Vec<String>,
    },
    /// `{"phase": "step", "step": T, "acc": "hex", "values": [...]}` — run
    /// superstep `T`.  PageRank threads the convergence accumulator `acc`
    /// through shards; BFS carries routed settlements in `values`.
    Step {
        /// Superstep index (step 0 (re-)initialises the world's kernel).
        step: usize,
        /// PageRank delta accumulator chained from lower shards.
        acc: Option<f64>,
        /// BFS settlements routed to this shard (`id:level` entries).
        values: Vec<String>,
    },
    /// `{"phase": "page", "from": F, "max": M}` — re-read a page of the
    /// last step's report (idempotent).
    Page {
        /// First entry requested.
        from: usize,
        /// Maximum entries to return.
        max: usize,
    },
    /// `{"phase": "collect", "from": F, "max": M}` — page the owned final
    /// values of the current world (triggers the compute for clustering).
    Collect {
        /// First entry requested.
        from: usize,
        /// Maximum entries to return.
        max: usize,
    },
}

/// The parsed body of a `halo` request: the session identity (job token,
/// shard role, replay seed/mode, kernel) plus the world cursor and phase.
/// Every line carries the full identity so a promoted standby can rebuild
/// the session from any point of the exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloRequest {
    /// Client-chosen session token, scoped to the connection.
    pub job: String,
    /// Shard index this worker must own.
    pub shard: usize,
    /// Total shard count of the partition.
    pub shards: usize,
    /// Batch seed of the shared replay stream (decimal string on the wire,
    /// as in [`ShardJobRequest::seed`]).
    pub seed: u64,
    /// Sampling method of the replayed stream.
    pub mode: SampleMethod,
    /// The superstep kernel to drive.
    pub kernel: HaloKernel,
    /// World index the phase applies to (monotone per session; a jump
    /// forward replays the stream, step 0 on the current world restarts it).
    pub world: usize,
    /// What to do in this interaction.
    pub phase: HaloPhase,
}

/// A typed protocol error: the code plus the message the client sees.
pub type RequestError = (ErrorCode, String);

/// Plan-document fields the server accepts.  `graph` is deliberately
/// absent: the server owns its graph, a client cannot point it elsewhere.
const PLAN_FIELDS: &[&str] = &[
    "worlds",
    "threads",
    "shards",
    "mode",
    "seed",
    "precision",
    "queries",
];

fn check_fields(value: &Value, allowed: &[&str], what: &str) -> Result<(), RequestError> {
    let Value::Obj(entries) = value else {
        return Err((
            ErrorCode::BadRequest,
            format!("{what} must be a JSON object"),
        ));
    };
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "unknown field {key:?} in {what} (allowed: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Records returned by a `boundary` read when the request names no `max`.
pub const DEFAULT_BOUNDARY_PAGE: usize = 512;

fn job_token(value: &Value) -> Result<String, RequestError> {
    match value.get_str("job") {
        Some(token) if !token.is_empty() => Ok(token.to_string()),
        _ => Err((
            ErrorCode::BadRequest,
            "field \"job\" must be a non-empty string token".to_string(),
        )),
    }
}

fn required_usize(value: &Value, field: &str) -> Result<usize, RequestError> {
    value.get_usize(field).ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            format!("field {field:?} must be a non-negative integer"),
        )
    })
}

fn job_id(value: &Value) -> Result<u64, RequestError> {
    value.get_usize("job").map(|job| job as u64).ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "field \"job\" must be a non-negative integer".to_string(),
        )
    })
}

fn page_window(value: &Value) -> Result<(usize, usize), RequestError> {
    let from = required_usize(value, "from")?;
    let max = match value.get("max") {
        None => DEFAULT_BOUNDARY_PAGE,
        Some(_) => required_usize(value, "max")?,
    };
    Ok((from, max))
}

fn string_array(value: &Value, field: &str) -> Result<Vec<String>, RequestError> {
    let Some(entries) = value.get(field) else {
        return Ok(Vec::new());
    };
    entries
        .as_array()
        .and_then(|items| {
            items
                .iter()
                .map(|item| item.as_str().map(str::to_string))
                .collect::<Option<Vec<String>>>()
        })
        .ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                format!("field {field:?} must be an array of strings"),
            )
        })
}

fn wire_seed(value: &Value) -> Result<u64, RequestError> {
    value
        .get_str("seed")
        .and_then(|text| text.parse::<u64>().ok())
        .ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                "field \"seed\" must be a decimal u64 carried as a string".to_string(),
            )
        })
}

fn wire_mode(value: &Value) -> Result<SampleMethod, RequestError> {
    let mode_name = value.get_str("mode").unwrap_or("auto");
    parse_mode(mode_name).ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            format!("unknown mode {mode_name:?}; expected auto|skip|per-edge"),
        )
    })
}

fn halo_kernel(value: &Value) -> Result<HaloKernel, RequestError> {
    let kernel = value.get("kernel").ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "a halo request requires an object field \"kernel\"".to_string(),
        )
    })?;
    let kind = kernel.get_str("type").ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "a halo kernel requires a string field \"type\"".to_string(),
        )
    })?;
    match kind {
        "pagerank" => {
            check_fields(kernel, &["type", "damping"], "a pagerank halo kernel")?;
            let damping = kernel
                .get_str("damping")
                .ok_or(())
                .and_then(|hex| f64_from_hex(hex).map_err(|_| ()))
                .map_err(|()| {
                    (
                        ErrorCode::BadRequest,
                        "field \"damping\" must be 16 hex digits of f64 bits".to_string(),
                    )
                })?;
            Ok(HaloKernel::PageRank { damping })
        }
        "clustering" => {
            check_fields(kernel, &["type"], "a clustering halo kernel")?;
            Ok(HaloKernel::Clustering)
        }
        "bfs" => {
            check_fields(kernel, &["type", "source"], "a bfs halo kernel")?;
            Ok(HaloKernel::Bfs {
                source: required_usize(kernel, "source")?,
            })
        }
        other => Err((
            ErrorCode::BadRequest,
            format!("unknown halo kernel {other:?}; expected pagerank|clustering|bfs"),
        )),
    }
}

/// Fields common to every `halo` phase.
const HALO_FIELDS: &[&str] = &[
    "op", "job", "shard", "shards", "seed", "mode", "kernel", "world", "phase",
];

fn halo_request(value: &Value) -> Result<Request, RequestError> {
    let phase_name = value.get_str("phase").ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "a halo request requires a string field \"phase\"".to_string(),
        )
    })?;
    // Per-phase strict field lists: the phase decides which extras exist.
    let (extra, what): (&[&str], &str) = match phase_name {
        "feed" => (&["values"], "a halo feed request"),
        "step" => (&["step", "acc", "values"], "a halo step request"),
        "page" => (&["from", "max"], "a halo page request"),
        "collect" => (&["from", "max"], "a halo collect request"),
        other => {
            return Err((
                ErrorCode::BadRequest,
                format!("unknown halo phase {other:?}; expected feed|step|page|collect"),
            ))
        }
    };
    let allowed: Vec<&str> = HALO_FIELDS.iter().chain(extra.iter()).copied().collect();
    check_fields(value, &allowed, what)?;
    let phase = match phase_name {
        "feed" => HaloPhase::Feed {
            values: string_array(value, "values")?,
        },
        "step" => {
            let acc = match value.get_str("acc") {
                None => None,
                Some(hex) => Some(f64_from_hex(hex).map_err(|_| {
                    (
                        ErrorCode::BadRequest,
                        "field \"acc\" must be 16 hex digits of f64 bits".to_string(),
                    )
                })?),
            };
            HaloPhase::Step {
                step: required_usize(value, "step")?,
                acc,
                values: string_array(value, "values")?,
            }
        }
        "page" => {
            let (from, max) = page_window(value)?;
            HaloPhase::Page { from, max }
        }
        "collect" => {
            let (from, max) = page_window(value)?;
            HaloPhase::Collect { from, max }
        }
        _ => unreachable!("phase name matched above"),
    };
    Ok(Request::Halo(HaloRequest {
        job: job_token(value)?,
        shard: required_usize(value, "shard")?,
        shards: required_usize(value, "shards")?,
        seed: wire_seed(value)?,
        mode: wire_mode(value)?,
        kernel: halo_kernel(value)?,
        world: required_usize(value, "world")?,
        phase,
    }))
}

/// Parses one request line; every failure is a typed [`RequestError`].
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err((
            ErrorCode::BadRequest,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let value = Value::parse(line).map_err(|error| (ErrorCode::BadRequest, error.to_string()))?;
    let op = match &value {
        Value::Obj(_) => value.get_str("op").ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                "a request requires a string field \"op\"".to_string(),
            )
        })?,
        _ => {
            return Err((
                ErrorCode::BadRequest,
                "a request must be a JSON object".to_string(),
            ))
        }
    };
    match op {
        "submit" => {
            check_fields(&value, &["op", "plan"], "a submit request")?;
            let plan_value = value.get("plan").ok_or_else(|| {
                (
                    ErrorCode::BadRequest,
                    "a submit request requires an object field \"plan\"".to_string(),
                )
            })?;
            if plan_value.get("graph").is_some() {
                return Err((
                    ErrorCode::Plan,
                    "the plan must not name a \"graph\": the server serves its own graph"
                        .to_string(),
                ));
            }
            check_fields(plan_value, PLAN_FIELDS, "a plan")?;
            let plan = QueryPlan::parse(plan_value)
                .map_err(|error| (ErrorCode::Plan, error.to_string()))?;
            Ok(Request::Submit(plan))
        }
        "poll" => {
            check_fields(&value, &["op", "job"], "a poll request")?;
            Ok(Request::Poll(job_id(&value)?))
        }
        "cancel" => {
            check_fields(&value, &["op", "job"], "a cancel request")?;
            Ok(Request::Cancel(job_id(&value)?))
        }
        "stats" => {
            check_fields(&value, &["op"], "a stats request")?;
            Ok(Request::Stats)
        }
        "ping" => {
            check_fields(&value, &["op"], "a ping request")?;
            Ok(Request::Ping)
        }
        "shutdown" => {
            check_fields(&value, &["op"], "a shutdown request")?;
            Ok(Request::Shutdown)
        }
        "shard_submit" => {
            check_fields(
                &value,
                &["op", "job", "shard", "shards", "worlds", "seed", "mode"],
                "a shard_submit request",
            )?;
            Ok(Request::ShardSubmit(ShardJobRequest {
                job: job_token(&value)?,
                shard: required_usize(&value, "shard")?,
                shards: required_usize(&value, "shards")?,
                worlds: required_usize(&value, "worlds")?,
                seed: wire_seed(&value)?,
                mode: wire_mode(&value)?,
            }))
        }
        "halo" => halo_request(&value),
        "boundary" => {
            check_fields(&value, &["op", "job", "from", "max"], "a boundary request")?;
            let job = job_token(&value)?;
            let from = required_usize(&value, "from")?;
            let max = match value.get("max") {
                None => DEFAULT_BOUNDARY_PAGE,
                Some(_) => required_usize(&value, "max")?,
            };
            Ok(Request::Boundary { job, from, max })
        }
        "shard_result" => {
            check_fields(&value, &["op", "job"], "a shard_result request")?;
            Ok(Request::ShardResult {
                job: job_token(&value)?,
            })
        }
        other => Err((
            ErrorCode::UnknownOp,
            format!(
                "unknown op {other:?}; expected submit|poll|cancel|stats|ping|shutdown|\
                 shard_submit|boundary|shard_result|halo"
            ),
        )),
    }
}

/// Renders the `{"status": "error", ...}` envelope for one line.  The
/// `retryable` field mirrors [`ErrorCode::retryable`] so clients can route
/// transient failures to a retry loop without a code table of their own.
pub fn error_line(code: ErrorCode, message: &str) -> String {
    ObjBuilder::new()
        .field("status", "error")
        .field("code", code.as_str())
        .field("retryable", code.retryable())
        .field("message", message)
        .build()
        .render()
}

/// Starts an `{"status": "ok"}` response; callers add their fields and
/// render with [`finish_ok`].
pub fn ok_builder() -> ObjBuilder {
    ObjBuilder::new().field("status", "ok")
}

/// Renders an ok-response builder to its wire line.
pub fn finish_ok(builder: ObjBuilder) -> String {
    builder.build().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_requests_parse() {
        let submit = parse_request(
            r#"{"op": "submit", "plan": {"worlds": 10, "queries": [{"type": "connectivity"}]}}"#,
        )
        .unwrap();
        match submit {
            Request::Submit(plan) => {
                assert_eq!(plan.worlds, 10);
                assert_eq!(plan.queries.len(), 1);
            }
            other => panic!("unexpected request {other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op": "poll", "job": 3}"#).unwrap(),
            Request::Poll(3)
        );
        assert_eq!(
            parse_request(r#"{"op": "cancel", "job": 0}"#).unwrap(),
            Request::Cancel(0)
        );
        assert_eq!(parse_request(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op": "stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn shard_ops_parse_with_string_seeds_and_defaults() {
        let submit = parse_request(concat!(
            r#"{"op": "shard_submit", "job": "t1", "shard": 1, "shards": 4,"#,
            r#" "worlds": 200, "seed": "18446744073709551615", "mode": "skip"}"#,
        ))
        .unwrap();
        assert_eq!(
            submit,
            Request::ShardSubmit(ShardJobRequest {
                job: "t1".to_string(),
                shard: 1,
                shards: 4,
                worlds: 200,
                seed: u64::MAX,
                mode: SampleMethod::Skip,
            })
        );
        // `mode` defaults to auto; `max` defaults to the standard page size.
        let submit = parse_request(concat!(
            r#"{"op": "shard_submit", "job": "t2", "shard": 0, "shards": 1,"#,
            r#" "worlds": 8, "seed": "7"}"#,
        ))
        .unwrap();
        match submit {
            Request::ShardSubmit(request) => assert_eq!(request.mode, SampleMethod::Auto),
            other => panic!("unexpected request {other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op": "boundary", "job": "t1", "from": 64, "max": 32}"#).unwrap(),
            Request::Boundary {
                job: "t1".to_string(),
                from: 64,
                max: 32,
            }
        );
        assert_eq!(
            parse_request(r#"{"op": "boundary", "job": "t1", "from": 0}"#).unwrap(),
            Request::Boundary {
                job: "t1".to_string(),
                from: 0,
                max: DEFAULT_BOUNDARY_PAGE,
            }
        );
        assert_eq!(
            parse_request(r#"{"op": "shard_result", "job": "t1"}"#).unwrap(),
            Request::ShardResult {
                job: "t1".to_string(),
            }
        );
    }

    #[test]
    fn malformed_shard_ops_are_typed_errors() {
        let cases: [(&str, ErrorCode); 6] = [
            // A numeric seed is rejected: it must travel as a decimal string.
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "t", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": 7}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": "7"}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "t", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": "7", "mode": "warp"}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "t", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": "7", "budget": 5}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (r#"{"op": "boundary", "job": "t"}"#, ErrorCode::BadRequest),
            (r#"{"op": "shard_result"}"#, ErrorCode::BadRequest),
        ];
        for (line, expected) in cases {
            let (code, message) = parse_request(line).unwrap_err();
            assert_eq!(code, expected, "{line}: {message}");
        }
    }

    #[test]
    fn halo_requests_parse_with_typed_kernels_and_phases() {
        let step = parse_request(concat!(
            r#"{"op": "halo", "job": "h0", "shard": 1, "shards": 2, "seed": "9","#,
            r#" "mode": "skip", "kernel": {"type": "pagerank", "damping": "3feb333333333333"},"#,
            r#" "world": 4, "phase": "step", "step": 0, "acc": "0000000000000000"}"#,
        ))
        .unwrap();
        match step {
            Request::Halo(request) => {
                assert_eq!(request.job, "h0");
                assert_eq!((request.shard, request.shards, request.world), (1, 2, 4));
                assert_eq!(request.seed, 9);
                assert_eq!(request.mode, SampleMethod::Skip);
                match request.kernel {
                    HaloKernel::PageRank { damping } => {
                        assert_eq!(damping.to_bits(), 0.85f64.to_bits());
                    }
                    other => panic!("unexpected kernel {other:?}"),
                }
                assert_eq!(
                    request.phase,
                    HaloPhase::Step {
                        step: 0,
                        acc: Some(0.0),
                        values: Vec::new(),
                    }
                );
            }
            other => panic!("unexpected request {other:?}"),
        }
        let feed = parse_request(concat!(
            r#"{"op": "halo", "job": "h0", "shard": 0, "shards": 2, "seed": "9","#,
            r#" "mode": "auto", "kernel": {"type": "bfs", "source": 3}, "world": 0,"#,
            r#" "phase": "step", "step": 2, "values": ["5:1", "7:2"]}"#,
        ))
        .unwrap();
        match feed {
            Request::Halo(request) => {
                assert_eq!(request.kernel, HaloKernel::Bfs { source: 3 });
                assert_eq!(
                    request.phase,
                    HaloPhase::Step {
                        step: 2,
                        acc: None,
                        values: vec!["5:1".to_string(), "7:2".to_string()],
                    }
                );
            }
            other => panic!("unexpected request {other:?}"),
        }
        let collect = parse_request(concat!(
            r#"{"op": "halo", "job": "cc", "shard": 0, "shards": 2, "seed": "1","#,
            r#" "mode": "per-edge", "kernel": {"type": "clustering"}, "world": 7,"#,
            r#" "phase": "collect", "from": 0}"#,
        ))
        .unwrap();
        match collect {
            Request::Halo(request) => {
                assert_eq!(request.kernel, HaloKernel::Clustering);
                assert_eq!(
                    request.phase,
                    HaloPhase::Collect {
                        from: 0,
                        max: DEFAULT_BOUNDARY_PAGE,
                    }
                );
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn malformed_halo_requests_are_typed_errors() {
        let cases: &[&str] = &[
            // Phase-inappropriate extras are rejected per phase.
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "clustering"}, "world": 0, "phase": "collect","#,
                r#" "from": 0, "acc": "0000000000000000"}"#,
            ),
            // Unknown phase.
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "clustering"}, "world": 0, "phase": "warp"}"#,
            ),
            // Unknown kernel, unknown kernel field, malformed damping.
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "warp"}, "world": 0, "phase": "step", "step": 0}"#,
            ),
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "clustering", "k": 2}, "world": 0, "phase": "step","#,
                r#" "step": 0}"#,
            ),
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "pagerank", "damping": "0.85"}, "world": 0,"#,
                r#" "phase": "step", "step": 0}"#,
            ),
            // A numeric seed, a missing world, a non-string values entry.
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": 1,"#,
                r#" "kernel": {"type": "clustering"}, "world": 0, "phase": "collect", "from": 0}"#,
            ),
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "clustering"}, "phase": "collect", "from": 0}"#,
            ),
            concat!(
                r#"{"op": "halo", "job": "h", "shard": 0, "shards": 1, "seed": "1","#,
                r#" "kernel": {"type": "bfs", "source": 0}, "world": 0, "phase": "step","#,
                r#" "step": 0, "values": [5]}"#,
            ),
        ];
        for line in cases {
            let (code, message) = parse_request(line).unwrap_err();
            assert_eq!(code, ErrorCode::BadRequest, "{line}: {message}");
        }
    }

    #[test]
    fn malformed_and_unknown_field_requests_are_typed_errors() {
        let cases: [(&str, ErrorCode); 8] = [
            ("{not json", ErrorCode::BadRequest),
            ("[1, 2]", ErrorCode::BadRequest),
            (r#"{"op": "warp"}"#, ErrorCode::UnknownOp),
            (r#"{"op": "ping", "extra": 1}"#, ErrorCode::BadRequest),
            (r#"{"op": "poll"}"#, ErrorCode::BadRequest),
            (
                r#"{"op": "submit", "plan": {"queries": []}}"#,
                ErrorCode::Plan,
            ),
            (
                r#"{"op": "submit", "plan": {"budget": 5, "queries": [{"type": "connectivity"}]}}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op": "submit", "plan": {"graph": "g.txt", "queries": [{"type": "connectivity"}]}}"#,
                ErrorCode::Plan,
            ),
        ];
        for (line, expected) in cases {
            let (code, message) = parse_request(line).unwrap_err();
            assert_eq!(code, expected, "{line}: {message}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let line = format!(
            r#"{{"op": "ping", "pad": "{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        let (code, _) = parse_request(&line).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
    }

    #[test]
    fn error_lines_carry_the_envelope() {
        let line = error_line(ErrorCode::Overloaded, "queue full");
        let value = Value::parse(&line).unwrap();
        assert_eq!(value.get_str("status"), Some("error"));
        assert_eq!(value.get_str("code"), Some("overloaded"));
        assert_eq!(value.get_str("message"), Some("queue full"));
        assert_eq!(value.get("retryable").and_then(Value::as_bool), Some(true));
        let fatal = Value::parse(&error_line(ErrorCode::Plan, "bad plan")).unwrap();
        assert_eq!(fatal.get("retryable").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn retryable_codes_name_transient_conditions_only() {
        for code in [
            ErrorCode::WorkerLost,
            ErrorCode::Overloaded,
            ErrorCode::OverBudget,
        ] {
            assert!(code.retryable(), "{} is transient", code.as_str());
        }
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::Plan,
            ErrorCode::UnknownJob,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert!(!code.retryable(), "{} is fatal", code.as_str());
        }
    }
}
