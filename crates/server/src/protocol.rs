//! The line-delimited minijson wire protocol: request parsing (strict about
//! unknown fields) and response rendering; see the [crate docs](crate) for
//! the full grammar.
//!
//! Every parse failure maps to an [`ErrorCode`] plus a human-readable
//! message — a malformed line is answered, never dropped, and never kills
//! the connection.

use minijson::{ObjBuilder, Value};
use ugs_queries::SampleMethod;
use ugs_service::{parse_mode, QueryPlan};

/// Hard cap on one request line; longer lines are answered with
/// [`ErrorCode::BadRequest`] so a runaway client cannot balloon the
/// connection thread's buffer.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Machine-readable error class of a `{"status": "error"}` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON, not an object, missing a required
    /// field, carried an unknown field, or exceeded [`MAX_LINE_BYTES`].
    BadRequest,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The submitted plan document failed to parse or validate.
    Plan,
    /// The connection already has `max_inflight` undelivered jobs.
    OverBudget,
    /// The server-wide submission queue is full; retry after draining.
    Overloaded,
    /// `poll`/`cancel` named a job this connection does not hold (unknown,
    /// already delivered, or already cancelled).
    UnknownJob,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// A distributed worker process was lost mid-plan (connection died,
    /// request timed out, or bounded retries ran out); the coordinator
    /// degrades to this typed error instead of hanging.
    WorkerLost,
    /// An internal invariant broke (a typed answer, never a panic).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::Plan => "plan",
            ErrorCode::OverBudget => "over_budget",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::WorkerLost => "worker_lost",
            ErrorCode::Internal => "internal",
        }
    }

    /// Whether a client may usefully retry the failed request as-is.
    ///
    /// `worker_lost` names a transient fleet condition (a worker died and
    /// may be respawned or failed over), `overloaded` and `over_budget`
    /// clear as jobs drain — all three are worth retrying after a backoff.
    /// Everything else (malformed requests, plan errors, unknown jobs,
    /// shutdown, internal invariants) would fail identically again.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::WorkerLost | ErrorCode::Overloaded | ErrorCode::OverBudget
        )
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op": "submit", "plan": {...}}` — enqueue a plan, get a job id.
    Submit(QueryPlan),
    /// `{"op": "poll", "job": N}` — probe a job; a finished report is
    /// delivered exactly once and frees the job's in-flight slot.
    Poll(u64),
    /// `{"op": "cancel", "job": N}` — abandon a job (queued jobs are never
    /// executed; a running job's answer is discarded at delivery).
    Cancel(u64),
    /// `{"op": "stats"}` — server and cache counters.
    Stats,
    /// `{"op": "ping"}` — liveness probe.
    Ping,
    /// `{"op": "shutdown"}` — ask the server to stop gracefully.
    Shutdown,
    /// `{"op": "shard_submit", "job": "t", "shard": K, "shards": W,
    /// "worlds": N, "seed": "S", "mode": "skip"}` — start (or extend) a
    /// shard sampling job on a worker; only accepted by servers running
    /// with a shard role.
    ShardSubmit(ShardJobRequest),
    /// `{"op": "boundary", "job": "t", "from": F, "max": M}` — page the
    /// per-world boundary records of a shard job, `M` records starting at
    /// world `F` (idempotent reads; fewer may come back if sampling has not
    /// reached `F + M` yet).
    Boundary {
        /// Job token named by the `shard_submit` that started the job.
        job: String,
        /// First world index requested.
        from: usize,
        /// Maximum records to return.
        max: usize,
    },
    /// `{"op": "shard_result", "job": "t"}` — fetch the job's cross-world
    /// aggregates (degree histogram, per-edge presence counts) once every
    /// targeted world is sampled.
    ShardResult {
        /// Job token named by the `shard_submit` that started the job.
        job: String,
    },
}

/// The parsed body of a `shard_submit` request: which shard job to start or
/// extend, and the exact replay identity it samples under.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJobRequest {
    /// Client-chosen job token, scoped to the connection.
    pub job: String,
    /// Shard index this worker must own.
    pub shard: usize,
    /// Total shard count of the partition.
    pub shards: usize,
    /// Absolute world target (re-submitting with a larger target extends a
    /// running job without resampling).
    pub worlds: usize,
    /// Batch seed of the shared replay stream.  Carried as a **decimal
    /// string** on the wire: JSON numbers are f64 here, which cannot hold
    /// every u64 seed bit-exactly.
    pub seed: u64,
    /// Sampling method; `auto` resolves on the worker through the same
    /// shared rule as everywhere else, so all workers pick the same path.
    pub mode: SampleMethod,
}

/// A typed protocol error: the code plus the message the client sees.
pub type RequestError = (ErrorCode, String);

/// Plan-document fields the server accepts.  `graph` is deliberately
/// absent: the server owns its graph, a client cannot point it elsewhere.
const PLAN_FIELDS: &[&str] = &[
    "worlds",
    "threads",
    "shards",
    "mode",
    "seed",
    "precision",
    "queries",
];

fn check_fields(value: &Value, allowed: &[&str], what: &str) -> Result<(), RequestError> {
    let Value::Obj(entries) = value else {
        return Err((
            ErrorCode::BadRequest,
            format!("{what} must be a JSON object"),
        ));
    };
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "unknown field {key:?} in {what} (allowed: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Records returned by a `boundary` read when the request names no `max`.
pub const DEFAULT_BOUNDARY_PAGE: usize = 512;

fn job_token(value: &Value) -> Result<String, RequestError> {
    match value.get_str("job") {
        Some(token) if !token.is_empty() => Ok(token.to_string()),
        _ => Err((
            ErrorCode::BadRequest,
            "field \"job\" must be a non-empty string token".to_string(),
        )),
    }
}

fn required_usize(value: &Value, field: &str) -> Result<usize, RequestError> {
    value.get_usize(field).ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            format!("field {field:?} must be a non-negative integer"),
        )
    })
}

fn job_id(value: &Value) -> Result<u64, RequestError> {
    value.get_usize("job").map(|job| job as u64).ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "field \"job\" must be a non-negative integer".to_string(),
        )
    })
}

/// Parses one request line; every failure is a typed [`RequestError`].
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err((
            ErrorCode::BadRequest,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let value = Value::parse(line).map_err(|error| (ErrorCode::BadRequest, error.to_string()))?;
    let op = match &value {
        Value::Obj(_) => value.get_str("op").ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                "a request requires a string field \"op\"".to_string(),
            )
        })?,
        _ => {
            return Err((
                ErrorCode::BadRequest,
                "a request must be a JSON object".to_string(),
            ))
        }
    };
    match op {
        "submit" => {
            check_fields(&value, &["op", "plan"], "a submit request")?;
            let plan_value = value.get("plan").ok_or_else(|| {
                (
                    ErrorCode::BadRequest,
                    "a submit request requires an object field \"plan\"".to_string(),
                )
            })?;
            if plan_value.get("graph").is_some() {
                return Err((
                    ErrorCode::Plan,
                    "the plan must not name a \"graph\": the server serves its own graph"
                        .to_string(),
                ));
            }
            check_fields(plan_value, PLAN_FIELDS, "a plan")?;
            let plan = QueryPlan::parse(plan_value)
                .map_err(|error| (ErrorCode::Plan, error.to_string()))?;
            Ok(Request::Submit(plan))
        }
        "poll" => {
            check_fields(&value, &["op", "job"], "a poll request")?;
            Ok(Request::Poll(job_id(&value)?))
        }
        "cancel" => {
            check_fields(&value, &["op", "job"], "a cancel request")?;
            Ok(Request::Cancel(job_id(&value)?))
        }
        "stats" => {
            check_fields(&value, &["op"], "a stats request")?;
            Ok(Request::Stats)
        }
        "ping" => {
            check_fields(&value, &["op"], "a ping request")?;
            Ok(Request::Ping)
        }
        "shutdown" => {
            check_fields(&value, &["op"], "a shutdown request")?;
            Ok(Request::Shutdown)
        }
        "shard_submit" => {
            check_fields(
                &value,
                &["op", "job", "shard", "shards", "worlds", "seed", "mode"],
                "a shard_submit request",
            )?;
            let job = job_token(&value)?;
            let shard = required_usize(&value, "shard")?;
            let shards = required_usize(&value, "shards")?;
            let worlds = required_usize(&value, "worlds")?;
            let seed = value
                .get_str("seed")
                .and_then(|text| text.parse::<u64>().ok())
                .ok_or_else(|| {
                    (
                        ErrorCode::BadRequest,
                        "field \"seed\" must be a decimal u64 carried as a string".to_string(),
                    )
                })?;
            let mode_name = value.get_str("mode").unwrap_or("auto");
            let mode = parse_mode(mode_name).ok_or_else(|| {
                (
                    ErrorCode::BadRequest,
                    format!("unknown mode {mode_name:?}; expected auto|skip|per_edge"),
                )
            })?;
            Ok(Request::ShardSubmit(ShardJobRequest {
                job,
                shard,
                shards,
                worlds,
                seed,
                mode,
            }))
        }
        "boundary" => {
            check_fields(&value, &["op", "job", "from", "max"], "a boundary request")?;
            let job = job_token(&value)?;
            let from = required_usize(&value, "from")?;
            let max = match value.get("max") {
                None => DEFAULT_BOUNDARY_PAGE,
                Some(_) => required_usize(&value, "max")?,
            };
            Ok(Request::Boundary { job, from, max })
        }
        "shard_result" => {
            check_fields(&value, &["op", "job"], "a shard_result request")?;
            Ok(Request::ShardResult {
                job: job_token(&value)?,
            })
        }
        other => Err((
            ErrorCode::UnknownOp,
            format!(
                "unknown op {other:?}; expected submit|poll|cancel|stats|ping|shutdown|\
                 shard_submit|boundary|shard_result"
            ),
        )),
    }
}

/// Renders the `{"status": "error", ...}` envelope for one line.  The
/// `retryable` field mirrors [`ErrorCode::retryable`] so clients can route
/// transient failures to a retry loop without a code table of their own.
pub fn error_line(code: ErrorCode, message: &str) -> String {
    ObjBuilder::new()
        .field("status", "error")
        .field("code", code.as_str())
        .field("retryable", code.retryable())
        .field("message", message)
        .build()
        .render()
}

/// Starts an `{"status": "ok"}` response; callers add their fields and
/// render with [`finish_ok`].
pub fn ok_builder() -> ObjBuilder {
    ObjBuilder::new().field("status", "ok")
}

/// Renders an ok-response builder to its wire line.
pub fn finish_ok(builder: ObjBuilder) -> String {
    builder.build().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_requests_parse() {
        let submit = parse_request(
            r#"{"op": "submit", "plan": {"worlds": 10, "queries": [{"type": "connectivity"}]}}"#,
        )
        .unwrap();
        match submit {
            Request::Submit(plan) => {
                assert_eq!(plan.worlds, 10);
                assert_eq!(plan.queries.len(), 1);
            }
            other => panic!("unexpected request {other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op": "poll", "job": 3}"#).unwrap(),
            Request::Poll(3)
        );
        assert_eq!(
            parse_request(r#"{"op": "cancel", "job": 0}"#).unwrap(),
            Request::Cancel(0)
        );
        assert_eq!(parse_request(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op": "stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn shard_ops_parse_with_string_seeds_and_defaults() {
        let submit = parse_request(concat!(
            r#"{"op": "shard_submit", "job": "t1", "shard": 1, "shards": 4,"#,
            r#" "worlds": 200, "seed": "18446744073709551615", "mode": "skip"}"#,
        ))
        .unwrap();
        assert_eq!(
            submit,
            Request::ShardSubmit(ShardJobRequest {
                job: "t1".to_string(),
                shard: 1,
                shards: 4,
                worlds: 200,
                seed: u64::MAX,
                mode: SampleMethod::Skip,
            })
        );
        // `mode` defaults to auto; `max` defaults to the standard page size.
        let submit = parse_request(concat!(
            r#"{"op": "shard_submit", "job": "t2", "shard": 0, "shards": 1,"#,
            r#" "worlds": 8, "seed": "7"}"#,
        ))
        .unwrap();
        match submit {
            Request::ShardSubmit(request) => assert_eq!(request.mode, SampleMethod::Auto),
            other => panic!("unexpected request {other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op": "boundary", "job": "t1", "from": 64, "max": 32}"#).unwrap(),
            Request::Boundary {
                job: "t1".to_string(),
                from: 64,
                max: 32,
            }
        );
        assert_eq!(
            parse_request(r#"{"op": "boundary", "job": "t1", "from": 0}"#).unwrap(),
            Request::Boundary {
                job: "t1".to_string(),
                from: 0,
                max: DEFAULT_BOUNDARY_PAGE,
            }
        );
        assert_eq!(
            parse_request(r#"{"op": "shard_result", "job": "t1"}"#).unwrap(),
            Request::ShardResult {
                job: "t1".to_string(),
            }
        );
    }

    #[test]
    fn malformed_shard_ops_are_typed_errors() {
        let cases: [(&str, ErrorCode); 6] = [
            // A numeric seed is rejected: it must travel as a decimal string.
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "t", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": 7}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": "7"}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "t", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": "7", "mode": "warp"}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (
                concat!(
                    r#"{"op": "shard_submit", "job": "t", "shard": 0, "shards": 1,"#,
                    r#" "worlds": 8, "seed": "7", "budget": 5}"#,
                ),
                ErrorCode::BadRequest,
            ),
            (r#"{"op": "boundary", "job": "t"}"#, ErrorCode::BadRequest),
            (r#"{"op": "shard_result"}"#, ErrorCode::BadRequest),
        ];
        for (line, expected) in cases {
            let (code, message) = parse_request(line).unwrap_err();
            assert_eq!(code, expected, "{line}: {message}");
        }
    }

    #[test]
    fn malformed_and_unknown_field_requests_are_typed_errors() {
        let cases: [(&str, ErrorCode); 8] = [
            ("{not json", ErrorCode::BadRequest),
            ("[1, 2]", ErrorCode::BadRequest),
            (r#"{"op": "warp"}"#, ErrorCode::UnknownOp),
            (r#"{"op": "ping", "extra": 1}"#, ErrorCode::BadRequest),
            (r#"{"op": "poll"}"#, ErrorCode::BadRequest),
            (
                r#"{"op": "submit", "plan": {"queries": []}}"#,
                ErrorCode::Plan,
            ),
            (
                r#"{"op": "submit", "plan": {"budget": 5, "queries": [{"type": "connectivity"}]}}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op": "submit", "plan": {"graph": "g.txt", "queries": [{"type": "connectivity"}]}}"#,
                ErrorCode::Plan,
            ),
        ];
        for (line, expected) in cases {
            let (code, message) = parse_request(line).unwrap_err();
            assert_eq!(code, expected, "{line}: {message}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let line = format!(
            r#"{{"op": "ping", "pad": "{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        let (code, _) = parse_request(&line).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
    }

    #[test]
    fn error_lines_carry_the_envelope() {
        let line = error_line(ErrorCode::Overloaded, "queue full");
        let value = Value::parse(&line).unwrap();
        assert_eq!(value.get_str("status"), Some("error"));
        assert_eq!(value.get_str("code"), Some("overloaded"));
        assert_eq!(value.get_str("message"), Some("queue full"));
        assert_eq!(value.get("retryable").and_then(Value::as_bool), Some(true));
        let fatal = Value::parse(&error_line(ErrorCode::Plan, "bad plan")).unwrap();
        assert_eq!(fatal.get("retryable").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn retryable_codes_name_transient_conditions_only() {
        for code in [
            ErrorCode::WorkerLost,
            ErrorCode::Overloaded,
            ErrorCode::OverBudget,
        ] {
            assert!(code.retryable(), "{} is transient", code.as_str());
        }
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::Plan,
            ErrorCode::UnknownJob,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert!(!code.retryable(), "{} is fatal", code.as_str());
        }
    }
}
