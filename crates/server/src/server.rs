//! The TCP front-end: listener, connection handlers, executor pool,
//! admission control and graceful shutdown; see the [crate docs](crate)
//! for the wire protocol.
//!
//! ## Threading model
//!
//! * one **listener** thread accepting connections;
//! * one **connection** thread per client, doing *only* non-blocking work
//!   (parse, cache lookups, channel probes) — a connection thread never
//!   parks on a ticket, so a slow job cannot wedge its client's other
//!   requests;
//! * a fixed pool of **executor** threads draining one bounded submission
//!   queue; each job runs its plan through an isolated
//!   [`QueryService`](ugs_service::QueryService) (the deterministic-replay
//!   path), inserts the answers into the shared cache and hands them back
//!   over a per-job channel.
//!
//! ## Admission control
//!
//! Two typed backpressure surfaces, checked in order at submit time:
//! a per-connection in-flight budget ([`ServerConfig::max_inflight`],
//! [`ErrorCode::OverBudget`]) and the bounded server-wide queue
//! ([`ServerConfig::queue_capacity`], [`ErrorCode::Overloaded`] when
//! `try_send` finds it full).  Nothing is silently dropped and no queue is
//! unbounded.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] (or a client's `shutdown` op) sets the stop
//! flag, wakes the listener with a loopback connect, closes every client
//! socket (blocked readers see EOF — never a hang), joins the connection
//! threads, then drops the queue senders so the executors drain: queued
//! jobs whose clients are gone are discarded, the running job finishes.
//! In-flight tickets are thereby either drained or cancelled, never
//! stranded.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use minijson::{ObjBuilder, Value};
use ugs_service::{QueryAnswer, QueryPlan, ServiceError};
use uncertain_graph::{GraphPartition, UncertainGraph};

use crate::cache::{query_key, CacheStats, ResultCache};
use crate::fault::{FaultClock, FaultKind, FaultPlan};
use crate::halo::{HaloEnv, HaloSession};
use crate::line::{read_limited_line, LineRead};
use crate::protocol::{
    error_line, finish_ok, ok_builder, parse_request, ErrorCode, Request, ShardJobRequest,
    MAX_LINE_BYTES,
};
use crate::shard::{ShardJob, ShardOutcome};

/// Tunables of one [`serve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` (the default) picks a free loopback
    /// port — read it back from [`ServerHandle::addr`].
    pub addr: String,
    /// Executor threads draining the submission queue (min 1).
    pub executors: usize,
    /// Bound of the server-wide submission queue; a full queue answers
    /// `overloaded` instead of buffering without limit (min 1).
    pub queue_capacity: usize,
    /// Per-connection budget of undelivered jobs; the budget frees when a
    /// report is delivered or the job is cancelled.
    pub max_inflight: usize,
    /// Byte budget of the deterministic result cache; `0` disables it.
    pub cache_bytes: usize,
    /// Hard cap on a plan's `threads` field (a client must not be able to
    /// spawn an arbitrary number of service workers).  Clamping happens
    /// *before* cache-key computation, so the key always reflects the
    /// thread count that actually ran.
    pub max_plan_threads: usize,
    /// `Some((index, total))` runs the server as a **shard worker**: it
    /// builds the contiguous `total`-shard partition of its graph, holds
    /// shard `index`'s CSR state, and accepts the `shard_submit` /
    /// `boundary` / `shard_result` ops.  `None` (the default) serves the
    /// ordinary plan ops only.
    pub shard: Option<(usize, usize)>,
    /// Byte cap on one request line (excluding the newline).  A longer
    /// line is answered with a typed `bad_request` — without ever being
    /// buffered whole — and the connection stays alive.
    pub max_line_bytes: usize,
    /// Test/bench-only seeded fault injection over this server's wire
    /// path; see [`crate::fault`].  `None` (the default) serves faithfully.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            executors: 2,
            queue_capacity: 64,
            max_inflight: 8,
            cache_bytes: 1 << 20,
            max_plan_threads: 8,
            shard: None,
            max_line_bytes: MAX_LINE_BYTES,
            fault_plan: None,
        }
    }
}

/// The worker identity of a server started with [`ServerConfig::shard`].
struct ShardRole {
    index: usize,
    shards: usize,
    partition: Arc<GraphPartition>,
}

/// State shared by every thread of one server.
struct Shared {
    graph: Arc<UncertainGraph>,
    fingerprint: u64,
    addr: SocketAddr,
    config: ServerConfig,
    cache: Mutex<ResultCache>,
    stop: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_delivered: AtomicU64,
    jobs_cancelled: AtomicU64,
    shard: Option<ShardRole>,
    /// Jobs accepted by `try_send` and not yet picked up by an executor.
    queue_depth: AtomicUsize,
    /// One flag per executor thread, raised while it runs a plan.
    executor_busy: Vec<AtomicBool>,
    /// Live client connections (the `stats` gauge behind the
    /// shutdown-closes-every-connection guarantee).
    connections: AtomicUsize,
    /// Live shard sampling jobs across all connections.
    shard_jobs: AtomicUsize,
    /// Live ghost-halo exchange sessions across all connections.
    halo_sessions: AtomicUsize,
    /// Armed fault schedule ([`ServerConfig::fault_plan`]); server-global
    /// so reconnecting clients cannot rewind the op counter.
    faults: Option<FaultClock>,
}

impl Shared {
    /// Flips the stop flag (idempotent) and wakes the blocked `accept`.
    fn begin_shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn graph_label(&self) -> String {
        format!("fingerprint:{:016x}", self.fingerprint)
    }
}

/// One unit of executor work: the (sub-)plan to run, the cache key of each
/// of its queries, and the reply channel back to the connection.
struct ExecJob {
    plan: QueryPlan,
    keys: Vec<String>,
    cancelled: Arc<AtomicBool>,
    done_tx: Sender<Vec<Result<QueryAnswer, ServiceError>>>,
}

/// A connection-local job record.
enum Job {
    /// Every query answered from the cache (or already collected): the
    /// rendered report waits for the next poll.
    Ready(Value),
    /// The executor owes the answers of `misses` (indices into the plan's
    /// query list); everything else was a cache hit.
    Running {
        plan: QueryPlan,
        hits: Vec<Option<Result<QueryAnswer, ServiceError>>>,
        misses: Vec<usize>,
        done_rx: Receiver<Vec<Result<QueryAnswer, ServiceError>>>,
        cancelled: Arc<AtomicBool>,
    },
}

/// A running server; dropping the handle shuts it down gracefully.
pub struct ServerHandle {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    job_tx: Option<SyncSender<ExecJob>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The served graph's fingerprint (the `graph` label of every report).
    pub fn fingerprint(&self) -> u64 {
        self.shared.fingerprint
    }

    /// Current cache counters (also available over the wire via `stats`).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().expect("cache poisoned").stats()
    }

    /// Stops the server gracefully and joins every thread; see the
    /// [module docs](self) for the teardown order.  Equivalent to dropping
    /// the handle, spelled out for call sites that want the intent visible.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the server stops — i.e. until a client sends the
    /// `shutdown` op (or the process is told to stop some other way), then
    /// tears down like [`ServerHandle::shutdown`].  The CLI's `serve`
    /// subcommand runs on this.
    pub fn wait(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // Drop completes the teardown (executors, queue senders).
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // All connection threads are joined by now (the listener joins
        // them), so the last queue senders are this handle's and the
        // executors drain to disconnect.
        self.job_tx.take();
        for executor in self.executors.drain(..) {
            let _ = executor.join();
        }
    }
}

/// Binds the address in `config` and serves `graph` until shutdown.
pub fn serve(
    graph: impl Into<Arc<UncertainGraph>>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let graph = graph.into();
    let shard = match config.shard {
        None => None,
        Some((index, total)) => {
            if index >= total {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("shard index {index} out of range for {total} shards"),
                ));
            }
            let partition = GraphPartition::contiguous(&graph, total).map_err(|error| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("cannot partition the graph into {total} shards: {error}"),
                )
            })?;
            Some(ShardRole {
                index,
                shards: total,
                partition: Arc::new(partition),
            })
        }
    };
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let fingerprint = graph.fingerprint();
    let executor_busy = (0..config.executors.max(1))
        .map(|_| AtomicBool::new(false))
        .collect();
    let faults = config
        .fault_plan
        .clone()
        .filter(|plan| !plan.is_empty())
        .map(FaultClock::new);
    let shared = Arc::new(Shared {
        graph,
        fingerprint,
        addr,
        cache: Mutex::new(ResultCache::new(config.cache_bytes)),
        config,
        stop: AtomicBool::new(false),
        jobs_submitted: AtomicU64::new(0),
        jobs_delivered: AtomicU64::new(0),
        jobs_cancelled: AtomicU64::new(0),
        shard,
        queue_depth: AtomicUsize::new(0),
        executor_busy,
        connections: AtomicUsize::new(0),
        shard_jobs: AtomicUsize::new(0),
        halo_sessions: AtomicUsize::new(0),
        faults,
    });
    let (job_tx, job_rx) = mpsc::sync_channel(shared.config.queue_capacity.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let executors = (0..shared.config.executors.max(1))
        .map(|slot| {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            std::thread::spawn(move || executor_loop(&shared, &job_rx, slot))
        })
        .collect();
    let listener_handle = {
        let shared = Arc::clone(&shared);
        let job_tx = job_tx.clone();
        std::thread::spawn(move || listener_loop(listener, &shared, &job_tx))
    };
    Ok(ServerHandle {
        shared,
        listener: Some(listener_handle),
        executors,
        job_tx: Some(job_tx),
    })
}

/// Accepts connections until the stop flag flips, then closes every client
/// socket and joins the connection threads.
fn listener_loop(listener: TcpListener, shared: &Arc<Shared>, job_tx: &SyncSender<ExecJob>) {
    let mut connections: Vec<(Option<TcpStream>, JoinHandle<()>)> = Vec::new();
    for incoming in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let Ok(stream) = incoming else { continue };
        // One-line responses must not sit in Nagle's buffer waiting for an
        // ACK of the request they answer.
        let _ = stream.set_nodelay(true);
        // Reap finished connection threads so a long-lived server does not
        // accumulate handles.
        let mut live = Vec::with_capacity(connections.len());
        for (stream, handle) in connections.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push((stream, handle));
            }
        }
        connections = live;
        let wakeup = stream.try_clone().ok();
        let handle = {
            let shared = Arc::clone(shared);
            let job_tx = job_tx.clone();
            std::thread::spawn(move || handle_connection(stream, &shared, &job_tx))
        };
        connections.push((wakeup, handle));
    }
    for (stream, handle) in connections {
        if let Some(stream) = stream {
            // Unblocks the connection thread's `read_line` with an EOF; a
            // client blocked on a response read sees the socket close
            // instead of hanging.
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = handle.join();
    }
}

/// Drains the submission queue; exits when every sender is gone.
fn executor_loop(shared: &Arc<Shared>, job_rx: &Mutex<Receiver<ExecJob>>, slot: usize) {
    loop {
        // Holding the lock across `recv` is the queue hand-off: exactly one
        // idle executor waits at a time, and it releases the lock before
        // running the job so the others can pick up the next one.
        let job = match job_rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        if job.cancelled.load(Ordering::SeqCst) || shared.stopping() {
            // Cancelled while queued (or the server is draining for
            // shutdown): never execute.  Dropping `done_tx` disconnects the
            // job's channel, which polls surface as a typed error.
            continue;
        }
        shared.executor_busy[slot].store(true, Ordering::SeqCst);
        // The cancel flag reaches the adaptive driver's epoch checkpoints:
        // cancelling a running adaptive plan aborts it between epochs
        // instead of burning the full world budget.
        let answers = job.plan.execute_detailed_with_cancel(
            Arc::clone(&shared.graph),
            Some(Arc::clone(&job.cancelled)),
        );
        shared.executor_busy[slot].store(false, Ordering::SeqCst);
        if !job.cancelled.load(Ordering::SeqCst) {
            // A cancelled adaptive run stopped early: its answers reflect a
            // truncated world stream and must not be cached.
            let mut cache = shared.cache.lock().expect("cache poisoned");
            for (key, outcome) in job.keys.iter().zip(&answers) {
                if let Ok(answer) = outcome {
                    cache.insert(key.clone(), answer.clone());
                }
            }
        }
        let _ = job.done_tx.send(answers);
    }
}

/// One client connection: read a line, answer a line, forever; every
/// failure is a typed error response and the loop continues.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, job_tx: &SyncSender<ExecJob>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut jobs: HashMap<u64, Job> = HashMap::new();
    let mut shard_jobs: HashMap<String, ShardJob> = HashMap::new();
    let mut halo_sessions: HashMap<String, HaloSession<'_>> = HashMap::new();
    let mut next_job: u64 = 1;
    let cap = shared.config.max_line_bytes.max(1);
    loop {
        let line = match read_limited_line(&mut reader, cap) {
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::Overflow) => {
                // The oversized line was drained, never buffered whole; the
                // typed answer keeps the connection usable.
                let response = error_line(
                    ErrorCode::BadRequest,
                    &format!("request line exceeds {cap} bytes"),
                );
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Ok(LineRead::Line(line)) => line,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Injected faults tick once per parsed request line (server-global
        // op counter) and misbehave *instead of* answering faithfully.
        let mut garble = false;
        if let Some(clock) = &shared.faults {
            match clock.next() {
                None => {}
                Some(FaultKind::Delay) => std::thread::sleep(clock.delay()),
                Some(FaultKind::Drop) => continue,
                Some(FaultKind::Disconnect) => break,
                Some(FaultKind::Garble) => garble = true,
            }
        }
        let outcome = handle_request(
            trimmed,
            shared,
            job_tx,
            &mut jobs,
            &mut shard_jobs,
            &mut halo_sessions,
            &mut next_job,
        );
        let (mut response, stop_after) = match outcome {
            Outcome::Reply(response) => (response, false),
            Outcome::Shutdown(response) => (response, true),
        };
        if garble {
            response = format!("#!garbled<{response}");
        }
        let written = writeln!(writer, "{response}").and_then(|_| writer.flush());
        if stop_after {
            // Flip the flag only *after* the acknowledgement is on the wire,
            // so the listener cannot close this socket under the response.
            shared.begin_shutdown();
            break;
        }
        if written.is_err() {
            break;
        }
    }
    // The listener keeps a wakeup clone of this socket (to deliver EOF on
    // server shutdown), so dropping our halves alone sends no FIN until
    // that clone is reaped at the next accept.  Shut the socket down
    // explicitly: a client blocked on a response read sees EOF now, not
    // its read timeout.
    let _ = writer.shutdown(Shutdown::Both);
    // The client is gone: flag its queued jobs so no executor burns worlds
    // on answers nobody will collect.
    for job in jobs.into_values() {
        if let Job::Running { cancelled, .. } = job {
            cancelled.store(true, Ordering::SeqCst);
        }
    }
    // Shard jobs live and die with their connection: dropping the map stops
    // and joins every sampler thread.
    shared
        .shard_jobs
        .fetch_sub(shard_jobs.len(), Ordering::SeqCst);
    drop(shard_jobs);
    // Halo sessions are plain connection-local data: drop them, settle the
    // gauge.
    shared
        .halo_sessions
        .fetch_sub(halo_sessions.len(), Ordering::SeqCst);
    drop(halo_sessions);
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

/// What a request leaves the connection loop to do: reply, or reply and
/// then start the server-wide shutdown (acknowledgement before teardown).
enum Outcome {
    Reply(String),
    Shutdown(String),
}

fn handle_request<'g>(
    line: &str,
    shared: &'g Arc<Shared>,
    job_tx: &SyncSender<ExecJob>,
    jobs: &mut HashMap<u64, Job>,
    shard_jobs: &mut HashMap<String, ShardJob>,
    halo_sessions: &mut HashMap<String, HaloSession<'g>>,
    next_job: &mut u64,
) -> Outcome {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err((code, message)) => return Outcome::Reply(error_line(code, &message)),
    };
    Outcome::Reply(match request {
        Request::Ping => finish_ok(ok_builder().field("pong", true)),
        Request::Shutdown => {
            return Outcome::Shutdown(finish_ok(ok_builder().field("stopping", true)));
        }
        Request::Stats => stats(shared),
        Request::Submit(plan) => submit(plan, shared, job_tx, jobs, next_job),
        Request::Poll(id) => poll(id, shared, jobs),
        Request::Cancel(id) => match jobs.remove(&id) {
            None => error_line(
                ErrorCode::UnknownJob,
                &format!("job {id} is not held by this connection"),
            ),
            Some(job) => {
                if let Job::Running { cancelled, .. } = job {
                    cancelled.store(true, Ordering::SeqCst);
                }
                shared.jobs_cancelled.fetch_add(1, Ordering::SeqCst);
                finish_ok(
                    ok_builder()
                        .field("job", id as usize)
                        .field("cancelled", true),
                )
            }
        },
        Request::ShardSubmit(request) => shard_submit(request, shared, shard_jobs),
        Request::Halo(request) => match &shared.shard {
            None => error_line(
                ErrorCode::BadRequest,
                "this server runs no shard role; halo requires a worker (--shard K/N)",
            ),
            Some(role) => crate::halo::handle(
                request,
                &HaloEnv {
                    graph: &shared.graph,
                    partition: &role.partition,
                    shard: role.index,
                    shards: role.shards,
                    budget: shared.config.max_inflight.max(1),
                    gauge: &shared.halo_sessions,
                },
                halo_sessions,
            ),
        },
        Request::Boundary { job, from, max } => match shard_jobs.get(&job) {
            None => unknown_shard_job(&job),
            Some(entry) => {
                if let ShardOutcome::Failed(message) = entry.outcome() {
                    return Outcome::Reply(error_line(ErrorCode::Internal, &message));
                }
                let (records, pos, target) = entry.page(from, max.max(1));
                let records = Value::Arr(records.into_iter().map(Value::Str).collect());
                finish_ok(
                    ok_builder()
                        .field("job", job.as_str())
                        .field("from", from)
                        .field("records", records)
                        .field("pos", pos)
                        .field("target", target),
                )
            }
        },
        Request::ShardResult { job } => match shard_jobs.get(&job) {
            None => unknown_shard_job(&job),
            Some(entry) => match entry.outcome() {
                ShardOutcome::Failed(message) => error_line(ErrorCode::Internal, &message),
                ShardOutcome::Pending { pos, target } => finish_ok(
                    ok_builder()
                        .field("job", job.as_str())
                        .field("done", false)
                        .field("pos", pos)
                        .field("target", target),
                ),
                ShardOutcome::Done {
                    worlds,
                    hist,
                    intra,
                } => {
                    let counts = |values: Vec<u64>| {
                        Value::Arr(values.into_iter().map(|v| Value::Num(v as f64)).collect())
                    };
                    finish_ok(
                        ok_builder()
                            .field("job", job.as_str())
                            .field("done", true)
                            .field("worlds", worlds)
                            .field("hist", counts(hist))
                            .field("intra", counts(intra)),
                    )
                }
            },
        },
    })
}

fn unknown_shard_job(job: &str) -> String {
    error_line(
        ErrorCode::UnknownJob,
        &format!("shard job {job:?} is not held by this connection"),
    )
}

/// Renders the `stats` response: job and cache counters, queue depth,
/// per-executor busy flags, the live-connection gauge, and the shard role
/// (when the server runs as a worker).
fn stats(shared: &Arc<Shared>) -> String {
    let cache = shared.cache.lock().expect("cache poisoned").stats();
    let jobs_obj = ObjBuilder::new()
        .field(
            "submitted",
            shared.jobs_submitted.load(Ordering::SeqCst) as usize,
        )
        .field(
            "delivered",
            shared.jobs_delivered.load(Ordering::SeqCst) as usize,
        )
        .field(
            "cancelled",
            shared.jobs_cancelled.load(Ordering::SeqCst) as usize,
        )
        .build();
    let cache_obj = ObjBuilder::new()
        .field("hits", cache.hits as usize)
        .field("misses", cache.misses as usize)
        .field("insertions", cache.insertions as usize)
        .field("evictions", cache.evictions as usize)
        .field("entries", cache.entries)
        .field("bytes", cache.bytes)
        .build();
    let queue_obj = ObjBuilder::new()
        .field("depth", shared.queue_depth.load(Ordering::SeqCst))
        .field("capacity", shared.config.queue_capacity.max(1))
        .build();
    let executors = Value::Arr(
        shared
            .executor_busy
            .iter()
            .map(|busy| Value::Bool(busy.load(Ordering::SeqCst)))
            .collect(),
    );
    let mut builder = ok_builder()
        .field("graph", shared.graph_label())
        .field("jobs", jobs_obj)
        .field("cache", cache_obj)
        .field("queue", queue_obj)
        .field("executors", executors)
        .field("connections", shared.connections.load(Ordering::SeqCst));
    if let Some(role) = &shared.shard {
        let shard_obj = ObjBuilder::new()
            .field("shard", role.index)
            .field("shards", role.shards)
            .field("jobs", shared.shard_jobs.load(Ordering::SeqCst))
            .field("halo", shared.halo_sessions.load(Ordering::SeqCst))
            .build();
        builder = builder.field("shard", shard_obj);
    }
    if let Some(clock) = &shared.faults {
        builder = builder.field("faults", clock.fired());
    }
    finish_ok(builder)
}

/// Starts a shard sampling job (or extends a running one): validates the
/// request against the worker's role, enforces the per-connection job
/// budget, and spawns the sampler thread.
fn shard_submit(
    request: ShardJobRequest,
    shared: &Arc<Shared>,
    shard_jobs: &mut HashMap<String, ShardJob>,
) -> String {
    if shared.stopping() {
        return error_line(ErrorCode::ShuttingDown, "the server is shutting down");
    }
    let Some(role) = &shared.shard else {
        return error_line(
            ErrorCode::BadRequest,
            "this server runs no shard role; start it with a shard index to accept shard jobs",
        );
    };
    if request.shards != role.shards || request.shard != role.index {
        return error_line(
            ErrorCode::BadRequest,
            &format!(
                "this worker owns shard {}/{}, the request names shard {}/{}",
                role.index, role.shards, request.shard, request.shards
            ),
        );
    }
    if let Some(existing) = shard_jobs.get(&request.job) {
        // Re-submitting the same token is how a coordinator raises the world
        // target of an adaptive plan; any other parameter change is a
        // protocol violation (the replay identity must stay fixed).
        if !existing.matches(&request) {
            return error_line(
                ErrorCode::BadRequest,
                &format!(
                    "shard job {:?} is already running with different parameters; \
                     only the world target may change on resubmission",
                    request.job
                ),
            );
        }
        existing.raise_target(request.worlds);
        let (pos, target) = existing.progress();
        return finish_ok(
            ok_builder()
                .field("job", request.job.as_str())
                .field("accepted", true)
                .field("pos", pos)
                .field("target", target),
        );
    }
    let budget = shared.config.max_inflight.max(1);
    if shard_jobs.len() >= budget {
        return error_line(
            ErrorCode::OverBudget,
            &format!("connection budget of {budget} shard jobs reached"),
        );
    }
    let token = request.job.clone();
    let target = request.worlds;
    let job = ShardJob::spawn(
        Arc::clone(&shared.graph),
        Arc::clone(&role.partition),
        request,
    );
    shard_jobs.insert(token.clone(), job);
    shared.shard_jobs.fetch_add(1, Ordering::SeqCst);
    finish_ok(
        ok_builder()
            .field("job", token.as_str())
            .field("accepted", true)
            .field("pos", 0usize)
            .field("target", target),
    )
}

fn submit(
    mut plan: QueryPlan,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<ExecJob>,
    jobs: &mut HashMap<u64, Job>,
    next_job: &mut u64,
) -> String {
    if shared.stopping() {
        return error_line(ErrorCode::ShuttingDown, "the server is shutting down");
    }
    if jobs.len() >= shared.config.max_inflight.max(1) {
        return error_line(
            ErrorCode::OverBudget,
            &format!(
                "connection budget of {} in-flight jobs reached; poll or cancel first",
                shared.config.max_inflight.max(1)
            ),
        );
    }
    // Clamp *before* key computation so cache keys always name the thread
    // count that actually runs.
    plan.threads = plan.threads.clamp(1, shared.config.max_plan_threads.max(1));
    let keys: Vec<String> = (0..plan.queries.len())
        .map(|index| query_key(shared.fingerprint, &plan, index))
        .collect();
    let mut hits: Vec<Option<Result<QueryAnswer, ServiceError>>> = {
        let mut cache = shared.cache.lock().expect("cache poisoned");
        keys.iter().map(|key| cache.lookup(key).map(Ok)).collect()
    };
    // An adaptive batch's stopping point depends on the whole query mix
    // (the keys are mix-qualified), so a partial hit cannot be assembled
    // from a differently-mixed run: any miss re-runs the full plan.
    let adaptive = plan.precision.is_some();
    let mut misses: Vec<usize> = (0..plan.queries.len())
        .filter(|&index| hits[index].is_none())
        .collect();
    if adaptive && !misses.is_empty() {
        misses = (0..plan.queries.len()).collect();
        hits.iter_mut().for_each(|hit| *hit = None);
    }
    let id = *next_job;
    *next_job += 1;
    let cached = misses.is_empty();
    if cached {
        let answers: Vec<Result<QueryAnswer, ServiceError>> = hits
            .into_iter()
            .map(|hit| hit.expect("all queries hit"))
            .collect();
        let report = plan.report_for(&shared.graph_label(), &answers);
        jobs.insert(id, Job::Ready(report));
    } else {
        let exec_plan = QueryPlan {
            queries: misses
                .iter()
                .map(|&index| plan.queries[index].clone())
                .collect(),
            ..plan.clone()
        };
        let exec_keys: Vec<String> = misses.iter().map(|&index| keys[index].clone()).collect();
        let cancelled = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = mpsc::channel();
        let exec = ExecJob {
            plan: exec_plan,
            keys: exec_keys,
            cancelled: Arc::clone(&cancelled),
            done_tx,
        };
        match job_tx.try_send(exec) {
            Ok(()) => {
                shared.queue_depth.fetch_add(1, Ordering::SeqCst);
            }
            Err(TrySendError::Full(_)) => {
                return error_line(
                    ErrorCode::Overloaded,
                    &format!(
                        "submission queue of {} jobs is full; retry after polling",
                        shared.config.queue_capacity.max(1)
                    ),
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                return error_line(ErrorCode::ShuttingDown, "the server is shutting down");
            }
        }
        jobs.insert(
            id,
            Job::Running {
                plan,
                hits,
                misses,
                done_rx,
                cancelled,
            },
        );
    }
    shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
    finish_ok(
        ok_builder()
            .field("job", id as usize)
            .field("cached", cached),
    )
}

fn poll(id: u64, shared: &Arc<Shared>, jobs: &mut HashMap<u64, Job>) -> String {
    match jobs.get_mut(&id) {
        None => error_line(
            ErrorCode::UnknownJob,
            &format!("job {id} is not held by this connection"),
        ),
        Some(Job::Ready(_)) => {
            let Some(Job::Ready(report)) = jobs.remove(&id) else {
                unreachable!("entry checked above");
            };
            deliver(id, report, shared)
        }
        Some(Job::Running { done_rx, .. }) => match done_rx.try_recv() {
            Err(TryRecvError::Empty) => {
                finish_ok(ok_builder().field("job", id as usize).field("done", false))
            }
            Err(TryRecvError::Disconnected) => {
                jobs.remove(&id);
                if shared.stopping() {
                    error_line(ErrorCode::ShuttingDown, "the server is shutting down")
                } else {
                    error_line(ErrorCode::Internal, "the job's executor is gone")
                }
            }
            Ok(sub_answers) => {
                let Some(Job::Running {
                    plan,
                    mut hits,
                    misses,
                    ..
                }) = jobs.remove(&id)
                else {
                    unreachable!("entry checked above");
                };
                for (index, answer) in misses.into_iter().zip(sub_answers) {
                    hits[index] = Some(answer);
                }
                let answers: Vec<Result<QueryAnswer, ServiceError>> = hits
                    .into_iter()
                    .map(|hit| {
                        hit.unwrap_or_else(|| {
                            Err(ServiceError::Internal(
                                "executor returned too few answers".to_string(),
                            ))
                        })
                    })
                    .collect();
                let report = plan.report_for(&shared.graph_label(), &answers);
                deliver(id, report, shared)
            }
        },
    }
}

/// Renders a done-poll response; delivery is exactly-once, freeing the
/// job's in-flight slot.
fn deliver(id: u64, report: Value, shared: &Arc<Shared>) -> String {
    shared.jobs_delivered.fetch_add(1, Ordering::SeqCst);
    finish_ok(
        ok_builder()
            .field("job", id as usize)
            .field("done", true)
            .field("report", report),
    )
}
