//! A panic-free TCP query front-end for the uncertain-graph query service:
//! thread-per-connection, line-delimited JSON, with a deterministic result
//! cache, typed admission control and graceful shutdown.
//!
//! Start a server with [`serve`]; talk to it with [`LineClient`] (or any
//! newline-framed socket client).  Every request is **one line** of JSON,
//! every response is **one line** of JSON — no client input can panic a
//! worker, hang a ticket, or kill the connection.
//!
//! # Wire protocol
//!
//! Requests are JSON objects with a string `op` field.  Unknown ops,
//! unknown fields, malformed JSON and oversized lines (over
//! [`protocol::MAX_LINE_BYTES`]) are answered with the error envelope and
//! the connection stays up.
//!
//! | request | response on success |
//! |---------|---------------------|
//! | `{"op": "submit", "plan": {…}}` | `{"status": "ok", "job": N, "cached": bool}` |
//! | `{"op": "poll", "job": N}` | `{"status": "ok", "job": N, "done": false}` or `{"status": "ok", "job": N, "done": true, "report": {…}}` |
//! | `{"op": "cancel", "job": N}` | `{"status": "ok", "job": N, "cancelled": true}` |
//! | `{"op": "stats"}` | `{"status": "ok", "graph": …, "jobs": {…}, "cache": {…}, "queue": {…}, "executors": […], "connections": N}` (plus `"shard": {…}` on a worker) |
//! | `{"op": "ping"}` | `{"status": "ok", "pong": true}` |
//! | `{"op": "shutdown"}` | `{"status": "ok", "stopping": true}`, then sockets close |
//! | `{"op": "shard_submit", "job": "t", "shard": K, "shards": W, "worlds": N, "seed": "S", "mode": "skip"}` | `{"status": "ok", "job": "t", "accepted": true, "pos": P, "target": N}` (worker mode only) |
//! | `{"op": "boundary", "job": "t", "from": F, "max": M}` | `{"status": "ok", "job": "t", "from": F, "records": ["…", …], "pos": P, "target": N}` |
//! | `{"op": "shard_result", "job": "t"}` | `{"status": "ok", "job": "t", "done": false, "pos": P, "target": N}` or `{"status": "ok", "job": "t", "done": true, "worlds": N, "hist": […], "intra": […]}` |
//! | `{"op": "halo", "job": "t", "shard": K, "shards": W, "seed": "S", "mode": "skip", "kernel": {…}, "world": N, "phase": "feed", "values": ["gid:hex", …]}` | `{"status": "ok", "job": "t", "world": N, "fed": F}` (worker mode only) |
//! | `{"op": "halo", …, "phase": "step", "step": T, "acc": "hex", "values": […]}` | `{"status": "ok", "job": "t", "world": N, "step": T, ("acc": "hex",) "from": 0, "total": C, "values": […]}` |
//! | `{"op": "halo", …, "phase": "page", "from": F, "max": M}` | `{"status": "ok", "job": "t", "world": N, "from": F, "total": C, "values": […]}` |
//! | `{"op": "halo", …, "phase": "collect", "from": F, "max": M}` | `{"status": "ok", "job": "t", "world": N, "from": F, "total": C, "values": […]}` |
//!
//! The `plan` document is a [`ugs_service::QueryPlan`] **without** a
//! `graph` field (the server owns its graph): `worlds`, `threads`,
//! `shards`, `mode`, `seed`, an optional adaptive `precision` block, and
//! the `queries` array.  The `report` of a finished job is byte-identical
//! to what `QueryPlan::run_report` prints for the same plan against the
//! same graph, with the graph labelled `fingerprint:<hex>`.
//!
//! ## Worker mode (`shard_submit` / `boundary` / `shard_result`)
//!
//! A server started with [`ServerConfig::shard`]` = Some((k, w))` is a
//! **shard worker**: it builds the contiguous `w`-shard partition of its
//! graph and holds only shard `k`'s CSR state (plus the O(|E|) replay
//! table that keeps the sampled world stream identical across workers).
//! `shard_submit` starts a background sampling job under a client-chosen
//! string token: the worker replays worlds from the submitted batch
//! `seed` (a **decimal string** — JSON numbers here are f64 and cannot
//! carry every u64), recording one boundary message per world (component
//! count, present-cut labels, boundary component sizes) and folding each
//! world into its running aggregates.  `boundary` pages the per-world
//! records without blocking on sampling; `shard_result` reports progress
//! until the target is reached, then the cross-world aggregates.
//! Re-submitting the same token with a larger `worlds` raises the target
//! of a running job (how an adaptive coordinator extends by epochs); any
//! other parameter change is rejected — the replay identity is immutable.
//! Shard jobs are scoped to their connection and bounded by the same
//! [`ServerConfig::max_inflight`] budget; when the connection closes, its
//! sampler threads are stopped and joined.
//!
//! ## Ghost-halo exchange (`halo`)
//!
//! Neighbourhood queries (PageRank, clustering coefficients, the BFS core
//! of k-NN) cannot be answered from boundary records alone; a worker runs
//! them through connection-local **halo sessions** instead.  Every `halo`
//! line carries the full session identity — job token, shard role, replay
//! `seed`/`mode` (decimal-string seed, as above), and a `kernel` object
//! (`{"type": "pagerank", "damping": "<16 hex digits>"}` with the damping
//! factor as IEEE-754 bits, `{"type": "clustering"}`, or `{"type": "bfs",
//! "source": V}`) — so a freshly promoted standby rebuilds the session
//! from whatever line arrives first, replaying the shared world stream up
//! to the named `world`.  A world then runs as supersteps: `feed` installs
//! exchanged ghost ranks (`"gid:hex"` entries), `step T` runs one
//! superstep (PageRank threads the convergence accumulator `acc` through
//! shards and reports its boundary ranks; BFS absorbs routed `"gid:level"`
//! settlements and reports the newly settled vertices), `page` re-reads a
//! step report window idempotently, and `collect` pages the owned final
//! values (for clustering, `collect` triggers the one-shot halo
//! computation).  **`step 0` on the current world restarts its kernel
//! without resampling** — the coordinator's recovery move after a
//! mid-superstep worker loss.  All values cross the wire as f64 bit
//! patterns, so distributed results stay bit-identical to the monolithic
//! engine.  Sessions are plain connection-local data bounded by the same
//! [`ServerConfig::max_inflight`] budget and die with their connection.
//!
//! ## Coordinator failure model
//!
//! A distributed coordinator (the `ugs-dist` crate) arms read *and* write
//! timeouts on every worker connection, retries a failed exchange a
//! bounded number of times by reconnecting and resubmitting (the fresh
//! job deterministically resamples the identical stream), and treats a
//! worker whose `pos` stops advancing across a deadline as stale.  When
//! the retries are exhausted the plan degrades to the typed `worker_lost`
//! error — a query against a degraded fleet **never hangs**.  Shutting
//! the coordinator down drops every worker connection, which stops the
//! workers' sampler threads.
//!
//! ## Error envelope
//!
//! Every failure is one line of
//! `{"status": "error", "code": "<code>", "retryable": <bool>,
//! "message": "…"}` with `code` one
//! of `bad_request`, `unknown_op`, `plan`, `over_budget` (the connection's
//! [`ServerConfig::max_inflight`] budget), `overloaded` (the bounded
//! server-wide queue is full), `unknown_job`, `shutting_down`,
//! `worker_lost` (a distributed worker died mid-plan and bounded retries
//! ran out), `internal` — see [`protocol::ErrorCode`].  The `retryable`
//! flag ([`ErrorCode::retryable`]) marks the transient codes
//! (`worker_lost`, `overloaded`, `over_budget`) a client may usefully
//! retry after a backoff.  Job ids are
//! per-connection; a delivered or cancelled job's id answers
//! `unknown_job` afterwards.
//!
//! Request lines are read under a byte cap
//! ([`ServerConfig::max_line_bytes`]): an oversized line is drained —
//! never buffered whole — answered with `bad_request`, and the connection
//! stays alive.
//!
//! ## Result cache
//!
//! Answers are cached under their exact replay identity — graph
//! fingerprint, seed, worlds/threads/shards/mode, precision block and the
//! canonical query spec (adaptive plans additionally hash the whole query
//! mix) — under an LRU byte budget.  A cache hit is **bit-identical** to a
//! fresh run; see the [`cache`] module docs for the full key definition and
//! why fixed-budget answers may be reused across plans while adaptive
//! answers may not.
//!
//! # Example
//!
//! ```
//! use uncertain_graph::UncertainGraph;
//! use ugs_server::{serve, LineClient, ServerConfig};
//!
//! let graph = UncertainGraph::from_edges(3, [(0, 1, 0.9), (1, 2, 0.5)]).unwrap();
//! let server = serve(graph, ServerConfig::default()).unwrap();
//!
//! let mut client = LineClient::connect(server.addr()).unwrap();
//! let accepted = client
//!     .submit(r#"{"worlds": 50, "seed": 7, "queries": [{"type": "connectivity"}]}"#)
//!     .unwrap();
//! assert_eq!(accepted.get_str("status"), Some("ok"));
//! let job = accepted.get_usize("job").unwrap() as u64;
//!
//! let report = client.wait_for_report(job).unwrap();
//! let results = report.get("results").unwrap().as_array().unwrap();
//! assert_eq!(results[0].get_str("status"), Some("ok"));
//!
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fault;
mod halo;
mod line;
pub mod protocol;
pub mod server;
mod shard;

pub use cache::{query_key, CacheStats, ResultCache};
pub use client::LineClient;
pub use fault::{FaultClock, FaultEvent, FaultKind, FaultPlan};
pub use protocol::{ErrorCode, Request};
pub use server::{serve, ServerConfig, ServerHandle};
