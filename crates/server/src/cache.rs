//! The deterministic result cache: answers keyed by the exact replay
//! identity, evicted LRU under a byte budget.
//!
//! ## Cache-key definition
//!
//! Replay determinism (one seed draw per micro-batch, thread-count-invariant
//! world streams) means a query's [`QueryAnswer`] is a pure function of:
//!
//! * the **graph fingerprint**
//!   ([`UncertainGraph::fingerprint`](uncertain_graph::UncertainGraph::fingerprint)): vertex
//!   count, edge endpoints and the exact probability bits;
//! * the plan's **seed**, **worlds**, **threads**, **shards**, **mode** and
//!   rendered **precision** block (threads and mode are part of the key
//!   because float-valued observers merge partials in worker order — their
//!   answers are deterministic *per* thread count, not across counts);
//! * the canonical rendering of the **`QuerySpec`** itself;
//! * for **adaptive** plans only: a hash of the whole query mix.  The
//!   stopping rule pools the tracked statistics of *every* query in the
//!   micro-batch, so `worlds_used` — and with it every answer — depends on
//!   the mix; a fixed-budget answer depends only on its own spec, which is
//!   what makes cross-plan reuse sound there.
//!
//! Two lookups with equal keys therefore return bit-identical answers, and
//! a cache hit is indistinguishable from a fresh run — asserted end-to-end
//! by the loopback integration suite.

use std::collections::HashMap;

use ugs_service::{QueryAnswer, QueryPlan};

/// FNV-1a over a byte string (the same construction as
/// [`UncertainGraph::fingerprint`](uncertain_graph::UncertainGraph::fingerprint),
/// here for key-sized inputs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds the cache key of query `index` of `plan` against the graph with
/// the given fingerprint; see the [module docs](self) for why each
/// component is present.
pub fn query_key(fingerprint: u64, plan: &QueryPlan, index: usize) -> String {
    let precision = plan
        .precision
        .as_ref()
        .map(|p| ugs_service::precision_to_json(p).render())
        .unwrap_or_default();
    // Adaptive plans stop as a function of the whole tracked mix: qualify
    // the key with the rendered query list so only an identical mix hits.
    let mix = if plan.precision.is_some() {
        let mut rendered = String::new();
        for spec in &plan.queries {
            rendered.push_str(&spec.to_json().render());
            rendered.push('\n');
        }
        format!("|mix:{:016x}", fnv1a(rendered.as_bytes()))
    } else {
        String::new()
    };
    format!(
        "{fingerprint:016x}|s{seed}|w{worlds}|t{threads}|sh{shards}|{mode}|{precision}{mix}|{spec}",
        seed = plan.seed,
        worlds = plan.worlds,
        threads = plan.threads,
        shards = plan.shards,
        mode = ugs_service::mode_name(plan.mode),
        spec = plan.queries[index].to_json().render(),
    )
}

/// Counters the `stats` op reports for the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Estimated bytes held by live entries.
    pub bytes: usize,
}

struct Entry {
    answer: QueryAnswer,
    bytes: usize,
    last_used: u64,
}

/// An LRU result cache with a byte budget; `capacity_bytes = 0` disables
/// caching (every lookup misses, every insert is dropped).
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<String, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity_bytes` of estimated entry
    /// bytes.
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            capacity: capacity_bytes,
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Looks up a key, bumping its recency on a hit.  The answer comes back
    /// cloned — cached [`QueryAnswer`]s are immutable once inserted, so the
    /// clone is bit-identical to what the original execution produced.
    pub fn lookup(&mut self, key: &str) -> Option<QueryAnswer> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.answer.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an answer, evicting least-recently-used entries until the
    /// byte budget holds.  An answer larger than the whole budget is
    /// silently skipped (typed stats still count the insertion attempt as
    /// an eviction of itself, keeping `bytes <= capacity` an invariant).
    pub fn insert(&mut self, key: String, answer: QueryAnswer) {
        let bytes = key.len() + answer.result.to_json().render().len() + 64;
        if bytes > self.capacity {
            self.evictions += 1;
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.capacity {
            // O(n) LRU scan: the cache holds at most a few thousand entries
            // under realistic budgets, and eviction is off the hot path.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let evicted = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= evicted.bytes;
            self.evictions += 1;
        }
        self.bytes += bytes;
        self.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                answer,
                bytes,
                last_used: self.tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugs_service::QueryResult;

    fn answer(tag: f64) -> QueryAnswer {
        QueryAnswer {
            result: QueryResult::EdgeFrequency(vec![tag]),
            worlds_used: 10,
            half_width: None,
        }
    }

    #[test]
    fn lookups_hit_after_insert_and_clone_bit_identically() {
        let mut cache = ResultCache::new(4096);
        assert_eq!(cache.lookup("k"), None);
        cache.insert("k".to_string(), answer(0.25));
        let hit = cache.lookup("k").unwrap();
        assert_eq!(hit, answer(0.25));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn the_byte_budget_evicts_least_recently_used_first() {
        let mut cache = ResultCache::new(400);
        cache.insert("a".to_string(), answer(0.1));
        cache.insert("b".to_string(), answer(0.2));
        cache.insert("c".to_string(), answer(0.3));
        // Touch "a" so "b" is the LRU victim when "d" overflows the budget.
        assert!(cache.lookup("a").is_some());
        cache.insert("d".to_string(), answer(0.4));
        assert!(cache.stats().bytes <= 400);
        assert!(cache.lookup("a").is_some(), "recently used survives");
        assert_eq!(cache.lookup("b"), None, "LRU entry evicted");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn a_zero_budget_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert("k".to_string(), answer(0.5));
        assert_eq!(cache.lookup("k"), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn keys_separate_plans_by_their_replay_identity() {
        let plan = |seed: u64, worlds: usize, precision: bool| {
            let precision = if precision {
                r#", "precision": {"epsilon": 0.05}"#
            } else {
                ""
            };
            QueryPlan::parse_str(&format!(
                r#"{{"worlds": {worlds}, "seed": {seed}{precision},
                    "queries": [{{"type": "connectivity"}}, {{"type": "edge_frequency"}}]}}"#
            ))
            .unwrap()
        };
        let base = query_key(1, &plan(7, 100, false), 0);
        assert_eq!(base, query_key(1, &plan(7, 100, false), 0), "stable");
        assert_ne!(base, query_key(2, &plan(7, 100, false), 0), "fingerprint");
        assert_ne!(base, query_key(1, &plan(8, 100, false), 0), "seed");
        assert_ne!(base, query_key(1, &plan(7, 101, false), 0), "worlds");
        assert_ne!(base, query_key(1, &plan(7, 100, false), 1), "spec");
        assert_ne!(base, query_key(1, &plan(7, 100, true), 0), "precision");

        // Fixed-budget keys ignore the rest of the mix (cross-plan reuse)…
        let solo = QueryPlan::parse_str(
            r#"{"worlds": 100, "seed": 7, "queries": [{"type": "connectivity"}]}"#,
        )
        .unwrap();
        assert_eq!(base, query_key(1, &solo, 0));
        // …adaptive keys do not: the stopping rule pools over the mix.
        let solo_adaptive = QueryPlan::parse_str(
            r#"{"worlds": 100, "seed": 7, "precision": {"epsilon": 0.05},
                "queries": [{"type": "connectivity"}]}"#,
        )
        .unwrap();
        assert_ne!(
            query_key(1, &plan(7, 100, true), 0),
            query_key(1, &solo_adaptive, 0)
        );
    }
}
