//! Bounded line reads: the replacement for bare `read_line` into an
//! unbounded `String`.  A peer that streams without ever sending a newline
//! can no longer balloon a connection thread's buffer — the read stops at
//! the byte cap, the oversized line is drained and reported, and the
//! connection stays usable.

use std::io::{self, BufRead};

/// What one bounded line read observed.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum LineRead {
    /// The peer closed the stream before any byte of a new line.
    Eof,
    /// One complete line (newline stripped, lossily decoded).
    Line(String),
    /// The line exceeded the cap.  Its bytes up to and including the
    /// terminating newline have been consumed, so the next read starts on
    /// the next line — the caller answers a typed error and keeps going.
    Overflow,
}

/// Reads one `\n`-terminated line of at most `cap` bytes (excluding the
/// newline) from `reader`.  I/O errors (including read timeouts) pass
/// through untouched.
pub(crate) fn read_limited_line(reader: &mut impl BufRead, cap: usize) -> io::Result<LineRead> {
    let mut buffer: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF mid-line still hands back what arrived, matching
            // `read_line`; EOF before any byte is a clean close.
            return Ok(if buffer.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buffer).into_owned())
            });
        }
        match chunk.iter().position(|&byte| byte == b'\n') {
            Some(newline) => {
                if buffer.len() + newline > cap {
                    reader.consume(newline + 1);
                    return Ok(LineRead::Overflow);
                }
                buffer.extend_from_slice(&chunk[..newline]);
                reader.consume(newline + 1);
                return Ok(LineRead::Line(
                    String::from_utf8_lossy(&buffer).into_owned(),
                ));
            }
            None => {
                let taken = chunk.len();
                if buffer.len() + taken > cap {
                    // Over the cap with no newline yet: drain to the next
                    // newline without buffering, then report the overflow.
                    reader.consume(taken);
                    drain_to_newline(reader)?;
                    return Ok(LineRead::Overflow);
                }
                buffer.extend_from_slice(chunk);
                reader.consume(taken);
            }
        }
    }
}

/// Consumes bytes until a newline has been eaten (or EOF).
fn drain_to_newline(reader: &mut impl BufRead) -> io::Result<()> {
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&byte| byte == b'\n') {
            Some(newline) => {
                reader.consume(newline + 1);
                return Ok(());
            }
            None => {
                let taken = chunk.len();
                reader.consume(taken);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(input: &[u8], cap: usize) -> Vec<LineRead> {
        let mut reader = BufReader::with_capacity(4, input);
        let mut out = Vec::new();
        loop {
            let read = read_limited_line(&mut reader, cap).unwrap();
            let done = read == LineRead::Eof;
            out.push(read);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn short_lines_read_back_exactly() {
        assert_eq!(
            read_all(b"alpha\nbeta\n", 16),
            vec![
                LineRead::Line("alpha".to_string()),
                LineRead::Line("beta".to_string()),
                LineRead::Eof,
            ]
        );
        // A line of exactly `cap` bytes is allowed.
        assert_eq!(
            read_all(b"12345678\n", 8),
            vec![LineRead::Line("12345678".to_string()), LineRead::Eof]
        );
    }

    #[test]
    fn oversized_lines_overflow_and_the_stream_recovers() {
        // The oversized line is consumed through its newline; the next line
        // reads normally — the connection-keeping guarantee.
        assert_eq!(
            read_all(b"123456789\nok\n", 8),
            vec![
                LineRead::Overflow,
                LineRead::Line("ok".to_string()),
                LineRead::Eof,
            ]
        );
        // Overflow without any newline drains to EOF.
        assert_eq!(
            read_all(b"123456789123", 8),
            vec![LineRead::Overflow, LineRead::Eof]
        );
    }

    #[test]
    fn eof_mid_line_hands_back_the_partial_line() {
        assert_eq!(
            read_all(b"partial", 16),
            vec![LineRead::Line("partial".to_string()), LineRead::Eof]
        );
    }
}
