//! Seeded, deterministic fault injection for the wire path.
//!
//! A [`FaultPlan`] names *which* wire exchanges misbehave and *how*: a set
//! of one-shot [`FaultEvent`]s at scheduled operation counts (derived from
//! a seed, so every chaos run is reproducible and shrinkable), plus an
//! optional **wedge** — a terminal fault that fires on every exchange from
//! a given count onward, the deterministic in-crate stand-in for a worker
//! that dies mid-plan and never comes back.
//!
//! The plan is pure data; a [`FaultClock`] turns it into runtime behaviour
//! by counting operations.  Both ends of the wire consume the same types:
//!
//! * **worker side** — [`crate::ServerConfig::fault_plan`] arms a clock
//!   that every connection of the server ticks once per request line
//!   (server-global, so a reconnecting coordinator cannot reset the
//!   schedule and re-fire the same event forever);
//! * **coordinator side** — `ugs-dist` arms a clock over its own request
//!   path, ticking once per worker exchange.
//!
//! Fault injection is a **test/bench surface**: the CLI gates its
//! `--fault-plan` flags behind the `UGS_FAULTS=1` environment variable.

use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How one faulted exchange misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the exchange: the request is read (or sent) but no response
    /// ever arrives — the peer's read timeout is what surfaces it.
    Drop,
    /// Answer (or send), but only after sleeping the plan's
    /// [`FaultPlan::delay`].
    Delay,
    /// Close the connection instead of answering.
    Disconnect,
    /// Answer with a garbled, unparseable line.
    Garble,
}

impl FaultKind {
    /// The spelling used by [`FaultPlan::parse`] spec strings.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Disconnect => "disconnect",
            FaultKind::Garble => "garble",
        }
    }

    fn parse(text: &str) -> Option<FaultKind> {
        match text {
            "drop" => Some(FaultKind::Drop),
            "delay" => Some(FaultKind::Delay),
            "disconnect" => Some(FaultKind::Disconnect),
            "garble" => Some(FaultKind::Garble),
            _ => None,
        }
    }

    /// All kinds, in the order the seeded schedule draws from.
    const ALL: [FaultKind; 4] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Disconnect,
        FaultKind::Garble,
    ];
}

/// One scheduled fault: the zero-based operation count it fires at, and how
/// that exchange misbehaves.  Events are **one-shot** — the clock fires each
/// at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based index of the wire exchange this event hits.
    pub at_op: usize,
    /// How the exchange misbehaves.
    pub kind: FaultKind,
}

/// A deterministic schedule of wire faults; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// One-shot events, fired by operation count.
    pub events: Vec<FaultEvent>,
    /// A terminal fault: from `wedge.at_op` onward **every** exchange
    /// misbehaves with `wedge.kind` — the stand-in for a dead worker.
    pub wedge: Option<FaultEvent>,
    /// Sleep applied by [`FaultKind::Delay`] faults.
    pub delay: Duration,
}

impl FaultPlan {
    /// Derives `count` one-shot events at distinct operation counts in
    /// `0..horizon` from `seed` — the same seed always yields the same
    /// schedule, so a failing chaos run reproduces exactly.  Kinds are
    /// drawn uniformly over all four.
    pub fn seeded(seed: u64, count: usize, horizon: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let count = count.min(horizon);
        let mut ops: Vec<usize> = Vec::with_capacity(count);
        while ops.len() < count {
            let op = rng.gen_range(0..horizon.max(1));
            if !ops.contains(&op) {
                ops.push(op);
            }
        }
        ops.sort_unstable();
        let events = ops
            .into_iter()
            .map(|at_op| FaultEvent {
                at_op,
                kind: FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())],
            })
            .collect();
        FaultPlan {
            events,
            wedge: None,
            delay: Duration::from_millis(10),
        }
    }

    /// A plan whose only behaviour is the terminal wedge: every exchange
    /// from `at_op` onward faults with `kind`.
    pub fn wedge_after(at_op: usize, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            events: Vec::new(),
            wedge: Some(FaultEvent { at_op, kind }),
            delay: Duration::from_millis(10),
        }
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.wedge.is_none()
    }

    /// Parses a `key=value` comma-separated spec string, the `--fault-plan`
    /// CLI surface.  Keys:
    ///
    /// * `seed=N`, `count=N`, `horizon=N` — the [`FaultPlan::seeded`]
    ///   schedule (`count` defaults to 1, `horizon` to 64);
    /// * `kind=drop|delay|disconnect|garble` — force every seeded event to
    ///   one kind;
    /// * `wedge=N` — wedge from op `N` on (kind from `kind=`, default
    ///   `disconnect`);
    /// * `at=N` — one explicit event at op `N` (kind from `kind=`, default
    ///   `disconnect`);
    /// * `delay-ms=N` — the sleep of `delay` faults.
    ///
    /// `seed=3,count=2,horizon=40` and `wedge=8,kind=drop` are typical
    /// specs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed: Option<u64> = None;
        let mut count = 1usize;
        let mut horizon = 64usize;
        let mut kind: Option<FaultKind> = None;
        let mut wedge_at: Option<usize> = None;
        let mut at: Option<usize> = None;
        let mut delay = Duration::from_millis(10);
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let int = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec {what}={value:?} is not an integer"))
            };
            match key {
                "seed" => seed = Some(int("seed")?),
                "count" => count = int("count")? as usize,
                "horizon" => horizon = int("horizon")? as usize,
                "wedge" => wedge_at = Some(int("wedge")? as usize),
                "at" => at = Some(int("at")? as usize),
                "delay-ms" => delay = Duration::from_millis(int("delay-ms")?),
                "kind" => {
                    kind = Some(FaultKind::parse(value).ok_or_else(|| {
                        format!(
                            "unknown fault kind {value:?}; expected drop|delay|disconnect|garble"
                        )
                    })?)
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        let mut plan = match seed {
            Some(seed) => FaultPlan::seeded(seed, count, horizon),
            None => FaultPlan::default(),
        };
        if let Some(forced) = kind {
            for event in &mut plan.events {
                event.kind = forced;
            }
        }
        if let Some(at_op) = at {
            plan.events.push(FaultEvent {
                at_op,
                kind: kind.unwrap_or(FaultKind::Disconnect),
            });
            plan.events.sort_unstable_by_key(|event| event.at_op);
        }
        if let Some(at_op) = wedge_at {
            plan.wedge = Some(FaultEvent {
                at_op,
                kind: kind.unwrap_or(FaultKind::Disconnect),
            });
        }
        plan.delay = delay;
        if plan.is_empty() {
            return Err(format!(
                "fault spec {spec:?} schedules nothing; give seed=, at= or wedge="
            ));
        }
        Ok(plan)
    }
}

/// Runtime state of one armed [`FaultPlan`]: a monotone operation counter
/// plus a cursor over the one-shot events.  Shared (behind a mutex) by
/// every connection of a server, so reconnects cannot rewind the schedule.
#[derive(Debug)]
pub struct FaultClock {
    plan: FaultPlan,
    state: Mutex<ClockState>,
}

#[derive(Debug)]
struct ClockState {
    op: usize,
    cursor: usize,
    fired: usize,
}

impl FaultClock {
    /// Arms a plan; events fire in `at_op` order as operations tick.
    pub fn new(mut plan: FaultPlan) -> FaultClock {
        plan.events.sort_unstable_by_key(|event| event.at_op);
        FaultClock {
            plan,
            state: Mutex::new(ClockState {
                op: 0,
                cursor: 0,
                fired: 0,
            }),
        }
    }

    /// Counts one wire exchange; `Some(kind)` means this exchange must
    /// misbehave.  The wedge dominates one-shot events.
    pub fn next(&self) -> Option<FaultKind> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let op = state.op;
        state.op += 1;
        // Advance the cursor past any events this op skipped over (a wedge
        // can shadow them); only an exact match fires.
        while state.cursor < self.plan.events.len() && self.plan.events[state.cursor].at_op < op {
            state.cursor += 1;
        }
        if let Some(wedge) = self.plan.wedge {
            if op >= wedge.at_op {
                state.fired += 1;
                return Some(wedge.kind);
            }
        }
        if state.cursor < self.plan.events.len() && self.plan.events[state.cursor].at_op == op {
            state.cursor += 1;
            state.fired += 1;
            return Some(self.plan.events[state.cursor - 1].kind);
        }
        None
    }

    /// The sleep a [`FaultKind::Delay`] verdict must apply.
    pub fn delay(&self) -> Duration {
        self.plan.delay
    }

    /// How many faults have fired so far (the `faults` stats gauge).
    pub fn fired(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded(7, 5, 100);
        let b = FaultPlan::seeded(7, 5, 100);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 5);
        let ops: Vec<usize> = a.events.iter().map(|e| e.at_op).collect();
        let mut deduped = ops.clone();
        deduped.dedup();
        assert_eq!(ops, deduped, "distinct, sorted op counts");
        assert!(ops.iter().all(|&op| op < 100));
        assert_ne!(a, FaultPlan::seeded(8, 5, 100));
    }

    #[test]
    fn the_clock_fires_events_once_and_wedges_forever() {
        let mut plan = FaultPlan::wedge_after(4, FaultKind::Drop);
        plan.events = vec![
            FaultEvent {
                at_op: 1,
                kind: FaultKind::Garble,
            },
            FaultEvent {
                at_op: 5,
                kind: FaultKind::Delay,
            },
        ];
        let clock = FaultClock::new(plan);
        let verdicts: Vec<Option<FaultKind>> = (0..8).map(|_| clock.next()).collect();
        assert_eq!(
            verdicts,
            vec![
                None,
                Some(FaultKind::Garble),
                None,
                None,
                Some(FaultKind::Drop),
                Some(FaultKind::Drop), // the wedge shadows the op-5 event
                Some(FaultKind::Drop),
                Some(FaultKind::Drop),
            ]
        );
        assert_eq!(clock.fired(), 5);
    }

    #[test]
    fn spec_strings_round_trip_the_knobs() {
        let seeded = FaultPlan::parse("seed=3,count=2,horizon=40").unwrap();
        assert_eq!(seeded.events.len(), 2);
        let forced = FaultPlan::parse("seed=3,count=2,horizon=40,kind=drop").unwrap();
        assert!(forced.events.iter().all(|e| e.kind == FaultKind::Drop));
        let wedge = FaultPlan::parse("wedge=8,kind=drop,delay-ms=5").unwrap();
        assert_eq!(
            wedge.wedge,
            Some(FaultEvent {
                at_op: 8,
                kind: FaultKind::Drop,
            })
        );
        assert_eq!(wedge.delay, Duration::from_millis(5));
        let single = FaultPlan::parse("at=12").unwrap();
        assert_eq!(
            single.events,
            vec![FaultEvent {
                at_op: 12,
                kind: FaultKind::Disconnect,
            }]
        );
        assert!(
            FaultPlan::parse("").is_err(),
            "empty spec schedules nothing"
        );
        assert!(FaultPlan::parse("kind=warp").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
    }
}
