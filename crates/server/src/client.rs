//! A minimal line-protocol client: one request line out, one response line
//! back.  The integration suite, the CLI's `request` subcommand and the
//! benches all speak through this.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use minijson::Value;

/// A blocking line-delimited JSON client over one TCP connection.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<LineClient> {
        let writer = TcpStream::connect(addr)?;
        // Request/response lines are tiny; Nagle + delayed ACK would add
        // tens of milliseconds per round-trip.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(LineClient { reader, writer })
    }

    /// Arms a read timeout, so a test can assert "the server answered (or
    /// closed) within the deadline" instead of hanging on a regression.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Arms a write timeout; a distributed coordinator arms both directions
    /// so a wedged worker surfaces as a typed error instead of a hang.
    pub fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_write_timeout(timeout)
    }

    /// Sends one raw line (no trailing newline needed) and reads back one
    /// raw response line.  `Ok(None)` means the server closed the
    /// connection (EOF) — distinct from an error, because graceful shutdown
    /// is *supposed* to close sockets.
    pub fn request_raw(&mut self, line: &str) -> io::Result<Option<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends one request and parses the response line into a
    /// [`Value`]; EOF and unparseable responses surface as `io::Error`.
    pub fn request(&mut self, line: &str) -> io::Result<Value> {
        let response = self.request_raw(line)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Value::parse(&response)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
    }

    /// Reads one line without sending anything (used to observe the EOF a
    /// graceful shutdown delivers).  `Ok(None)` is EOF.
    pub fn read_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => Ok(Some(line.trim_end().to_string())),
        }
    }

    /// Submits a plan document (the inner `{"worlds": …, "queries": […]}`
    /// object as a JSON string) and returns the parsed response.
    pub fn submit(&mut self, plan_json: &str) -> io::Result<Value> {
        self.request(&format!(r#"{{"op": "submit", "plan": {plan_json}}}"#))
    }

    /// Polls a job once.
    pub fn poll(&mut self, job: u64) -> io::Result<Value> {
        self.request(&format!(r#"{{"op": "poll", "job": {job}}}"#))
    }

    /// Cancels a job.
    pub fn cancel(&mut self, job: u64) -> io::Result<Value> {
        self.request(&format!(r#"{{"op": "cancel", "job": {job}}}"#))
    }

    /// Polls `job` until its report arrives, sleeping briefly between
    /// probes; returns the `report` field of the final response.  Errors on
    /// any non-ok response.
    pub fn wait_for_report(&mut self, job: u64) -> io::Result<Value> {
        loop {
            let response = self.poll(job)?;
            if response.get_str("status") != Some("ok") {
                return Err(io::Error::other(response.render()));
            }
            if response.get("done").and_then(Value::as_bool) == Some(true) {
                let report = response.get("report").cloned().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "done poll without a report")
                })?;
                return Ok(report);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
