//! A minimal line-protocol client: one request line out, one response line
//! back.  The integration suite, the CLI's `request` subcommand and the
//! benches all speak through this.

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use minijson::Value;

use crate::line::{read_limited_line, LineRead};

/// Byte cap on one response line a [`LineClient`] will buffer.  Far larger
/// than the server's request cap: a report carrying a frequency array over
/// hundreds of thousands of edges is legitimately megabytes.
pub const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// A blocking line-delimited JSON client over one TCP connection.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_line_bytes: usize,
}

impl LineClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<LineClient> {
        LineClient::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on the connect itself — a routable-but-dead
    /// host fails within `timeout` instead of the OS's multi-minute SYN
    /// retry budget.  `addr` must resolve to at least one socket address;
    /// each is tried in turn.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<LineClient> {
        let mut last = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return LineClient::from_stream(stream),
                Err(error) => last = Some(error),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn from_stream(writer: TcpStream) -> io::Result<LineClient> {
        // Request/response lines are tiny; Nagle + delayed ACK would add
        // tens of milliseconds per round-trip.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(LineClient {
            reader,
            writer,
            max_line_bytes: MAX_RESPONSE_BYTES,
        })
    }

    /// Lowers (or raises) the response-line byte cap; an over-long response
    /// surfaces as an `InvalidData` error instead of unbounded buffering.
    pub fn set_max_line_bytes(&mut self, cap: usize) {
        self.max_line_bytes = cap.max(1);
    }

    /// Arms a read timeout, so a test can assert "the server answered (or
    /// closed) within the deadline" instead of hanging on a regression.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Arms a write timeout; a distributed coordinator arms both directions
    /// so a wedged worker surfaces as a typed error instead of a hang.
    pub fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_write_timeout(timeout)
    }

    /// Sends one raw line (no trailing newline needed) and reads back one
    /// raw response line.  `Ok(None)` means the server closed the
    /// connection (EOF) — distinct from an error, because graceful shutdown
    /// is *supposed* to close sockets.
    pub fn request_raw(&mut self, line: &str) -> io::Result<Option<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends one request and parses the response line into a
    /// [`Value`]; EOF and unparseable responses surface as `io::Error`.
    pub fn request(&mut self, line: &str) -> io::Result<Value> {
        let response = self.request_raw(line)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Value::parse(&response)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
    }

    /// Reads one line without sending anything (used to observe the EOF a
    /// graceful shutdown delivers).  `Ok(None)` is EOF; a response beyond
    /// the byte cap is an `InvalidData` error.
    pub fn read_line(&mut self) -> io::Result<Option<String>> {
        match read_limited_line(&mut self.reader, self.max_line_bytes)? {
            LineRead::Eof => Ok(None),
            LineRead::Line(line) => Ok(Some(line.trim_end().to_string())),
            LineRead::Overflow => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response line exceeds {} bytes", self.max_line_bytes),
            )),
        }
    }

    /// Submits a plan document (the inner `{"worlds": …, "queries": […]}`
    /// object as a JSON string) and returns the parsed response.
    pub fn submit(&mut self, plan_json: &str) -> io::Result<Value> {
        self.request(&format!(r#"{{"op": "submit", "plan": {plan_json}}}"#))
    }

    /// Polls a job once.
    pub fn poll(&mut self, job: u64) -> io::Result<Value> {
        self.request(&format!(r#"{{"op": "poll", "job": {job}}}"#))
    }

    /// Cancels a job.
    pub fn cancel(&mut self, job: u64) -> io::Result<Value> {
        self.request(&format!(r#"{{"op": "cancel", "job": {job}}}"#))
    }

    /// Polls `job` until its report arrives, sleeping briefly between
    /// probes; returns the `report` field of the final response.  Errors on
    /// any non-ok response.
    pub fn wait_for_report(&mut self, job: u64) -> io::Result<Value> {
        loop {
            let response = self.poll(job)?;
            if response.get_str("status") != Some("ok") {
                return Err(io::Error::other(response.render()));
            }
            if response.get("done").and_then(Value::as_bool) == Some(true) {
                let report = response.get("report").cloned().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "done poll without a report")
                })?;
                return Ok(report);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
