//! Worker-side shard sampling jobs: the state behind the `shard_submit` /
//! `boundary` / `shard_result` ops of a server running with a shard role.
//!
//! A job owns one background sampler thread.  The thread builds a
//! single-shard [`ShardedWorldEngine`] (only the owned shard's CSR template
//! is materialised), replays the shared world stream from the submitted
//! batch seed, and appends one encoded
//! [`ShardWorldRecord`](ugs_queries::ShardWorldRecord) per world while
//! folding the world into the job's running aggregates (degree histogram,
//! per-local-edge presence counts).  Readers never block on sampling:
//! `boundary` pages whatever records exist, `shard_result` reports progress
//! until the target is reached.
//!
//! Job state lives and dies with the connection that submitted it — a
//! coordinator that loses a worker reconnects and resubmits, and the fresh
//! job deterministically resamples the identical stream from world 0.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_queries::{accumulate_shard_aggregates, extract_shard_record, ShardedWorldEngine};
use uncertain_graph::{GraphPartition, UncertainGraph};

use crate::protocol::ShardJobRequest;

/// Mutable job state shared between the sampler thread and the connection
/// handler.
struct JobState {
    /// Absolute world target; raised (never lowered) by resubmission.
    target: usize,
    /// Worlds fully sampled and recorded so far.
    pos: usize,
    /// Encoded boundary record per world, in world order.
    records: Vec<String>,
    /// Running degree histogram (`hist[d]` = vertex-world observations).
    hist: Vec<u64>,
    /// Running per-local-edge presence counts.
    intra: Vec<u64>,
    /// Set by [`ShardJob::drop`]; tells the sampler thread to exit.
    stopped: bool,
    /// Set if the sampler thread died; surfaced as a typed error.
    failed: Option<String>,
}

/// What a `shard_result` read observes.
pub(crate) enum ShardOutcome {
    /// The sampler thread died; the message explains how.
    Failed(String),
    /// Still sampling: `pos` of `target` worlds done.
    Pending {
        /// Worlds sampled so far.
        pos: usize,
        /// Current absolute target.
        target: usize,
    },
    /// Every targeted world is sampled; the cross-world aggregates.
    Done {
        /// Worlds folded into the aggregates.
        worlds: usize,
        /// Degree histogram (`hist[d]` = vertex-world observations).
        hist: Vec<u64>,
        /// Per-local-edge presence counts.
        intra: Vec<u64>,
    },
}

/// One running shard sampling job: parameters, shared state, and the
/// sampler thread handle.  Dropping the job stops and joins the thread.
pub(crate) struct ShardJob {
    request: ShardJobRequest,
    state: Arc<(Mutex<JobState>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

/// Locks a job mutex without cascading a sampler panic into the connection
/// thread: a poisoned guard is recovered, not propagated.
fn lock_state(lock: &Mutex<JobState>) -> MutexGuard<'_, JobState> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl ShardJob {
    /// Starts the sampler thread for `request` over the worker's graph and
    /// partition.  The caller has already validated the request against the
    /// worker's shard role.
    pub(crate) fn spawn(
        graph: Arc<UncertainGraph>,
        partition: Arc<GraphPartition>,
        request: ShardJobRequest,
    ) -> Self {
        let local_edges = partition.shard(request.shard).num_edges();
        let state = Arc::new((
            Mutex::new(JobState {
                target: request.worlds,
                pos: 0,
                records: Vec::new(),
                hist: Vec::new(),
                intra: vec![0; local_edges],
                stopped: false,
                failed: None,
            }),
            Condvar::new(),
        ));
        let thread_state = Arc::clone(&state);
        let shard = request.shard;
        let seed = request.seed;
        let mode = request.mode;
        let handle = std::thread::spawn(move || {
            let (lock, signal) = &*thread_state;
            let run = catch_unwind(AssertUnwindSafe(|| {
                let engine =
                    ShardedWorldEngine::for_shard(&graph, &partition, shard).with_method(mode);
                let mut scratch = engine.make_shard_scratch(shard);
                let mut rng = SmallRng::seed_from_u64(seed);
                loop {
                    {
                        let mut guard = lock_state(lock);
                        while !guard.stopped && guard.pos >= guard.target {
                            guard = signal
                                .wait(guard)
                                .unwrap_or_else(|poison| poison.into_inner());
                        }
                        if guard.stopped {
                            return;
                        }
                    }
                    // The expensive part runs unlocked; the fold below is a
                    // short critical section.
                    engine.sample_shard_world(&mut rng, &mut scratch);
                    let record = extract_shard_record(&partition, &scratch).encode();
                    let mut guard = lock_state(lock);
                    if guard.stopped {
                        return;
                    }
                    let state = &mut *guard;
                    accumulate_shard_aggregates(
                        &partition,
                        &scratch,
                        &mut state.hist,
                        &mut state.intra,
                    );
                    state.records.push(record);
                    state.pos += 1;
                }
            }));
            if run.is_err() {
                lock_state(lock).failed =
                    Some("the shard sampler thread panicked; resubmit the job".to_string());
            }
        });
        ShardJob {
            request,
            state,
            handle: Some(handle),
        }
    }

    /// Whether a resubmission names the same replay identity (everything
    /// but the world target must match; the target may only grow).
    pub(crate) fn matches(&self, request: &ShardJobRequest) -> bool {
        self.request.shard == request.shard
            && self.request.shards == request.shards
            && self.request.seed == request.seed
            && self.request.mode == request.mode
    }

    /// Raises the absolute world target (a lower target is a no-op) and
    /// wakes the sampler.
    pub(crate) fn raise_target(&self, worlds: usize) {
        let (lock, signal) = &*self.state;
        let mut guard = lock_state(lock);
        if worlds > guard.target {
            guard.target = worlds;
        }
        drop(guard);
        signal.notify_all();
    }

    /// `(pos, target)` at this instant.
    pub(crate) fn progress(&self) -> (usize, usize) {
        let guard = lock_state(&self.state.0);
        (guard.pos, guard.target)
    }

    /// Non-blocking page read: up to `max` encoded records starting at
    /// world `from`, plus the current `(pos, target)`.  Fewer records come
    /// back if sampling has not reached `from + max` yet.
    pub(crate) fn page(&self, from: usize, max: usize) -> (Vec<String>, usize, usize) {
        let guard = lock_state(&self.state.0);
        let end = guard.pos.min(from.saturating_add(max));
        let records = if from < end {
            guard.records[from..end].to_vec()
        } else {
            Vec::new()
        };
        (records, guard.pos, guard.target)
    }

    /// The current `shard_result` view: failed, still pending, or done
    /// with the cross-world aggregates.
    pub(crate) fn outcome(&self) -> ShardOutcome {
        let guard = lock_state(&self.state.0);
        if let Some(message) = &guard.failed {
            return ShardOutcome::Failed(message.clone());
        }
        if guard.pos < guard.target {
            return ShardOutcome::Pending {
                pos: guard.pos,
                target: guard.target,
            };
        }
        ShardOutcome::Done {
            worlds: guard.target,
            hist: guard.hist.clone(),
            intra: guard.intra.clone(),
        }
    }
}

impl Drop for ShardJob {
    fn drop(&mut self) {
        let (lock, signal) = &*self.state;
        lock_state(lock).stopped = true;
        signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
