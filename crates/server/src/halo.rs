//! Worker half of the `halo` wire op: connection-local ghost-halo exchange
//! sessions driving PageRank, clustering, and BFS supersteps over the
//! shard this server owns.
//!
//! A session is plain data — no background thread.  Each request line
//! carries the full session identity (token, shard role, replay seed and
//! mode, kernel), so a freshly promoted standby rebuilds the session from
//! whatever line arrives first: it replays the shared world stream up to
//! the named world (`advance` consumes the RNG without materialising
//! anything) and re-initialises the kernel.  Supersteps are restartable —
//! `step 0` on the current world resets the kernel *without* resampling,
//! which is how the coordinator recovers a world after a mid-superstep
//! worker loss.
//!
//! Values cross the wire as IEEE-754 bit strings
//! ([`ugs_queries::halo::f64_to_hex`]), so the exchange adds no rounding:
//! the distributed kernels stay bit-identical to the monolithic ones (see
//! [`ugs_queries::halo`] for the iteration-equivalence argument).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use graph_algos::clustering::local_clustering_coefficients;
use graph_algos::DeterministicGraph;
use minijson::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_queries::halo::{
    dangling_mass, decode_level, decode_rank, encode_level, encode_rank, f64_to_hex, ShardBfs,
    ShardPageRank, WorldPresence,
};
use ugs_queries::sharded::{ShardScratch, ShardedWorldEngine};
use ugs_queries::SampleMethod;
use uncertain_graph::{GraphPartition, UncertainGraph, NOT_IN_HALO};

use crate::protocol::{
    error_line, finish_ok, ok_builder, ErrorCode, HaloKernel, HaloPhase, HaloRequest, RequestError,
};

/// What the connection hands the halo dispatcher: the served graph, the
/// worker's shard role, the per-connection session budget, and the
/// server-wide live-session gauge.
pub(crate) struct HaloEnv<'g> {
    pub graph: &'g UncertainGraph,
    pub partition: &'g GraphPartition,
    pub shard: usize,
    pub shards: usize,
    pub budget: usize,
    pub gauge: &'g AtomicUsize,
}

/// Kernel-specific superstep state of one session.
enum Kernel {
    PageRank {
        damping: f64,
        state: ShardPageRank,
        /// The shared dangling rank: `1/n` at iteration 0, the previous
        /// iteration's `base` thereafter (see [`ugs_queries::halo`]).
        rank_d: f64,
        step: usize,
    },
    Clustering {
        /// Owned coefficients of the current world, computed lazily on the
        /// first `collect`.
        coefficients: Option<Vec<f64>>,
    },
    Bfs {
        state: ShardBfs,
        step: usize,
    },
}

/// One live ghost-halo exchange session (connection-local, keyed by the
/// request's job token).
pub(crate) struct HaloSession<'g> {
    engine: ShardedWorldEngine<'g>,
    scratch: ShardScratch,
    presence: WorldPresence,
    rng: SmallRng,
    shard: usize,
    seed: u64,
    mode: SampleMethod,
    kernel_id: HaloKernel,
    /// Worlds consumed from the replay stream; the current world is
    /// `sampled - 1` once positive.
    sampled: usize,
    kernel: Kernel,
    /// Rendered entries of the last superstep's report, kept for `page`.
    report: Vec<String>,
}

impl<'g> HaloSession<'g> {
    fn new(request: &HaloRequest, env: &HaloEnv<'g>) -> Self {
        let engine = ShardedWorldEngine::for_shard(env.graph, env.partition, env.shard)
            .with_method(request.mode);
        let scratch = engine.make_shard_scratch(env.shard);
        let kernel = match &request.kernel {
            HaloKernel::PageRank { damping } => Kernel::PageRank {
                damping: *damping,
                state: ShardPageRank::new(engine.halo_plan().shard(env.shard)),
                rank_d: 0.0,
                step: 0,
            },
            HaloKernel::Clustering => Kernel::Clustering { coefficients: None },
            // The source vertex lives in the identity (`kernel_id`); the
            // coordinator routes the seed settlement through step 0.
            HaloKernel::Bfs { .. } => Kernel::Bfs {
                state: ShardBfs::new(),
                step: 0,
            },
        };
        HaloSession {
            presence: WorldPresence::new(env.graph),
            rng: SmallRng::seed_from_u64(request.seed),
            shard: env.shard,
            seed: request.seed,
            mode: request.mode,
            kernel_id: request.kernel.clone(),
            sampled: 0,
            kernel,
            report: Vec::new(),
            scratch,
            engine,
        }
    }

    /// Whether the session already runs exactly this request's identity.
    fn matches(&self, request: &HaloRequest) -> bool {
        self.seed == request.seed && self.mode == request.mode && self.kernel_id == request.kernel
    }

    /// Whether the kernel has run past its initial state on the current
    /// world (a step-0 request then means "restart this world").
    fn kernel_started(&self) -> bool {
        match &self.kernel {
            Kernel::PageRank { step, .. } | Kernel::Bfs { step, .. } => *step > 0,
            Kernel::Clustering { coefficients } => coefficients.is_some(),
        }
    }

    /// Resets the kernel for the current (already sampled) world.
    fn init_kernel(&mut self) {
        let halo = self.engine.halo_plan().shard(self.shard);
        let n = self.engine.graph().num_vertices();
        match &mut self.kernel {
            Kernel::PageRank {
                state,
                rank_d,
                step,
                ..
            } => {
                let uniform = 1.0 / n as f64;
                state.reset(uniform);
                *rank_d = uniform;
                *step = 0;
            }
            Kernel::Clustering { coefficients } => *coefficients = None,
            Kernel::Bfs { state, step, .. } => {
                state.reset(halo);
                *step = 0;
            }
        }
        self.report.clear();
    }

    /// Moves the session to `request.world`: replays skipped worlds, samples
    /// the target, stamps presence, and (re-)initialises the kernel.  On the
    /// current world, a step-0 request restarts the kernel *without*
    /// resampling — the failover recovery path.
    fn ensure_world(&mut self, request: &HaloRequest) -> Result<(), RequestError> {
        let target = request.world;
        if self.sampled == 0 || target >= self.sampled {
            while self.sampled < target {
                self.engine
                    .advance_shard_world(&mut self.rng, &mut self.scratch);
                self.sampled += 1;
            }
            self.engine
                .sample_shard_world(&mut self.rng, &mut self.scratch);
            self.sampled = target + 1;
            self.presence
                .stamp(self.engine.graph(), self.engine.world_edges(&self.scratch));
            self.init_kernel();
        } else if target + 1 == self.sampled {
            if matches!(request.phase, HaloPhase::Step { step: 0, .. }) && self.kernel_started() {
                self.init_kernel();
            }
        } else {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "halo worlds are monotone: the session is at world {}, the request names world {target}",
                    self.sampled - 1
                ),
            ));
        }
        Ok(())
    }

    fn apply(&mut self, request: &HaloRequest) -> Result<String, RequestError> {
        self.ensure_world(request)?;
        match &request.phase {
            HaloPhase::Feed { values } => self.feed(request, values),
            HaloPhase::Step { step, acc, values } => self.step(request, *step, *acc, values),
            HaloPhase::Page { from, max } => Ok(self.page_response(request, *from, *max)),
            HaloPhase::Collect { from, max } => self.collect(request, *from, *max),
        }
    }

    /// Installs exchanged ghost ranks (global-id addressed) for the next
    /// PageRank superstep.
    fn feed(&mut self, request: &HaloRequest, values: &[String]) -> Result<String, RequestError> {
        let halo = self.engine.halo_plan().shard(self.shard);
        let Kernel::PageRank { state, .. } = &mut self.kernel else {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "a {} halo kernel exchanges no ghost ranks; feed applies to pagerank only",
                    self.kernel_id.type_name()
                ),
            ));
        };
        for entry in values {
            let (gid, rank) = decode_rank(entry).map_err(|error| (ErrorCode::BadRequest, error))?;
            let halo_local = halo.halo_index(gid as usize);
            if halo_local == NOT_IN_HALO || (halo_local as usize) < halo.owned() {
                return Err((
                    ErrorCode::BadRequest,
                    format!("vertex {gid} is not a ghost of shard {}", self.shard),
                ));
            }
            state.set_halo_rank(halo_local as usize, rank);
        }
        Ok(finish_ok(
            ok_builder()
                .field("job", request.job.as_str())
                .field("world", request.world)
                .field("fed", values.len()),
        ))
    }

    fn step(
        &mut self,
        request: &HaloRequest,
        step: usize,
        acc: Option<f64>,
        values: &[String],
    ) -> Result<String, RequestError> {
        let halo = self.engine.halo_plan().shard(self.shard);
        let n = self.engine.graph().num_vertices();
        let partition = self.engine.partition();
        match &mut self.kernel {
            Kernel::PageRank {
                damping,
                state,
                rank_d,
                step: at,
            } => {
                if step != *at {
                    return Err((
                        ErrorCode::BadRequest,
                        format!("pagerank session is at step {at}, the request names step {step}"),
                    ));
                }
                let Some(acc) = acc else {
                    return Err((
                        ErrorCode::BadRequest,
                        "a pagerank step threads the delta accumulator: field \"acc\" is required"
                            .to_string(),
                    ));
                };
                if !values.is_empty() {
                    return Err((
                        ErrorCode::BadRequest,
                        "a pagerank step carries no settlements; exchange ranks via feed"
                            .to_string(),
                    ));
                }
                let uniform = 1.0 / n as f64;
                let mass = dangling_mass(*rank_d, self.presence.dangling());
                let base = (1.0 - *damping) * uniform + *damping * mass * uniform;
                state.superstep(halo, &self.presence, *damping, base);
                let acc_out = state.fold_delta(acc);
                state.commit();
                *rank_d = base;
                *at += 1;
                self.report.clear();
                for &gv in halo.boundary() {
                    let local = halo.halo_index(gv) as usize;
                    self.report
                        .push(encode_rank(gv as u32, state.owned_ranks()[local]));
                }
                let mut builder = ok_builder()
                    .field("job", request.job.as_str())
                    .field("world", request.world)
                    .field("step", step)
                    .field("acc", f64_to_hex(acc_out));
                builder = page_fields(
                    builder,
                    &self.report,
                    0,
                    crate::protocol::DEFAULT_BOUNDARY_PAGE,
                );
                Ok(finish_ok(builder))
            }
            Kernel::Bfs {
                state, step: at, ..
            } => {
                if step != *at {
                    return Err((
                        ErrorCode::BadRequest,
                        format!("bfs session is at step {at}, the request names step {step}"),
                    ));
                }
                if acc.is_some() {
                    return Err((
                        ErrorCode::BadRequest,
                        "a bfs step threads no accumulator; field \"acc\" applies to pagerank"
                            .to_string(),
                    ));
                }
                for entry in values {
                    let (gid, level) =
                        decode_level(entry).map_err(|error| (ErrorCode::BadRequest, error))?;
                    let halo_local = halo.halo_index(gid as usize);
                    if halo_local == NOT_IN_HALO || (halo_local as usize) >= halo.owned() {
                        return Err((
                            ErrorCode::BadRequest,
                            format!(
                                "vertex {gid} is not owned by shard {}; settlements route to owners",
                                self.shard
                            ),
                        ));
                    }
                    state.absorb(halo_local, level);
                }
                let mut settled: Vec<(u32, u32)> = Vec::new();
                state.expand(halo, &self.presence, step as u32, &mut settled);
                *at += 1;
                self.report.clear();
                for (halo_local, level) in settled {
                    let gid = if (halo_local as usize) < halo.owned() {
                        partition
                            .shard(self.shard)
                            .global_vertex(halo_local as usize) as u32
                    } else {
                        halo.ghosts()[halo_local as usize - halo.owned()] as u32
                    };
                    self.report.push(encode_level(gid, level));
                }
                let mut builder = ok_builder()
                    .field("job", request.job.as_str())
                    .field("world", request.world)
                    .field("step", step);
                builder = page_fields(
                    builder,
                    &self.report,
                    0,
                    crate::protocol::DEFAULT_BOUNDARY_PAGE,
                );
                Ok(finish_ok(builder))
            }
            Kernel::Clustering { .. } => Err((
                ErrorCode::BadRequest,
                "clustering is a pure collect kernel; it runs no supersteps".to_string(),
            )),
        }
    }

    /// Re-reads a page of the last superstep's report (idempotent).
    fn page_response(&self, request: &HaloRequest, from: usize, max: usize) -> String {
        let mut builder = ok_builder()
            .field("job", request.job.as_str())
            .field("world", request.world);
        builder = page_fields(builder, &self.report, from, max);
        finish_ok(builder)
    }

    /// Pages the owned final values of the current world.
    fn collect(
        &mut self,
        request: &HaloRequest,
        from: usize,
        max: usize,
    ) -> Result<String, RequestError> {
        let halo = self.engine.halo_plan().shard(self.shard);
        let presence = &self.presence;
        let owned: Vec<String> = match &mut self.kernel {
            Kernel::PageRank { state, .. } => {
                state.owned_ranks().iter().map(|&r| f64_to_hex(r)).collect()
            }
            Kernel::Clustering { coefficients } => {
                let cc = coefficients.get_or_insert_with(|| {
                    // One-shot halo materialisation: filter the halo edge
                    // set by world presence, run the monolithic kernel on
                    // the halo world, keep the owned coefficients.
                    let endpoints: Vec<(u32, u32)> = halo
                        .halo_edges()
                        .iter()
                        .filter(|&&(_, _, e)| presence.edge_present(e))
                        .map(|&(a, b, _)| (a, b))
                        .collect();
                    let mut world = DeterministicGraph::from_edges(0, &[]);
                    world.materialize_from_endpoints(halo.halo_len(), &endpoints);
                    let mut cc = local_clustering_coefficients(&world);
                    cc.truncate(halo.owned());
                    cc
                });
                cc.iter().map(|&c| f64_to_hex(c)).collect()
            }
            Kernel::Bfs { .. } => {
                return Err((
                    ErrorCode::BadRequest,
                    "a bfs session reports settlements in step responses; nothing to collect"
                        .to_string(),
                ))
            }
        };
        let mut builder = ok_builder()
            .field("job", request.job.as_str())
            .field("world", request.world);
        builder = page_fields(builder, &owned, from, max);
        Ok(finish_ok(builder))
    }
}

/// Appends the standard paging fields: the requested window of `entries`
/// plus the total count (so the reader knows whether to page on).
fn page_fields(
    builder: minijson::ObjBuilder,
    entries: &[String],
    from: usize,
    max: usize,
) -> minijson::ObjBuilder {
    let end = from.saturating_add(max.max(1)).min(entries.len());
    let window = entries.get(from..end).unwrap_or(&[]);
    builder
        .field("from", from)
        .field("total", entries.len())
        .field(
            "values",
            Value::Arr(window.iter().cloned().map(Value::Str).collect()),
        )
}

/// Dispatches one `halo` request against the connection's session map.
/// Identity mismatches under a live token replace the session (the
/// coordinator reuses tokens across plans); a kernel panic drops the
/// session and answers a typed `internal` error.
pub(crate) fn handle<'g>(
    request: HaloRequest,
    env: &HaloEnv<'g>,
    sessions: &mut HashMap<String, HaloSession<'g>>,
) -> String {
    if request.shard != env.shard || request.shards != env.shards {
        return error_line(
            ErrorCode::BadRequest,
            &format!(
                "halo names shard {}/{} but this worker serves shard {}/{}",
                request.shard, request.shards, env.shard, env.shards
            ),
        );
    }
    let fresh = match sessions.get(&request.job) {
        Some(session) => !session.matches(&request),
        None => true,
    };
    if fresh {
        if !sessions.contains_key(&request.job) && sessions.len() >= env.budget {
            return error_line(
                ErrorCode::OverBudget,
                &format!(
                    "this connection already holds {} halo sessions (budget {})",
                    sessions.len(),
                    env.budget
                ),
            );
        }
        let session = HaloSession::new(&request, env);
        if sessions.insert(request.job.clone(), session).is_none() {
            env.gauge.fetch_add(1, Ordering::SeqCst);
        }
    }
    let session = sessions
        .get_mut(&request.job)
        .expect("session inserted above");
    match catch_unwind(AssertUnwindSafe(|| session.apply(&request))) {
        Ok(Ok(response)) => response,
        Ok(Err((code, message))) => error_line(code, &message),
        Err(_) => {
            sessions.remove(&request.job);
            env.gauge.fetch_sub(1, Ordering::SeqCst);
            error_line(
                ErrorCode::Internal,
                "the halo kernel panicked; the session was dropped",
            )
        }
    }
}
