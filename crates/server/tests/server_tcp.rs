//! Loopback-TCP integration suite: real sockets, real threads, every
//! assertion against the wire.  Covers submit/poll/cancel round-trips,
//! typed protocol errors that leave the connection up, cache-hit
//! bit-identity against a fresh cold-cache server, deterministic
//! backpressure (`over_budget`, `overloaded`) and graceful shutdown that
//! never leaves a client blocked.

use std::time::Duration;

use minijson::Value;
use ugs_server::{serve, FaultEvent, FaultKind, FaultPlan, LineClient, ServerConfig, ServerHandle};
use uncertain_graph::UncertainGraph;

/// Every client arms a generous read timeout: a regression that hangs a
/// response turns into a loud test failure instead of a stuck suite.
const SAFETY: Duration = Duration::from_secs(30);

fn toy_graph() -> UncertainGraph {
    UncertainGraph::from_edges(
        6,
        [
            (0, 1, 0.9),
            (1, 2, 0.5),
            (2, 3, 0.7),
            (3, 4, 0.4),
            (4, 5, 0.6),
            (5, 0, 0.8),
            (1, 4, 0.3),
        ],
    )
    .unwrap()
}

fn start(config: ServerConfig) -> ServerHandle {
    serve(toy_graph(), config).unwrap()
}

fn client(server: &ServerHandle) -> LineClient {
    let mut client = LineClient::connect(server.addr()).unwrap();
    client.set_read_timeout(Some(SAFETY)).unwrap();
    client
}

fn submit_job(client: &mut LineClient, plan: &str) -> (u64, bool) {
    let response = client.submit(plan).unwrap();
    assert_eq!(
        response.get_str("status"),
        Some("ok"),
        "{}",
        response.render()
    );
    (
        response.get_usize("job").unwrap() as u64,
        response.get("job").is_some()
            && response.get("cached").and_then(Value::as_bool) == Some(true),
    )
}

#[test]
fn submit_poll_round_trips_deliver_exactly_once() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);

    let pong = c.request(r#"{"op": "ping"}"#).unwrap();
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));

    let (job, cached) = submit_job(
        &mut c,
        r#"{"worlds": 80, "seed": 3, "queries": [{"type": "connectivity"}, {"type": "edge_frequency"}]}"#,
    );
    assert!(!cached, "a cold cache cannot satisfy the first submit");
    let report = c.wait_for_report(job).unwrap();
    let results = report.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 2);
    for entry in results {
        assert_eq!(entry.get_str("status"), Some("ok"));
        assert_eq!(entry.get_usize("worlds_used"), Some(80));
    }

    // Delivery consumed the job: its id is gone.
    let gone = c.poll(job).unwrap();
    assert_eq!(gone.get_str("code"), Some("unknown_job"));
    server.shutdown();
}

#[test]
fn cancel_frees_the_job_and_its_id() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 50, "seed": 1, "queries": [{"type": "connectivity"}]}"#,
    );
    let cancelled = c.cancel(job).unwrap();
    assert_eq!(cancelled.get_str("status"), Some("ok"));
    assert_eq!(
        cancelled.get("cancelled").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(c.poll(job).unwrap().get_str("code"), Some("unknown_job"));
    assert_eq!(c.cancel(job).unwrap().get_str("code"), Some("unknown_job"));
    // The connection is still perfectly usable afterwards.
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 50, "seed": 1, "queries": [{"type": "connectivity"}]}"#,
    );
    c.wait_for_report(job).unwrap();
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_and_the_connection_survives() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    let cases = [
        ("{not json", "bad_request"),
        ("[1, 2, 3]", "bad_request"),
        (r#"{"op": "warp"}"#, "unknown_op"),
        (r#"{"op": "ping", "extra": true}"#, "bad_request"),
        (r#"{"op": "poll"}"#, "bad_request"),
        (r#"{"op": "poll", "job": 999}"#, "unknown_job"),
        (r#"{"op": "submit", "plan": {"queries": []}}"#, "plan"),
        (
            r#"{"op": "submit", "plan": {"worlds": 5, "budget": 9, "queries": [{"type": "connectivity"}]}}"#,
            "bad_request",
        ),
        (
            r#"{"op": "submit", "plan": {"graph": "elsewhere.txt", "queries": [{"type": "connectivity"}]}}"#,
            "plan",
        ),
        (
            r#"{"op": "submit", "plan": {"queries": [{"type": "psychic"}]}}"#,
            "plan",
        ),
    ];
    for (line, code) in cases {
        let response = c.request(line).unwrap();
        assert_eq!(response.get_str("status"), Some("error"), "{line}");
        assert_eq!(response.get_str("code"), Some(code), "{line}");
        assert!(response.get_str("message").is_some(), "{line}");
    }
    // After ten abusive lines the connection still answers real work.
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 40, "seed": 9, "queries": [{"type": "connectivity"}]}"#,
    );
    c.wait_for_report(job).unwrap();
    server.shutdown();
}

#[test]
fn plans_that_fail_inside_the_service_report_typed_per_query_errors() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    // A spec that cannot fit the graph (knn source out of range) comes back
    // as a per-query typed error, not a worker panic or a dead connection.
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 40, "seed": 2, "shards": 2, "queries": [{"type": "knn", "source": 99, "k": 2}, {"type": "degree_histogram"}]}"#,
    );
    let report = c.wait_for_report(job).unwrap();
    let results = report.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get_str("status"), Some("error"));
    assert!(results[0].get_str("error").is_some());
    assert_eq!(results[1].get_str("status"), Some("ok"));
    // The worker pool survived, and pagerank over shards now runs through
    // the ghost-halo exchange instead of erroring.
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 40, "seed": 2, "shards": 2, "queries": [{"type": "pagerank"}]}"#,
    );
    let report = c.wait_for_report(job).unwrap();
    let results = report.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get_str("status"), Some("ok"));
    server.shutdown();
}

/// The tentpole determinism claim: a cache hit is bit-identical to a fresh
/// run, across seeds and across fixed/adaptive budgets.  The baseline is a
/// second server with a cold cache — same graph, same plan, zero reuse.
#[test]
fn cache_hits_are_bit_identical_to_fresh_runs() {
    let warm = start(ServerConfig::default());
    let mut wc = client(&warm);
    for seed in [1u64, 7, 13] {
        for precision in ["", r#", "precision": {"epsilon": 0.05, "delta": 0.1}"#] {
            let plan = format!(
                r#"{{"worlds": 120, "threads": 2, "seed": {seed}{precision}, "queries": [{{"type": "connectivity"}}, {{"type": "edge_frequency"}}]}}"#
            );
            let (job, cached) = submit_job(&mut wc, &plan);
            assert!(!cached, "first sighting of this plan cannot be cached");
            let first = wc.wait_for_report(job).unwrap().render();

            let (job, cached) = submit_job(&mut wc, &plan);
            assert!(cached, "identical resubmission must be a full cache hit");
            let replay = wc.wait_for_report(job).unwrap().render();
            assert_eq!(first, replay, "cache replay diverged (seed {seed})");

            let cold = start(ServerConfig::default());
            let mut cc = client(&cold);
            let (job, _) = submit_job(&mut cc, &plan);
            let fresh = cc.wait_for_report(job).unwrap().render();
            assert_eq!(first, fresh, "cached answer differs from a cold run");
            cold.shutdown();
        }
    }
    let stats = warm.cache_stats();
    assert!(stats.hits >= 12, "expected cache hits, saw {stats:?}");
    warm.shutdown();
}

/// Fixed-budget answers are mix-independent, so a query cached from a
/// two-query plan satisfies a later single-query plan — and bit-identically
/// matches a cold server that only ever ran the solo plan.
#[test]
fn fixed_budget_answers_are_reused_across_plans() {
    let warm = start(ServerConfig::default());
    let mut wc = client(&warm);
    let (job, _) = submit_job(
        &mut wc,
        r#"{"worlds": 90, "seed": 5, "queries": [{"type": "connectivity"}, {"type": "edge_frequency"}]}"#,
    );
    wc.wait_for_report(job).unwrap();

    let solo = r#"{"worlds": 90, "seed": 5, "queries": [{"type": "connectivity"}]}"#;
    let (job, cached) = submit_job(&mut wc, solo);
    assert!(
        cached,
        "solo plan should be satisfied from the pair's cache"
    );
    let reused = wc.wait_for_report(job).unwrap().render();

    let cold = start(ServerConfig::default());
    let mut cc = client(&cold);
    let (job, _) = submit_job(&mut cc, solo);
    let fresh = cc.wait_for_report(job).unwrap().render();
    assert_eq!(reused, fresh, "cross-plan reuse must stay bit-identical");
    cold.shutdown();
    warm.shutdown();
}

/// Adaptive stopping pools statistics over the whole mix, so a differently
/// mixed adaptive plan must NOT reuse cached answers.
#[test]
fn adaptive_answers_are_never_reused_across_mixes() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 200, "seed": 5, "precision": {"epsilon": 0.05}, "queries": [{"type": "connectivity"}, {"type": "edge_frequency"}]}"#,
    );
    c.wait_for_report(job).unwrap();
    let (_, cached) = submit_job(
        &mut c,
        r#"{"worlds": 200, "seed": 5, "precision": {"epsilon": 0.05}, "queries": [{"type": "connectivity"}]}"#,
    );
    assert!(!cached, "a different adaptive mix must re-run");
    server.shutdown();
}

#[test]
fn the_inflight_budget_rejects_typed_without_killing_jobs() {
    let server = start(ServerConfig {
        max_inflight: 2,
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    let plan = |seed: u64| {
        format!(r#"{{"worlds": 60, "seed": {seed}, "queries": [{{"type": "connectivity"}}]}}"#)
    };
    let (job_a, _) = submit_job(&mut c, &plan(1));
    let (job_b, _) = submit_job(&mut c, &plan(2));
    // Slots free only at delivery or cancellation, so the third submit is
    // deterministically over budget no matter how fast the jobs ran.
    let refused = c.submit(&plan(3)).unwrap();
    assert_eq!(refused.get_str("status"), Some("error"));
    assert_eq!(refused.get_str("code"), Some("over_budget"));
    // Delivering one frees its slot.
    c.wait_for_report(job_a).unwrap();
    let (job_c, _) = submit_job(&mut c, &plan(3));
    c.wait_for_report(job_b).unwrap();
    c.wait_for_report(job_c).unwrap();
    server.shutdown();
}

#[test]
fn a_full_queue_answers_overloaded_instead_of_buffering() {
    let server = start(ServerConfig {
        executors: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    // Job A is heavy enough to pin the single executor for a while.
    let heavy = r#"{"worlds": 150000, "seed": 11, "queries": [{"type": "edge_frequency"}]}"#;
    let light = |seed: u64| {
        format!(r#"{{"worlds": 30, "seed": {seed}, "queries": [{{"type": "connectivity"}}]}}"#)
    };
    let (job_a, _) = submit_job(&mut c, heavy);
    // Job B lands in the queue slot as soon as the executor picks up A.
    let job_b = loop {
        let response = c.submit(&light(1)).unwrap();
        match response.get_str("code") {
            Some("overloaded") => std::thread::sleep(Duration::from_millis(1)),
            None => break response.get_usize("job").unwrap() as u64,
            Some(other) => panic!("unexpected rejection {other}"),
        }
    };
    // Executor busy with A, queue holds B: C must bounce, typed.
    let refused = c.submit(&light(2)).unwrap();
    assert_eq!(refused.get_str("status"), Some("error"));
    assert_eq!(refused.get_str("code"), Some("overloaded"));
    assert!(refused.get_str("message").unwrap().contains("queue"));
    // The rejection cost nothing: A and B still deliver.
    c.wait_for_report(job_a).unwrap();
    c.wait_for_report(job_b).unwrap();
    server.shutdown();
}

#[test]
fn graceful_shutdown_closes_clients_instead_of_hanging_them() {
    let server = start(ServerConfig::default());
    let mut watcher = client(&server);
    let mut killer = client(&server);
    // The watcher has a queued job it will never collect.
    let (job, _) = submit_job(
        &mut watcher,
        r#"{"worlds": 120, "seed": 4, "queries": [{"type": "edge_frequency"}]}"#,
    );
    let ack = killer.request(r#"{"op": "shutdown"}"#).unwrap();
    assert_eq!(ack.get_str("status"), Some("ok"));
    assert_eq!(ack.get("stopping").and_then(Value::as_bool), Some(true));
    // The killer's socket closes right after the acknowledgement…
    assert_eq!(killer.read_line().unwrap(), None, "expected EOF");
    // …and the watcher is unblocked too: either a typed shutting_down
    // answer (if its poll raced the teardown) or a clean EOF — never a
    // hang (the read timeout would fail the test loudly).
    match watcher.request_raw(&format!(r#"{{"op": "poll", "job": {job}}}"#)) {
        Ok(None) | Err(_) => {}
        Ok(Some(line)) => {
            let value = Value::parse(&line).unwrap();
            let code = value.get_str("code");
            assert!(
                value.get_str("status") == Some("ok") || code == Some("shutting_down"),
                "unexpected shutdown-race response: {line}"
            );
        }
    }
    assert_eq!(watcher.read_line().unwrap(), None, "expected EOF");
    // Joining the server completes promptly; queued work was drained or
    // discarded, not stranded.
    server.shutdown();
}

#[test]
fn submits_after_shutdown_are_refused_typed() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    c.request(r#"{"op": "shutdown"}"#).unwrap();
    // A second connection may race the listener teardown: a connect that
    // still succeeds must be answered typed or closed, never hung.
    if let Ok(mut late) = LineClient::connect(server.addr()) {
        late.set_read_timeout(Some(SAFETY)).unwrap();
        // A closed connection (EOF or error) is also fine — only a typed
        // answer is checked.
        if let Ok(Some(line)) =
            late.request_raw(r#"{"op": "submit", "plan": {"queries": [{"type": "connectivity"}]}}"#)
        {
            let value = Value::parse(&line).unwrap();
            assert_eq!(value.get_str("code"), Some("shutting_down"), "{line}");
        }
    }
    server.shutdown();
}

#[test]
fn stats_report_cache_and_job_counters_over_the_wire() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    let plan = r#"{"worlds": 70, "seed": 8, "queries": [{"type": "connectivity"}]}"#;
    let (job, _) = submit_job(&mut c, plan);
    c.wait_for_report(job).unwrap();
    let (job, cached) = submit_job(&mut c, plan);
    assert!(cached);
    c.wait_for_report(job).unwrap();
    let stats = c.request(r#"{"op": "stats"}"#).unwrap();
    assert_eq!(stats.get_str("status"), Some("ok"));
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get_usize("submitted"), Some(2));
    assert_eq!(jobs.get_usize("delivered"), Some(2));
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get_usize("hits"), Some(1));
    assert_eq!(cache.get_usize("insertions"), Some(1));
    assert!(stats.get_str("graph").unwrap().starts_with("fingerprint:"));
    server.shutdown();
}

#[test]
fn plan_thread_counts_are_clamped_to_the_server_cap() {
    let server = start(ServerConfig {
        max_plan_threads: 2,
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    // A plan demanding 64 threads runs clamped — and its cache identity is
    // the clamped plan, so an explicit 2-thread plan hits.
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 64, "threads": 64, "seed": 6, "queries": [{"type": "edge_frequency"}]}"#,
    );
    let clamped = c.wait_for_report(job).unwrap();
    assert_eq!(clamped.get_usize("threads"), Some(2));
    let (job, cached) = submit_job(
        &mut c,
        r#"{"worlds": 64, "threads": 2, "seed": 6, "queries": [{"type": "edge_frequency"}]}"#,
    );
    assert!(
        cached,
        "clamped plan and explicit 2-thread plan share a key"
    );
    let explicit = c.wait_for_report(job).unwrap();
    assert_eq!(
        clamped.get("results").unwrap().render(),
        explicit.get("results").unwrap().render()
    );
    server.shutdown();
}

#[test]
fn oversized_request_lines_get_typed_errors_and_the_connection_survives() {
    let server = start(ServerConfig {
        max_line_bytes: 4096,
        ..ServerConfig::default()
    });
    let mut c = client(&server);

    // A single request line past the cap: typed bad_request naming the
    // limit, and the connection keeps serving.
    let huge = format!(r#"{{"op": "ping", "pad": "{}"}}"#, "x".repeat(8192));
    let refused = c.request(&huge).unwrap();
    assert_eq!(refused.get_str("status"), Some("error"));
    assert_eq!(refused.get_str("code"), Some("bad_request"));
    assert!(
        refused.get_str("message").unwrap().contains("4096"),
        "the error names the cap: {}",
        refused.render()
    );
    let pong = c.request(r#"{"op": "ping"}"#).unwrap();
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));

    // A newline-free flood well past the cap: the server refuses it as
    // soon as the overflow is certain, drains to the eventual newline,
    // and the next line is served normally — no unbounded buffering.
    let flood = "y".repeat(64 * 1024);
    let refused = c.request(&flood).unwrap();
    assert_eq!(refused.get_str("code"), Some("bad_request"));
    let (job, _) = submit_job(
        &mut c,
        r#"{"worlds": 30, "seed": 2, "queries": [{"type": "connectivity"}]}"#,
    );
    c.wait_for_report(job).unwrap();
    server.shutdown();
}

#[test]
fn a_seeded_fault_plan_misbehaves_deterministically_over_the_wire() {
    // One Disconnect at op 2, then a wedge-free schedule: ops 0 and 1
    // answer, op 2 closes the connection, everything after serves again.
    let server = start(ServerConfig {
        fault_plan: Some(FaultPlan {
            events: vec![FaultEvent {
                at_op: 2,
                kind: FaultKind::Disconnect,
            }],
            wedge: None,
            delay: Duration::from_millis(1),
        }),
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    for _ in 0..2 {
        let pong = c.request(r#"{"op": "ping"}"#).unwrap();
        assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    }
    // Op 2: the injected disconnect surfaces as EOF (or a reset), never a
    // hang — the read timeout would fail the test loudly.
    match c.request_raw(r#"{"op": "ping"}"#) {
        Ok(None) | Err(_) => {}
        Ok(Some(line)) => panic!("expected the injected disconnect, got {line}"),
    }
    // The schedule is server-global: a fresh connection does NOT replay
    // op 0 — it picks up at op 3, serves normally, and the stats gauge
    // records exactly one fired fault.
    let mut fresh = client(&server);
    let stats = fresh.request(r#"{"op": "stats"}"#).unwrap();
    assert_eq!(stats.get_str("status"), Some("ok"));
    assert_eq!(stats.get_usize("faults"), Some(1));
    server.shutdown();
}

/// Drives the `halo` wire op exactly like the distributed coordinator
/// would — over real loopback sockets against two shard workers — and
/// checks every kernel against the monolithic engine, bit for bit.
#[test]
fn halo_sessions_reproduce_monolithic_kernels_over_loopback_workers() {
    use graph_algos::clustering::local_clustering_coefficients;
    use graph_algos::pagerank::{pagerank, PageRankConfig};
    use graph_algos::traversal::bfs_distances;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ugs_queries::engine::WorldEngine;
    use ugs_queries::halo::{decode_level, decode_rank, f64_from_hex, f64_to_hex};
    use ugs_queries::SampleMethod;
    use uncertain_graph::{GraphPartition, HaloPlan};

    let g = toy_graph();
    let partition = GraphPartition::contiguous(&g, 2).unwrap();
    let plan = HaloPlan::new(&g, &partition);
    let seed = 0xFEEDu64;
    let config = PageRankConfig::default();
    let damping_hex = f64_to_hex(config.damping);

    let workers: Vec<ServerHandle> = (0..2)
        .map(|k| {
            start(ServerConfig {
                shard: Some((k, 2)),
                ..ServerConfig::default()
            })
        })
        .collect();
    let mut clients: Vec<LineClient> = workers.iter().map(client).collect();

    let halo_line = |shard: usize, kernel: &str, world: usize, tail: &str| {
        let (token, kernel_obj) = match kernel {
            "pagerank" => (
                "pagerank",
                format!(r#"{{"type": "pagerank", "damping": "{damping_hex}"}}"#),
            ),
            "clustering" => ("clustering", r#"{"type": "clustering"}"#.to_string()),
            bfs => ("bfs", bfs.to_string()),
        };
        format!(
            r#"{{"op": "halo", "job": "t-{token}", "shard": {shard}, "shards": 2, "seed": "{seed}", "mode": "skip", "kernel": {kernel_obj}, "world": {world}, {tail}}}"#,
        )
    };
    let ok = |clients: &mut Vec<LineClient>, shard: usize, line: &str| -> Value {
        let response = clients[shard].request(line).unwrap();
        assert_eq!(
            response.get_str("status"),
            Some("ok"),
            "{line} -> {}",
            response.render()
        );
        response
    };
    let entries = |response: &Value| -> Vec<String> {
        let total = response.get_usize("total").unwrap();
        let values = response.get("values").unwrap().as_array().unwrap();
        assert_eq!(values.len(), total, "small reports fit one page here");
        values
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect()
    };

    // One coordinator-side pagerank world: supersteps with a chained delta
    // accumulator, a global rank board fed back as ghost values, then a
    // paged collect of the owned final ranks.
    let run_pagerank_world = |clients: &mut Vec<LineClient>, world: usize| -> Vec<f64> {
        let mut board = [1.0 / 6.0; 6];
        for step in 0..config.max_iterations {
            if step > 0 {
                for shard in 0..2 {
                    let ghosts: Vec<String> = plan
                        .shard(shard)
                        .ghosts()
                        .iter()
                        .map(|&gv| format!("{gv}:{}", f64_to_hex(board[gv])))
                        .collect();
                    let line = halo_line(
                        shard,
                        "pagerank",
                        world,
                        &format!(
                            r#""phase": "feed", "values": [{}]"#,
                            ghosts
                                .iter()
                                .map(|e| format!("{e:?}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    );
                    ok(clients, shard, &line);
                }
            }
            let mut acc = 0.0f64;
            for shard in 0..2 {
                let line = halo_line(
                    shard,
                    "pagerank",
                    world,
                    &format!(
                        r#""phase": "step", "step": {step}, "acc": "{}""#,
                        f64_to_hex(acc)
                    ),
                );
                let response = ok(clients, shard, &line);
                acc = f64_from_hex(response.get_str("acc").unwrap()).unwrap();
                for entry in entries(&response) {
                    let (gid, rank) = decode_rank(&entry).unwrap();
                    board[gid as usize] = rank;
                }
            }
            if acc < config.tolerance {
                break;
            }
        }
        let mut ranks = vec![0.0f64; 6];
        for shard in 0..2 {
            let line = halo_line(shard, "pagerank", world, r#""phase": "collect", "from": 0"#);
            let response = ok(clients, shard, &line);
            for (local, entry) in entries(&response).into_iter().enumerate() {
                let global = partition.shard(shard).vertices()[local];
                ranks[global] = f64_from_hex(&entry).unwrap();
            }
        }
        ranks
    };

    // Monolithic reference stream: same seed, same mode.
    let monolithic = WorldEngine::new(&g).with_method(SampleMethod::Skip);
    let mut scratch = monolithic.make_scratch();
    let mut rng = SmallRng::seed_from_u64(seed);
    for world in 0..3 {
        let mono_world = monolithic.sample_world(&mut rng, &mut scratch);

        // PageRank: bit-identical ranks, including after a step-0 restart
        // (the failover recovery path resets the kernel without resampling).
        let expected = pagerank(mono_world, &config);
        let got = run_pagerank_world(&mut clients, world);
        for (v, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "world {world} vertex {v}");
        }
        if world == 1 {
            let restarted = run_pagerank_world(&mut clients, world);
            for (a, b) in restarted.iter().zip(expected.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "restarted world {world}");
            }
        }

        // Clustering: a pure collect kernel.
        let expected = local_clustering_coefficients(mono_world);
        let mut got = [0.0f64; 6];
        for shard in 0..2 {
            let line = halo_line(
                shard,
                "clustering",
                world,
                r#""phase": "collect", "from": 0"#,
            );
            let response = ok(&mut clients, shard, &line);
            for (local, entry) in entries(&response).into_iter().enumerate() {
                let global = partition.shard(shard).vertices()[local];
                got[global] = f64_from_hex(&entry).unwrap();
            }
        }
        for (v, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "world {world} vertex {v}");
        }

        // BFS (the k-NN traversal core): settlements routed to owners,
        // expanded level-synchronously until a quiet superstep.
        let source = 2usize;
        let expected = bfs_distances(mono_world, source);
        let kernel = format!(r#"{{"type": "bfs", "source": {source}}}"#);
        let mut dist = [u32::MAX; 6];
        dist[source] = 0;
        let mut settlements = vec![(source as u32, 0u32)];
        for level in 0..6 {
            let mut next: Vec<(u32, u32)> = Vec::new();
            for shard in 0..2 {
                let routed: Vec<String> = settlements
                    .iter()
                    .filter(|&&(v, _)| partition.shard_of(v as usize) == shard)
                    .map(|&(v, l)| format!("\"{v}:{l}\""))
                    .collect();
                let line = halo_line(
                    shard,
                    &kernel,
                    world,
                    &format!(
                        r#""phase": "step", "step": {level}, "values": [{}]"#,
                        routed.join(", ")
                    ),
                );
                let response = ok(&mut clients, shard, &line);
                for entry in entries(&response) {
                    let (gid, lvl) = decode_level(&entry).unwrap();
                    if dist[gid as usize] == u32::MAX {
                        dist[gid as usize] = lvl;
                        next.push((gid, lvl));
                    }
                }
            }
            settlements = next;
            if settlements.is_empty() {
                break;
            }
        }
        for v in 0..6 {
            let want = expected[v];
            if want == usize::MAX {
                assert_eq!(dist[v], u32::MAX, "world {world} vertex {v}");
            } else {
                assert_eq!(dist[v] as usize, want, "world {world} vertex {v}");
            }
        }
    }

    // The stats gauge saw the sessions.
    let stats = clients[0].request(r#"{"op": "stats"}"#).unwrap();
    let shard_obj = stats.get("shard").unwrap();
    assert!(shard_obj.get_usize("halo").unwrap() >= 1);

    for worker in workers {
        worker.shutdown();
    }
}
