//! Cooperative cancellation end-to-end: cancelling a running **adaptive**
//! job reaches the driver's epoch checkpoints and aborts the run — the
//! executor frees within a bounded wait instead of burning the full world
//! cap, and the truncated answer is never cached.

use std::time::{Duration, Instant};

use minijson::Value;
use ugs_server::{serve, LineClient, ServerConfig};
use uncertain_graph::UncertainGraph;

/// A plan that can never converge (epsilon far below the estimator noise)
/// with a world cap that would take minutes to exhaust: the only way the
/// executor goes idle quickly is the cancel flag firing at an epoch
/// checkpoint.
const STUBBORN_PLAN: &str = concat!(
    r#"{"worlds": 2000000000, "seed": 7, "threads": 1,"#,
    r#" "precision": {"epsilon": 1e-9},"#,
    r#" "queries": [{"type": "connectivity"}]}"#,
);

fn executor_running(stats: &Value) -> bool {
    stats
        .get("executors")
        .and_then(Value::as_array)
        .map(|flags| flags.iter().any(|flag| flag.as_bool() == Some(true)))
        .unwrap_or(false)
}

#[test]
fn cancelling_a_running_adaptive_job_aborts_between_epochs() {
    let graph = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
    let server = serve(graph, ServerConfig::default()).unwrap();
    let mut client = LineClient::connect(server.addr()).unwrap();

    let accepted = client.submit(STUBBORN_PLAN).unwrap();
    assert_eq!(accepted.get_str("status"), Some("ok"), "submit accepted");
    let job = accepted.get_usize("job").unwrap() as u64;

    // Wait for the plan to leave the queue and actually run, so the cancel
    // exercises the mid-execution path, not the skip-while-queued path.
    let started = Instant::now();
    while !executor_running(&client.request(r#"{"op": "stats"}"#).unwrap()) {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the adaptive job never started running"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let cancelled = client.cancel(job).unwrap();
    assert_eq!(
        cancelled.get("cancelled").and_then(Value::as_bool),
        Some(true)
    );

    // The abort lands at the next epoch checkpoint: far sooner than the
    // 2-billion-world cap.  Watch the busy flags drop.
    let cancelled_at = Instant::now();
    loop {
        let stats = client.request(r#"{"op": "stats"}"#).unwrap();
        if !executor_running(&stats) {
            // The truncated run must not have poisoned the cache.
            let insertions = stats
                .get("cache")
                .and_then(|cache| cache.get_usize("insertions"))
                .unwrap();
            assert_eq!(insertions, 0, "a cancelled answer is never cached");
            break;
        }
        assert!(
            cancelled_at.elapsed() < Duration::from_secs(60),
            "cancellation did not reach the adaptive driver"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The job slot was freed by the cancel.
    let poll = client.poll(job).unwrap();
    assert_eq!(poll.get_str("code"), Some("unknown_job"));
    server.shutdown();
}
