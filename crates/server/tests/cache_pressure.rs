//! Result-cache behaviour under byte-budget pressure: exact LRU eviction
//! order, exact hit/miss/insertion/eviction accounting, and the same
//! pressure observed end-to-end through a live server's `stats` op.

use ugs_server::{serve, LineClient, ResultCache, ServerConfig};
use ugs_service::{QueryAnswer, QueryResult};
use uncertain_graph::UncertainGraph;

fn answer(tag: f64) -> QueryAnswer {
    QueryAnswer {
        result: QueryResult::EdgeFrequency(vec![tag]),
        worlds_used: 10,
        half_width: None,
    }
}

/// Measures the charged bytes of one entry under `key` (identically shaped
/// answers under equal-length keys are charged identically, which the LRU
/// tests below rely on).
fn entry_bytes(key: &str) -> usize {
    let mut probe = ResultCache::new(usize::MAX);
    probe.insert(key.to_string(), answer(0.75));
    probe.stats().bytes
}

#[test]
fn eviction_follows_exact_lru_order_under_pressure() {
    let unit = entry_bytes("k0");
    // Room for exactly three entries.
    let mut cache = ResultCache::new(3 * unit);
    cache.insert("k0".to_string(), answer(0.25));
    cache.insert("k1".to_string(), answer(0.75));
    cache.insert("k2".to_string(), answer(0.25));
    let stats = cache.stats();
    assert_eq!((stats.entries, stats.bytes), (3, 3 * unit), "budget full");
    assert_eq!(stats.evictions, 0, "nothing evicted while the budget holds");

    // A lookup bumps recency: k0 is now the most recent, k1 the LRU victim.
    assert!(cache.lookup("k0").is_some());
    cache.insert("k3".to_string(), answer(0.75));
    assert!(cache.lookup("k1").is_none(), "k1 was least recently used");
    assert!(cache.lookup("k0").is_some(), "bumped entry survives");
    assert!(cache.lookup("k2").is_some());
    assert!(cache.lookup("k3").is_some());
    assert_eq!(cache.stats().evictions, 1);

    // Recency is now k1-miss < k0 < k2 < k3 with k0 oldest of the live
    // three: the next two inserts must evict k0 then k2, never k3.
    cache.insert("k4".to_string(), answer(0.25));
    assert!(cache.lookup("k0").is_none(), "k0 evicted second");
    cache.insert("k5".to_string(), answer(0.75));
    assert!(cache.lookup("k2").is_none(), "k2 evicted third");
    assert!(cache.lookup("k3").is_some(), "k3 outlived both");
    let stats = cache.stats();
    assert_eq!(stats.evictions, 3);
    assert_eq!(stats.entries, 3);
    assert!(stats.bytes <= 3 * unit, "byte invariant holds throughout");
}

#[test]
fn hit_and_miss_accounting_stays_exact_under_pressure() {
    let unit = entry_bytes("k0");
    let mut cache = ResultCache::new(2 * unit);
    // 1 miss.
    assert!(cache.lookup("k0").is_none());
    cache.insert("k0".to_string(), answer(0.25));
    cache.insert("k1".to_string(), answer(0.75));
    // 2 hits.
    assert!(cache.lookup("k0").is_some());
    assert!(cache.lookup("k1").is_some());
    // Overflow: evicts k0 (the older of the two equal-recency bumps).
    cache.insert("k2".to_string(), answer(0.25));
    // 1 more miss, 1 more hit.
    assert!(cache.lookup("k0").is_none());
    assert!(cache.lookup("k2").is_some());
    let stats = cache.stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.insertions, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.bytes, 2 * unit);
}

#[test]
fn an_answer_larger_than_the_whole_budget_is_skipped_and_counted() {
    let unit = entry_bytes("k0");
    let mut cache = ResultCache::new(unit - 1);
    cache.insert("k0".to_string(), answer(0.25));
    let stats = cache.stats();
    assert_eq!(stats.entries, 0, "the oversized answer never lands");
    assert_eq!(stats.bytes, 0);
    assert_eq!(stats.insertions, 0);
    assert_eq!(stats.evictions, 1, "the skip is visible in the counters");
    assert!(cache.lookup("k0").is_none());
}

#[test]
fn reinserting_a_key_replaces_without_double_charging() {
    let unit = entry_bytes("k0");
    let mut cache = ResultCache::new(4 * unit);
    cache.insert("k0".to_string(), answer(0.25));
    cache.insert("k0".to_string(), answer(0.75));
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.bytes, unit, "the old charge was released");
    assert_eq!(cache.lookup("k0"), Some(answer(0.75)), "latest answer wins");
}

#[test]
fn a_live_server_reports_cache_pressure_through_stats() {
    let graph = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
    // A budget around two entries of this report size: distinct plans must
    // evict each other.
    let server = serve(
        graph,
        ServerConfig {
            cache_bytes: 360,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = LineClient::connect(server.addr()).unwrap();

    let plan = |seed: u64| {
        format!(r#"{{"worlds": 5, "seed": {seed}, "queries": [{{"type": "connectivity"}}]}}"#)
    };
    let run = |client: &mut LineClient, seed: u64| -> bool {
        let accepted = client.submit(&plan(seed)).unwrap();
        assert_eq!(accepted.get_str("status"), Some("ok"));
        let cached = accepted
            .get("cached")
            .and_then(minijson::Value::as_bool)
            .unwrap();
        let job = accepted.get_usize("job").unwrap() as u64;
        client.wait_for_report(job).unwrap();
        cached
    };

    assert!(!run(&mut client, 1), "first run is a miss");
    assert!(run(&mut client, 1), "identical resubmission hits");
    // Flood with distinct seeds until seed 1 must have been evicted.
    for seed in 2..10 {
        assert!(!run(&mut client, seed));
    }
    assert!(!run(&mut client, 1), "seed 1 was evicted under pressure");

    let stats = client.request(r#"{"op": "stats"}"#).unwrap();
    let cache = stats.get("cache").unwrap();
    assert!(cache.get_usize("evictions").unwrap() >= 1);
    assert!(cache.get_usize("hits").unwrap() >= 1);
    assert!(cache.get_usize("bytes").unwrap() <= 360);
    // The new observability fields ride along on the same response.
    let queue = stats.get("queue").unwrap();
    assert!(queue.get_usize("capacity").unwrap() >= 1);
    assert_eq!(stats.get_usize("connections"), Some(1));
    assert!(stats.get("executors").unwrap().as_array().is_some());
    server.shutdown();
}
