//! # lp-solver
//!
//! A small, dependency-free dense **simplex** linear-programming solver.
//!
//! The uncertain-graph sparsification paper (Section 4.1, Theorem 1) shows
//! that the probability assignment minimising the degree discrepancy `Δ1` of
//! a fixed backbone graph is the solution of the linear program
//!
//! ```text
//!   maximise   Σ_e p'_e
//!   subject to A_b p' ≤ d          (one row per vertex: expected degrees)
//!              0 ≤ p'_e ≤ 1        (box constraints)
//! ```
//!
//! where `A_b` is the incidence matrix of the backbone and `d` the expected
//! degree vector of the original graph.  The paper uses an off-the-shelf LP
//! solver; this crate provides the equivalent functionality implemented from
//! scratch so that the whole reproduction is self-contained:
//!
//! * [`LpProblem`] — a builder for `maximise cᵀx  s.t.  Ax ≤ b, 0 ≤ x ≤ u`
//!   with sparse constraint rows,
//! * [`solve`] — a standard primal simplex on the dense tableau (upper bounds
//!   are expanded into additional rows), suitable for the moderate problem
//!   sizes at which the paper itself can afford to run LP.
//!
//! The solver requires `b ≥ 0` (true for degree vectors), in which case the
//! all-slack basis is feasible and no phase-1 is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod problem;
pub mod simplex;

pub use problem::{LpError, LpProblem, LpSolution, LpStatus};
pub use simplex::solve;
