//! Problem and solution types for the simplex solver.

use std::fmt;

/// Errors raised while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable index exceeded the number of variables.
    VariableOutOfRange {
        /// Offending variable index.
        variable: usize,
        /// Number of variables in the problem.
        num_variables: usize,
    },
    /// A constraint right-hand side was negative; this solver requires
    /// `b ≥ 0` so that the slack basis is feasible.
    NegativeRhs {
        /// Index of the offending constraint.
        constraint: usize,
        /// The rejected value.
        value: f64,
    },
    /// A coefficient, bound or right-hand side was not finite.
    NotFinite {
        /// Human-readable description of where the value appeared.
        context: String,
    },
    /// An upper bound was negative.
    NegativeUpperBound {
        /// Offending variable index.
        variable: usize,
        /// The rejected value.
        value: f64,
    },
    /// The simplex iteration limit was exceeded (extremely unlikely with
    /// Bland's rule; indicates a degenerate, numerically hostile input).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::VariableOutOfRange {
                variable,
                num_variables,
            } => {
                write!(
                    f,
                    "variable {variable} out of range ({num_variables} variables)"
                )
            }
            LpError::NegativeRhs { constraint, value } => {
                write!(
                    f,
                    "constraint {constraint} has negative right-hand side {value}"
                )
            }
            LpError::NotFinite { context } => write!(f, "non-finite value in {context}"),
            LpError::NegativeUpperBound { variable, value } => {
                write!(f, "variable {variable} has negative upper bound {value}")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded the iteration limit of {limit}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Termination status of the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Optimal values of the variables (meaningful only when
    /// `status == Optimal`).
    pub values: Vec<f64>,
    /// Objective value `cᵀx` at `values`.
    pub objective: f64,
    /// Number of simplex pivots performed.
    pub iterations: usize,
}

/// A linear program in the form
/// `maximise cᵀx  subject to  Ax ≤ b,  0 ≤ x ≤ u`.
///
/// Constraint rows are stored sparsely; upper bounds default to `+∞`
/// (i.e. only the implicit `x ≥ 0` applies).
#[derive(Debug, Clone)]
pub struct LpProblem {
    num_variables: usize,
    objective: Vec<f64>,
    /// Each constraint: sparse row `(variable, coefficient)` plus rhs.
    constraints: Vec<(Vec<(usize, f64)>, f64)>,
    upper_bounds: Vec<f64>,
}

impl LpProblem {
    /// Creates a problem with `num_variables` variables, zero objective and
    /// no constraints.
    pub fn new(num_variables: usize) -> Self {
        LpProblem {
            num_variables,
            objective: vec![0.0; num_variables],
            constraints: Vec::new(),
            upper_bounds: vec![f64::INFINITY; num_variables],
        }
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.num_variables
    }

    /// Number of explicit constraints (not counting box constraints).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coefficient: f64) -> Result<&mut Self, LpError> {
        self.check_var(var)?;
        if !coefficient.is_finite() {
            return Err(LpError::NotFinite {
                context: format!("objective coefficient of x{var}"),
            });
        }
        self.objective[var] = coefficient;
        Ok(self)
    }

    /// Sets all objective coefficients at once.
    pub fn set_objective_vector(&mut self, coefficients: &[f64]) -> Result<&mut Self, LpError> {
        for (var, &c) in coefficients.iter().enumerate() {
            self.set_objective(var, c)?;
        }
        Ok(self)
    }

    /// Sets the upper bound of variable `var` (`x_var ≤ bound`).
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) -> Result<&mut Self, LpError> {
        self.check_var(var)?;
        if bound.is_nan() {
            return Err(LpError::NotFinite {
                context: format!("upper bound of x{var}"),
            });
        }
        if bound < 0.0 {
            return Err(LpError::NegativeUpperBound {
                variable: var,
                value: bound,
            });
        }
        self.upper_bounds[var] = bound;
        Ok(self)
    }

    /// Adds the constraint `Σ coefficients_i · x_i ≤ rhs` with a sparse row.
    pub fn add_le_constraint(
        &mut self,
        row: &[(usize, f64)],
        rhs: f64,
    ) -> Result<&mut Self, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NotFinite {
                context: "constraint right-hand side".into(),
            });
        }
        if rhs < 0.0 {
            return Err(LpError::NegativeRhs {
                constraint: self.constraints.len(),
                value: rhs,
            });
        }
        for &(var, coefficient) in row {
            self.check_var(var)?;
            if !coefficient.is_finite() {
                return Err(LpError::NotFinite {
                    context: format!(
                        "coefficient of x{var} in constraint {}",
                        self.constraints.len()
                    ),
                });
            }
        }
        self.constraints.push((row.to_vec(), rhs));
        Ok(self)
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Upper bounds per variable (`+∞` when unbounded above).
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper_bounds
    }

    /// Constraint rows.
    pub fn constraints(&self) -> &[(Vec<(usize, f64)>, f64)] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Checks whether `x` satisfies every constraint and bound up to `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_variables {
            return false;
        }
        for (var, &v) in x.iter().enumerate() {
            if v < -tol || v > self.upper_bounds[var] + tol {
                return false;
            }
        }
        for (row, rhs) in &self.constraints {
            let lhs: f64 = row.iter().map(|&(var, c)| c * x[var]).sum();
            if lhs > rhs + tol {
                return false;
            }
        }
        true
    }

    fn check_var(&self, var: usize) -> Result<(), LpError> {
        if var < self.num_variables {
            Ok(())
        } else {
            Err(LpError::VariableOutOfRange {
                variable: var,
                num_variables: self.num_variables,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_indices_and_values() {
        let mut p = LpProblem::new(2);
        assert!(p.set_objective(0, 1.0).is_ok());
        assert!(matches!(
            p.set_objective(5, 1.0),
            Err(LpError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            p.set_objective(1, f64::NAN),
            Err(LpError::NotFinite { .. })
        ));
        assert!(matches!(
            p.set_upper_bound(0, -1.0),
            Err(LpError::NegativeUpperBound { .. })
        ));
        assert!(matches!(
            p.set_upper_bound(0, f64::NAN),
            Err(LpError::NotFinite { .. })
        ));
        assert!(matches!(
            p.add_le_constraint(&[(0, 1.0)], -2.0),
            Err(LpError::NegativeRhs { .. })
        ));
        assert!(matches!(
            p.add_le_constraint(&[(9, 1.0)], 2.0),
            Err(LpError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            p.add_le_constraint(&[(0, f64::INFINITY)], 2.0),
            Err(LpError::NotFinite { .. })
        ));
        assert!(p.add_le_constraint(&[(0, 1.0), (1, 2.0)], 3.0).is_ok());
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.num_variables(), 2);
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(&[1.0, 1.0]).unwrap();
        p.set_upper_bound(0, 1.0).unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, 1.0)], 1.5).unwrap();
        assert!(p.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!p.is_feasible(&[2.0, 0.0], 1e-9)); // violates upper bound
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // violates x >= 0
        assert!(!p.is_feasible(&[1.0, 1.0], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong dimension
        assert!((p.objective_value(&[0.25, 0.5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        for err in [
            LpError::VariableOutOfRange {
                variable: 1,
                num_variables: 1,
            },
            LpError::NegativeRhs {
                constraint: 0,
                value: -1.0,
            },
            LpError::NotFinite {
                context: "x".into(),
            },
            LpError::NegativeUpperBound {
                variable: 0,
                value: -2.0,
            },
            LpError::IterationLimit { limit: 10 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
