//! Dense primal simplex on the standard tableau.
//!
//! The problem `maximise cᵀx  s.t.  Ax ≤ b, 0 ≤ x ≤ u` (with `b ≥ 0`) is
//! converted to standard form by adding one slack variable per constraint and
//! one extra `x_i ≤ u_i` row per finite upper bound.  Because every
//! right-hand side is non-negative the all-slack basis is feasible, so a
//! single primal phase suffices.  Pivoting uses Dantzig's rule (most negative
//! reduced cost) with a fallback to Bland's rule when cycling is suspected,
//! which guarantees termination.

use crate::problem::{LpError, LpProblem, LpSolution, LpStatus};

/// Numerical tolerance used for optimality and ratio tests.
const EPS: f64 = 1e-9;

/// Solves a linear program with the primal simplex method.
///
/// Returns [`LpStatus::Optimal`] with the optimal point, or
/// [`LpStatus::Unbounded`] when the objective can grow without limit.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let n = problem.num_variables();

    // Collect rows: the explicit constraints plus one row per finite upper
    // bound.
    let mut rows: Vec<(Vec<(usize, f64)>, f64)> = problem.constraints().to_vec();
    for (var, &ub) in problem.upper_bounds().iter().enumerate() {
        if ub.is_finite() {
            rows.push((vec![(var, 1.0)], ub));
        }
    }
    let m = rows.len();

    // Tableau layout: m rows of [structural | slack | rhs], then the
    // objective row (negated costs) at index m.
    let width = n + m + 1;
    let mut tableau = vec![vec![0.0f64; width]; m + 1];
    for (i, (row, rhs)) in rows.iter().enumerate() {
        for &(var, coefficient) in row {
            tableau[i][var] += coefficient;
        }
        tableau[i][n + i] = 1.0;
        tableau[i][n + m] = *rhs;
    }
    for (var, &c) in problem.objective().iter().enumerate() {
        tableau[m][var] = -c;
    }

    // basis[i] = column currently basic in row i.
    let mut basis: Vec<usize> = (0..m).map(|i| n + i).collect();

    let iteration_limit = 50 * (n + m + 10);
    let mut iterations = 0usize;
    // Switch to Bland's rule after a while to guarantee termination on
    // degenerate problems.
    let bland_after = 10 * (n + m + 10);

    loop {
        // --- entering variable -------------------------------------------------
        let entering = if iterations < bland_after {
            // Dantzig: most negative reduced cost.
            let mut best: Option<(usize, f64)> = None;
            for (j, &cost) in tableau[m][..n + m].iter().enumerate() {
                if cost < -EPS && best.is_none_or(|(_, b)| cost < b) {
                    best = Some((j, cost));
                }
            }
            best.map(|(j, _)| j)
        } else {
            // Bland: smallest index with negative reduced cost.
            tableau[m][..n + m].iter().position(|&cost| cost < -EPS)
        };
        let Some(entering) = entering else {
            break; // optimal
        };

        // --- leaving variable (minimum ratio test) ----------------------------
        let mut leaving: Option<(usize, f64)> = None;
        for i in 0..m {
            let a = tableau[i][entering];
            if a > EPS {
                let ratio = tableau[i][n + m] / a;
                let better = match leaving {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li])
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((pivot_row, _)) = leaving else {
            return Ok(LpSolution {
                status: LpStatus::Unbounded,
                values: vec![0.0; n],
                objective: f64::INFINITY,
                iterations,
            });
        };

        // --- pivot -------------------------------------------------------------
        pivot(&mut tableau, pivot_row, entering, n + m);
        basis[pivot_row] = entering;

        iterations += 1;
        if iterations > iteration_limit {
            return Err(LpError::IterationLimit {
                limit: iteration_limit,
            });
        }
    }

    // Read the solution off the basis.
    let mut values = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            values[b] = tableau[i][n + m].max(0.0);
        }
    }
    let objective = problem.objective_value(&values);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        values,
        objective,
        iterations,
    })
}

fn pivot(tableau: &mut [Vec<f64>], pivot_row: usize, pivot_col: usize, rhs_col: usize) {
    let pivot_value = tableau[pivot_row][pivot_col];
    debug_assert!(pivot_value.abs() > EPS, "pivot on a (near-)zero element");
    // Normalise the pivot row.
    for x in tableau[pivot_row].iter_mut() {
        *x /= pivot_value;
    }
    tableau[pivot_row][pivot_col] = 1.0;
    // Eliminate the pivot column from every other row.
    let pivot_row_copy = tableau[pivot_row].clone();
    for (i, row) in tableau.iter_mut().enumerate() {
        if i == pivot_row {
            continue;
        }
        let factor = row[pivot_col];
        if factor.abs() <= EPS {
            row[pivot_col] = 0.0;
            continue;
        }
        for (x, &p) in row.iter_mut().zip(pivot_row_copy.iter()) {
            *x -= factor * p;
        }
        row[pivot_col] = 0.0;
    }
    let _ = rhs_col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LpProblem;

    fn solve_expect_optimal(p: &LpProblem) -> LpSolution {
        let sol = solve(p).expect("solver error");
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            p.is_feasible(&sol.values, 1e-6),
            "solution {:?} infeasible",
            sol.values
        );
        sol
    }

    #[test]
    fn textbook_two_variable_problem() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), obj 36.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(&[3.0, 5.0]).unwrap();
        p.add_le_constraint(&[(0, 1.0)], 4.0).unwrap();
        p.add_le_constraint(&[(1, 2.0)], 12.0).unwrap();
        p.add_le_constraint(&[(0, 3.0), (1, 2.0)], 18.0).unwrap();
        let sol = solve_expect_optimal(&p);
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounds_are_respected() {
        // max x + y  s.t. x + y <= 10, x <= 1, y <= 2  => 3.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(&[1.0, 1.0]).unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, 1.0)], 10.0).unwrap();
        p.set_upper_bound(0, 1.0).unwrap();
        p.set_upper_bound(1, 2.0).unwrap();
        let sol = solve_expect_optimal(&p);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        let mut p = LpProblem::new(1);
        p.set_objective(0, 1.0).unwrap();
        // no constraints, no upper bound
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn zero_objective_is_trivially_optimal() {
        let mut p = LpProblem::new(3);
        p.add_le_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], 5.0)
            .unwrap();
        let sol = solve_expect_optimal(&p);
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the origin.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(&[1.0, 1.0]).unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, -1.0)], 0.0).unwrap();
        p.add_le_constraint(&[(0, -1.0), (1, 1.0)], 0.0).unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, 1.0)], 2.0).unwrap();
        let sol = solve_expect_optimal(&p);
        assert!((sol.objective - 2.0).abs() < 1e-6);
        assert!((sol.values[0] - 1.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degree_style_problem_matches_known_optimum() {
        // The Figure 2 backbone of the paper: vertices u1..u4 with expected
        // degrees d = (0.8, 0.6, 0.6, 1.0) in the original graph and backbone
        // edges (u1,u4), (u2,u4), (u3,u4).  maximise p1+p2+p3 subject to
        //   p1 <= 0.8, p2 <= 0.6, p3 <= 0.6, p1+p2+p3 <= 1.0, p <= 1.
        // Optimum total = 1.0.
        let mut p = LpProblem::new(3);
        p.set_objective_vector(&[1.0, 1.0, 1.0]).unwrap();
        for i in 0..3 {
            p.set_upper_bound(i, 1.0).unwrap();
        }
        p.add_le_constraint(&[(0, 1.0)], 0.8).unwrap();
        p.add_le_constraint(&[(1, 1.0)], 0.6).unwrap();
        p.add_le_constraint(&[(2, 1.0)], 0.6).unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], 1.0)
            .unwrap();
        let sol = solve_expect_optimal(&p);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn random_problems_match_brute_force_vertex_enumeration() {
        // For 2-variable problems the optimum lies at a vertex of the
        // feasible polygon; brute-force over a fine grid provides a lower
        // bound the simplex must match or exceed.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..25 {
            let mut p = LpProblem::new(2);
            let c = [rng.gen_range(0.0..3.0), rng.gen_range(0.0..3.0)];
            p.set_objective_vector(&c).unwrap();
            p.set_upper_bound(0, rng.gen_range(0.5..2.0)).unwrap();
            p.set_upper_bound(1, rng.gen_range(0.5..2.0)).unwrap();
            for _ in 0..3 {
                let row = [(0, rng.gen_range(0.1..2.0)), (1, rng.gen_range(0.1..2.0))];
                p.add_le_constraint(&row, rng.gen_range(0.5..3.0)).unwrap();
            }
            let sol = solve_expect_optimal(&p);
            // Grid search for a feasible point with a better objective.
            let mut best = 0.0f64;
            let steps = 60;
            for i in 0..=steps {
                for j in 0..=steps {
                    let x = [
                        p.upper_bounds()[0] * i as f64 / steps as f64,
                        p.upper_bounds()[1] * j as f64 / steps as f64,
                    ];
                    if p.is_feasible(&x, 1e-9) {
                        best = best.max(p.objective_value(&x));
                    }
                }
            }
            assert!(
                sol.objective >= best - 1e-6,
                "simplex {} worse than grid {}",
                sol.objective,
                best
            );
        }
    }

    #[test]
    fn three_variable_resource_allocation() {
        // max 2x + 3y + z s.t. x+y+z <= 10, x + 2y <= 8, y + 3z <= 9, x,y,z >= 0
        let mut p = LpProblem::new(3);
        p.set_objective_vector(&[2.0, 3.0, 1.0]).unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], 10.0)
            .unwrap();
        p.add_le_constraint(&[(0, 1.0), (1, 2.0)], 8.0).unwrap();
        p.add_le_constraint(&[(1, 1.0), (2, 3.0)], 9.0).unwrap();
        let sol = solve_expect_optimal(&p);
        // Optimum: x = 8, y = 0, z = 2  => 2*8 + 0 + 2 = 18.
        assert!(
            (sol.objective - 18.0).abs() < 1e-5,
            "objective {}",
            sol.objective
        );
    }
}
