//! Flickr-like and Twitter-like uncertain social networks (Table 1, top).
//!
//! The real datasets are not redistributable; these generators reproduce
//! their statistical shape (heavy-tailed degrees, edge-to-vertex ratio and
//! edge-probability distribution) at several scales so that every experiment
//! of the paper can be re-run on a laptop.  The `Paper` scale matches the
//! published vertex counts and densities and is only intended for long,
//! offline runs.

use rand::Rng;
use uncertain_graph::UncertainGraph;

use crate::powerlaw::preferential_attachment;
use crate::probability::ProbabilityModel;

/// Dataset scale.  Each scale fixes the vertex count and the average degree
/// of the generated graphs; the probability distributions are identical
/// across scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// A few hundred vertices — unit tests and doc examples.
    Tiny,
    /// ~1 000 vertices — the default for the experiment harness; every
    /// experiment finishes in minutes.
    #[default]
    Small,
    /// ~5 000 vertices — closer to the reduced Flickr instance the paper
    /// uses for its LP comparison.
    Medium,
    /// The published sizes (Flickr: 78 322 vertices / |E|/|V| ≈ 130,
    /// Twitter: 26 362 vertices / |E|/|V| ≈ 25).  Hours of compute; not run
    /// by default.
    Paper,
}

impl Scale {
    /// `(num_vertices, edges_per_vertex)` for a Flickr-shaped graph
    /// (|E|/|V| ≈ 130 at paper scale, reduced proportionally below).
    pub fn flickr_parameters(&self) -> (usize, usize) {
        match self {
            Scale::Tiny => (200, 8),
            Scale::Small => (1_000, 24),
            Scale::Medium => (5_000, 48),
            Scale::Paper => (78_322, 130),
        }
    }

    /// `(num_vertices, edges_per_vertex)` for a Twitter-shaped graph
    /// (|E|/|V| ≈ 25 at paper scale).
    pub fn twitter_parameters(&self) -> (usize, usize) {
        match self {
            Scale::Tiny => (200, 4),
            Scale::Small => (1_000, 10),
            Scale::Medium => (5_000, 18),
            Scale::Paper => (26_362, 25),
        }
    }

    /// Parses a scale name (`"tiny"`, `"small"`, `"medium"`, `"paper"`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Generates a Flickr-shaped uncertain graph: preferential-attachment
/// topology with the dense hub structure of the original (|E|/|V| ≈ 130 at
/// full scale) and low, skewed edge probabilities (mean ≈ 0.09).
pub fn flickr_like<R: Rng + ?Sized>(scale: Scale, rng: &mut R) -> UncertainGraph {
    let (n, m) = scale.flickr_parameters();
    preferential_attachment(n, m, ProbabilityModel::FlickrLike, rng)
}

/// Generates a Twitter-shaped uncertain graph: sparser than Flickr
/// (|E|/|V| ≈ 25) with higher edge probabilities (mean ≈ 0.15) and a
/// deterministic tail.
pub fn twitter_like<R: Rng + ?Sized>(scale: Scale, rng: &mut R) -> UncertainGraph {
    let (n, m) = scale.twitter_parameters();
    preferential_attachment(n, m, ProbabilityModel::TwitterLike, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::GraphStatistics;

    #[test]
    fn flickr_like_matches_target_statistics_at_small_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = flickr_like(Scale::Small, &mut rng);
        let stats = GraphStatistics::compute(&g);
        assert_eq!(stats.num_vertices, 1_000);
        assert!(
            stats.edge_vertex_ratio > 20.0,
            "ratio {}",
            stats.edge_vertex_ratio
        );
        assert!((stats.mean_edge_probability - 0.09).abs() < 0.03);
        assert!(stats.support_connected);
    }

    #[test]
    fn twitter_like_is_sparser_but_more_certain_than_flickr_like() {
        let mut rng = SmallRng::seed_from_u64(2);
        let flickr = flickr_like(Scale::Small, &mut rng);
        let twitter = twitter_like(Scale::Small, &mut rng);
        let fs = GraphStatistics::compute(&flickr);
        let ts = GraphStatistics::compute(&twitter);
        assert!(ts.edge_vertex_ratio < fs.edge_vertex_ratio);
        assert!(ts.mean_edge_probability > fs.mean_edge_probability);
        assert!((ts.mean_edge_probability - 0.15).abs() < 0.04);
    }

    #[test]
    fn tiny_scale_graphs_are_cheap_and_connected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = flickr_like(Scale::Tiny, &mut rng);
        assert_eq!(g.num_vertices(), 200);
        assert!(g.support_is_connected());
        let g = twitter_like(Scale::Tiny, &mut rng);
        assert_eq!(g.num_vertices(), 200);
        assert!(g.support_is_connected());
    }

    #[test]
    fn scale_parsing_round_trips() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("SMALL"), Some(Scale::Small));
        assert_eq!(Scale::parse("Medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("galactic"), None);
        assert_eq!(Scale::default(), Scale::Small);
    }

    #[test]
    fn paper_scale_parameters_match_table_1() {
        let (n, m) = Scale::Paper.flickr_parameters();
        assert_eq!(n, 78_322);
        assert_eq!(m, 130);
        let (n, m) = Scale::Paper.twitter_parameters();
        assert_eq!(n, 26_362);
        assert_eq!(m, 25);
    }
}
