//! The density-sweep synthetic datasets of Table 1 (bottom).
//!
//! The paper takes a 1 000-vertex induced subgraph of Flickr and adds edges
//! between uniformly random vertex pairs until the graph reaches 15 %, 30 %,
//! 50 % and 90 % of the complete graph, drawing the new probabilities from
//! the same distribution as the original.  [`densified`] reproduces exactly
//! that construction; [`density_sweep`] produces the standard four-point
//! sweep used in Figures 7, 8(c) and 11.

use rand::Rng;
use uncertain_graph::{UncertainGraph, UncertainGraphBuilder};

use crate::probability::ProbabilityModel;

/// Adds uniformly random edges to `base` until it contains
/// `density · |V|(|V|−1)/2` edges; new probabilities are drawn from
/// `probabilities`.
///
/// If the base graph already meets or exceeds the requested density it is
/// returned unchanged (the construction only ever *adds* edges).
///
/// # Panics
/// Panics if `density` is not in `(0, 1]`.
pub fn densified<R: Rng + ?Sized>(
    base: &UncertainGraph,
    density: f64,
    probabilities: ProbabilityModel,
    rng: &mut R,
) -> UncertainGraph {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let n = base.num_vertices();
    let complete = n * (n - 1) / 2;
    let target = (density * complete as f64).round() as usize;
    if target <= base.num_edges() {
        return base.clone();
    }
    let mut builder = UncertainGraphBuilder::with_capacity(n, target);
    for e in base.edges() {
        builder
            .add_edge(e.u, e.v, e.p)
            .expect("base edges are valid");
    }
    while builder.num_edges() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let _ = builder
            .add_edge_if_absent(u, v, probabilities.sample(rng))
            .expect("generated edges are valid");
    }
    builder.build()
}

/// The paper's four-density sweep (15 %, 30 %, 50 %, 90 % of the complete
/// graph) built from one common base graph.  Returns `(density, graph)`
/// pairs in increasing density order.
pub fn density_sweep<R: Rng + ?Sized>(
    base: &UncertainGraph,
    probabilities: ProbabilityModel,
    rng: &mut R,
) -> Vec<(f64, UncertainGraph)> {
    [0.15, 0.30, 0.50, 0.90]
        .iter()
        .map(|&d| (d, densified(base, d, probabilities, rng)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::preferential_attachment;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::GraphStatistics;

    fn base(seed: u64, n: usize) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        preferential_attachment(n, 6, ProbabilityModel::FlickrLike, &mut rng)
    }

    #[test]
    fn densified_reaches_the_requested_density_and_keeps_base_edges() {
        let base = base(1, 100);
        let mut rng = SmallRng::seed_from_u64(2);
        let dense = densified(&base, 0.3, ProbabilityModel::FlickrLike, &mut rng);
        let complete = 100 * 99 / 2;
        assert_eq!(dense.num_edges(), (0.3 * complete as f64).round() as usize);
        // every base edge survives with its probability
        for e in base.edges() {
            let id = dense.find_edge(e.u, e.v).expect("base edge kept");
            assert!((dense.edge_probability(id) - e.p).abs() < 1e-12);
        }
        let stats = GraphStatistics::compute(&dense);
        assert!((stats.density - 0.3).abs() < 0.01);
    }

    #[test]
    fn density_sweep_produces_increasing_densities_with_similar_probabilities() {
        let base = base(3, 80);
        let mut rng = SmallRng::seed_from_u64(4);
        let sweep = density_sweep(&base, ProbabilityModel::FlickrLike, &mut rng);
        assert_eq!(sweep.len(), 4);
        let mut last_edges = 0;
        for (density, g) in &sweep {
            assert!(g.num_edges() > last_edges);
            last_edges = g.num_edges();
            let stats = GraphStatistics::compute(g);
            assert!((stats.density - density).abs() < 0.02);
            assert!((stats.mean_edge_probability - 0.09).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn invalid_density_panics() {
        let base = base(5, 20);
        let mut rng = SmallRng::seed_from_u64(1);
        densified(&base, 1.5, ProbabilityModel::FlickrLike, &mut rng);
    }

    #[test]
    fn base_denser_than_target_is_returned_unchanged() {
        let base = base(6, 30); // 30 vertices, ~150+ edges out of 435 possible
        let mut rng = SmallRng::seed_from_u64(1);
        let result = densified(&base, 0.05, ProbabilityModel::FlickrLike, &mut rng);
        assert_eq!(result.num_edges(), base.num_edges());
        assert_eq!(result, base);
    }
}
