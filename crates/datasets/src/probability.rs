//! Edge-probability distributions matched to the paper's datasets.
//!
//! * Flickr probabilities come from a Jaccard-style similarity of user
//!   interests: most edges are very unlikely (mean 0.09) with a long thin
//!   tail towards 1.
//! * Twitter probabilities model user-to-user influence: the mean is higher
//!   (0.15) and a noticeable fraction of edges is (almost) certain, which is
//!   why the paper observes that Twitter backbones become "almost
//!   deterministic" at small `α`.
//!
//! Both are modelled with simple transformed-uniform mixtures; the generators
//! only need the mean and the qualitative skew to reproduce the paper's
//! behaviour.

use rand::Rng;

/// A distribution over edge probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbabilityModel {
    /// Every edge gets the same probability.
    Fixed(f64),
    /// Uniform on `[low, high]` (clamped to `(0, 1]`).
    Uniform {
        /// Lower bound (exclusive of 0 after clamping).
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// Skewed low-probability distribution matched to Flickr
    /// (`E[p] ≈ 0.09`): `p = 0.01 + 0.6·u³` for `u ~ U(0,1)`, occasionally
    /// boosted to model the few strong ties.
    FlickrLike,
    /// Higher-mean distribution matched to Twitter (`E[p] ≈ 0.15`) with a
    /// deterministic tail: with probability 0.05 the edge is nearly certain,
    /// otherwise `p = 0.02 + 0.35·u²`.
    TwitterLike,
}

impl ProbabilityModel {
    /// Draws one probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let p = match *self {
            ProbabilityModel::Fixed(p) => p,
            ProbabilityModel::Uniform { low, high } => {
                if high > low {
                    rng.gen_range(low..=high)
                } else {
                    low
                }
            }
            ProbabilityModel::FlickrLike => {
                let u: f64 = rng.gen();
                let base = 0.01 + 0.27 * u * u * u;
                if rng.gen::<f64>() < 0.02 {
                    // a few strong ties
                    0.5 + 0.5 * rng.gen::<f64>()
                } else {
                    base
                }
            }
            ProbabilityModel::TwitterLike => {
                if rng.gen::<f64>() < 0.05 {
                    0.9 + 0.1 * rng.gen::<f64>()
                } else {
                    let u: f64 = rng.gen();
                    0.02 + 0.28 * u * u
                }
            }
        };
        p.clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Draws `count` probabilities.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<f64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Approximate mean of the distribution (analytical where easy, otherwise
    /// the design target from Table 1 of the paper).
    pub fn approximate_mean(&self) -> f64 {
        match *self {
            ProbabilityModel::Fixed(p) => p,
            ProbabilityModel::Uniform { low, high } => (low + high) / 2.0,
            ProbabilityModel::FlickrLike => 0.09,
            ProbabilityModel::TwitterLike => 0.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical_mean(model: ProbabilityModel, samples: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(99);
        model.sample_many(samples, &mut rng).iter().sum::<f64>() / samples as f64
    }

    #[test]
    fn all_models_produce_valid_probabilities() {
        let mut rng = SmallRng::seed_from_u64(1);
        for model in [
            ProbabilityModel::Fixed(0.3),
            ProbabilityModel::Uniform {
                low: 0.1,
                high: 0.9,
            },
            ProbabilityModel::FlickrLike,
            ProbabilityModel::TwitterLike,
        ] {
            for _ in 0..5_000 {
                let p = model.sample(&mut rng);
                assert!(p > 0.0 && p <= 1.0, "{model:?} produced {p}");
            }
        }
    }

    #[test]
    fn flickr_model_matches_the_papers_mean_probability() {
        // Table 1: E[p_e] = 0.09 for Flickr.
        let mean = empirical_mean(ProbabilityModel::FlickrLike, 200_000);
        assert!((mean - 0.09).abs() < 0.03, "mean {mean}");
        // strongly skewed: the median is far below the mean
        let mut rng = SmallRng::seed_from_u64(5);
        let mut samples = ProbabilityModel::FlickrLike.sample_many(10_001, &mut rng);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(samples[5_000] < mean);
    }

    #[test]
    fn twitter_model_matches_the_papers_mean_probability() {
        // Table 1: E[p_e] = 0.15 for Twitter.
        let mean = empirical_mean(ProbabilityModel::TwitterLike, 200_000);
        assert!((mean - 0.15).abs() < 0.04, "mean {mean}");
        // and it has a deterministic tail
        let mut rng = SmallRng::seed_from_u64(5);
        let near_one = ProbabilityModel::TwitterLike
            .sample_many(20_000, &mut rng)
            .iter()
            .filter(|&&p| p > 0.9)
            .count();
        assert!(
            near_one > 500,
            "expected a deterministic tail, got {near_one}"
        );
    }

    #[test]
    fn fixed_and_uniform_models_behave_as_configured() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(ProbabilityModel::Fixed(0.4).sample(&mut rng), 0.4);
        let mean = empirical_mean(
            ProbabilityModel::Uniform {
                low: 0.2,
                high: 0.6,
            },
            50_000,
        );
        assert!((mean - 0.4).abs() < 0.01);
        assert_eq!(
            ProbabilityModel::Uniform {
                low: 0.5,
                high: 0.5
            }
            .sample(&mut rng),
            0.5
        );
        assert!((ProbabilityModel::Fixed(0.4).approximate_mean() - 0.4).abs() < 1e-12);
        assert!(
            (ProbabilityModel::Uniform {
                low: 0.2,
                high: 0.6
            }
            .approximate_mean()
                - 0.4)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn samples_are_reproducible_for_a_fixed_seed() {
        let a = ProbabilityModel::FlickrLike.sample_many(100, &mut SmallRng::seed_from_u64(3));
        let b = ProbabilityModel::FlickrLike.sample_many(100, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
