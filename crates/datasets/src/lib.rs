//! # ugs-datasets
//!
//! Dataset substrate for the experimental evaluation.
//!
//! The paper evaluates on two real uncertain graphs — Flickr (78 322
//! vertices, 10.2 M edges, mean probability 0.09) and Twitter (26 362
//! vertices, 664 K edges, mean probability 0.15) — plus four synthetic
//! graphs obtained by densifying a 1 000-vertex induced subgraph of Flickr.
//! Neither real dataset is redistributable, so this crate provides synthetic
//! generators that reproduce their *statistical shape*: the degree
//! distribution family (heavy-tailed, preferential attachment), the
//! edge-to-vertex ratio and the edge-probability distribution (low-mean
//! skewed for Flickr, higher-mean with a deterministic tail for Twitter).
//! All of the paper's qualitative findings depend only on these properties
//! (see DESIGN.md §3 for the substitution argument).
//!
//! * [`ProbabilityModel`] — edge-probability distributions matched to the
//!   datasets' reported means,
//! * [`powerlaw`] — preferential-attachment topology generator,
//! * [`social`] — `flickr_like` / `twitter_like` at several [`Scale`]s,
//! * [`synthetic`] — the density-sweep construction of Table 1 (bottom),
//! * [`forest_fire`] — Forest Fire subgraph sampling \[22\], used by the paper
//!   to produce the reduced Flickr instance on which LP is feasible,
//! * [`er`] — Erdős–Rényi graphs for tests and micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod er;
pub mod forest_fire;
pub mod powerlaw;
pub mod probability;
pub mod social;
pub mod synthetic;

pub use er::erdos_renyi;
pub use forest_fire::forest_fire_sample;
pub use powerlaw::preferential_attachment;
pub use probability::ProbabilityModel;
pub use social::{flickr_like, twitter_like, Scale};
pub use synthetic::{densified, density_sweep};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::er::erdos_renyi;
    pub use crate::forest_fire::forest_fire_sample;
    pub use crate::powerlaw::preferential_attachment;
    pub use crate::probability::ProbabilityModel;
    pub use crate::social::{flickr_like, twitter_like, Scale};
    pub use crate::synthetic::{densified, density_sweep};
}
