//! Preferential-attachment (Barabási–Albert style) topology generator.
//!
//! Social networks like Flickr and Twitter have heavy-tailed degree
//! distributions with pronounced hubs; preferential attachment reproduces
//! that shape.  The generator attaches each new vertex to `edges_per_vertex`
//! existing vertices chosen proportionally to their current degree (with
//! rejection of duplicates), yielding a connected simple graph with
//! `≈ n · edges_per_vertex` edges.

use rand::Rng;
use uncertain_graph::{UncertainGraph, UncertainGraphBuilder};

use crate::probability::ProbabilityModel;

/// Generates a preferential-attachment uncertain graph.
///
/// * `num_vertices` — number of vertices (≥ 2),
/// * `edges_per_vertex` — edges added per arriving vertex (`m` in the BA
///   model); the result has roughly `num_vertices · edges_per_vertex` edges,
/// * `probabilities` — distribution of the edge probabilities.
///
/// # Panics
/// Panics if `num_vertices < 2` or `edges_per_vertex == 0`.
pub fn preferential_attachment<R: Rng + ?Sized>(
    num_vertices: usize,
    edges_per_vertex: usize,
    probabilities: ProbabilityModel,
    rng: &mut R,
) -> UncertainGraph {
    assert!(num_vertices >= 2, "need at least two vertices");
    assert!(edges_per_vertex >= 1, "need at least one edge per vertex");
    let m = edges_per_vertex;
    let mut builder = UncertainGraphBuilder::with_capacity(num_vertices, num_vertices * m);
    // Repeated-endpoint list: choosing a uniform element is equivalent to
    // degree-proportional vertex selection.
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(2 * num_vertices * m);

    // Seed: a small clique over the first min(m+1, n) vertices so early
    // arrivals have enough attachment targets.
    let seed = (m + 1).min(num_vertices);
    for u in 0..seed {
        for v in (u + 1)..seed {
            builder
                .add_edge(u, v, probabilities.sample(rng))
                .expect("seed edges are valid");
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    for v in seed..num_vertices {
        let targets = m.min(v);
        let mut attached = 0usize;
        let mut attempts = 0usize;
        while attached < targets {
            attempts += 1;
            let target = if endpoint_pool.is_empty() || attempts > 50 * m {
                // Fallback: uniform choice (also breaks pathological rejection
                // loops on tiny graphs).
                rng.gen_range(0..v)
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if target == v || builder.contains_edge(v, target) {
                continue;
            }
            builder
                .add_edge(v, target, probabilities.sample(rng))
                .expect("generated edges are valid");
            endpoint_pool.push(v);
            endpoint_pool.push(target);
            attached += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn produces_connected_simple_graph_of_expected_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = preferential_attachment(500, 4, ProbabilityModel::Fixed(0.5), &mut rng);
        assert_eq!(g.num_vertices(), 500);
        // seed clique C(5,2)=10 edges, then (500-5)*4 = 1980
        assert_eq!(g.num_edges(), 10 + 495 * 4);
        assert!(g.support_is_connected());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = preferential_attachment(2_000, 3, ProbabilityModel::Fixed(0.5), &mut rng);
        let mut degrees: Vec<usize> = g.vertices().map(|u| g.degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let max_degree = degrees[0];
        let median = degrees[g.num_vertices() / 2];
        // Hubs: the maximum degree dwarfs the median degree.
        assert!(
            max_degree >= 8 * median,
            "max degree {max_degree} vs median {median} — not heavy tailed"
        );
    }

    #[test]
    fn probabilities_come_from_the_requested_model() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = preferential_attachment(300, 5, ProbabilityModel::FlickrLike, &mut rng);
        let mean = g.mean_edge_probability();
        assert!((mean - 0.09).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn tiny_graphs_are_handled() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = preferential_attachment(2, 1, ProbabilityModel::Fixed(1.0), &mut rng);
        assert_eq!(g.num_edges(), 1);
        let g = preferential_attachment(3, 5, ProbabilityModel::Fixed(1.0), &mut rng);
        assert!(g.support_is_connected());
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn zero_vertices_panic() {
        let mut rng = SmallRng::seed_from_u64(5);
        preferential_attachment(1, 2, ProbabilityModel::Fixed(0.5), &mut rng);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = preferential_attachment(
            100,
            3,
            ProbabilityModel::TwitterLike,
            &mut SmallRng::seed_from_u64(7),
        );
        let b = preferential_attachment(
            100,
            3,
            ProbabilityModel::TwitterLike,
            &mut SmallRng::seed_from_u64(7),
        );
        assert_eq!(
            uncertain_graph::io::to_json(&a).unwrap(),
            uncertain_graph::io::to_json(&b).unwrap()
        );
    }
}
