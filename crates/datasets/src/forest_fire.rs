//! Forest Fire subgraph sampling (Leskovec & Faloutsos, reference \[22\] of
//! the paper).
//!
//! The paper applies Forest Fire sampling to shrink the real graphs for
//! experiments that cannot terminate on the full datasets — most notably the
//! 5 000-vertex reduced Flickr instance on which the LP method is feasible
//! (Table 2, Figures 4–5).  The sampler repeatedly "burns" through the graph:
//! starting from a random seed vertex, each burned vertex ignites a
//! geometrically-distributed number of its unburned neighbours, recursing
//! until the fire dies out; new fires are started until the requested number
//! of vertices is burned.  The result is the induced uncertain subgraph on
//! the burned vertices.

use rand::Rng;
use uncertain_graph::{UncertainGraph, VertexId};

/// Samples an induced subgraph with `target_vertices` vertices using Forest
/// Fire sampling with forward-burning probability `burn_probability`
/// (the literature default is ≈ 0.7).
///
/// Returns the sampled graph together with the mapping from new vertex ids
/// to the original ids.
///
/// # Panics
/// Panics if `burn_probability` is not in `(0, 1)` or the graph has no
/// vertices.
pub fn forest_fire_sample<R: Rng + ?Sized>(
    g: &UncertainGraph,
    target_vertices: usize,
    burn_probability: f64,
    rng: &mut R,
) -> (UncertainGraph, Vec<VertexId>) {
    assert!(g.num_vertices() > 0, "cannot sample an empty graph");
    assert!(
        burn_probability > 0.0 && burn_probability < 1.0,
        "burn probability must be in (0, 1)"
    );
    let n = g.num_vertices();
    let target = target_vertices.min(n);
    let mut burned = vec![false; n];
    let mut burned_order: Vec<VertexId> = Vec::with_capacity(target);
    let mut queue: Vec<VertexId> = Vec::new();

    while burned_order.len() < target {
        // Ignite a new fire at a random unburned vertex.
        let seed = loop {
            let v = rng.gen_range(0..n);
            if !burned[v] {
                break v;
            }
        };
        burned[seed] = true;
        burned_order.push(seed);
        queue.push(seed);

        while let Some(v) = queue.pop() {
            if burned_order.len() >= target {
                break;
            }
            // Geometric(1 - p) number of neighbours to burn: keep drawing
            // while a biased coin comes up heads.
            let unburned: Vec<VertexId> = g
                .neighbors(v)
                .map(|(u, _, _)| u)
                .filter(|&u| !burned[u])
                .collect();
            if unburned.is_empty() {
                continue;
            }
            let mut to_burn = 0usize;
            while to_burn < unburned.len() && rng.gen::<f64>() < burn_probability {
                to_burn += 1;
            }
            // Burn a random subset of that size (the order of `unburned` is
            // arbitrary, so burning a random prefix needs a shuffle).
            let mut candidates = unburned;
            for i in (1..candidates.len()).rev() {
                let j = rng.gen_range(0..=i);
                candidates.swap(i, j);
            }
            for &u in candidates.iter().take(to_burn) {
                if burned_order.len() >= target {
                    break;
                }
                if !burned[u] {
                    burned[u] = true;
                    burned_order.push(u);
                    queue.push(u);
                }
            }
        }
    }

    let (subgraph, mapping) = g
        .induced_subgraph(&burned_order)
        .expect("burned vertices are valid");
    (subgraph, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::preferential_attachment;
    use crate::probability::ProbabilityModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn base(seed: u64) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        preferential_attachment(600, 5, ProbabilityModel::FlickrLike, &mut rng)
    }

    #[test]
    fn samples_the_requested_number_of_vertices() {
        let g = base(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let (sub, mapping) = forest_fire_sample(&g, 150, 0.7, &mut rng);
        assert_eq!(sub.num_vertices(), 150);
        assert_eq!(mapping.len(), 150);
        let unique: std::collections::HashSet<_> = mapping.iter().collect();
        assert_eq!(unique.len(), 150, "no vertex sampled twice");
    }

    #[test]
    fn sampled_graph_preserves_probabilities_of_induced_edges() {
        let g = base(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let (sub, mapping) = forest_fire_sample(&g, 100, 0.6, &mut rng);
        for e in sub.edges() {
            let (ou, ov) = (mapping[e.u], mapping[e.v]);
            let original = g
                .find_edge(ou, ov)
                .expect("induced edge exists in the original");
            assert!((g.edge_probability(original) - e.p).abs() < 1e-12);
        }
    }

    #[test]
    fn burning_keeps_locality_denser_than_uniform_sampling() {
        // Forest fire explores neighbourhoods, so the sampled subgraph keeps
        // a reasonable share of edges; a uniform vertex sample of a sparse
        // graph would be mostly isolated vertices.
        let g = base(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let (sub, _) = forest_fire_sample(&g, 200, 0.7, &mut rng);
        let mean_degree = 2.0 * sub.num_edges() as f64 / sub.num_vertices() as f64;
        assert!(
            mean_degree >= 1.0,
            "mean degree {mean_degree} too low for a burned sample"
        );
    }

    #[test]
    fn requesting_more_vertices_than_available_returns_everything() {
        let g = base(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let (sub, _) = forest_fire_sample(&g, 10_000, 0.5, &mut rng);
        assert_eq!(sub.num_vertices(), g.num_vertices());
        assert_eq!(sub.num_edges(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "burn probability")]
    fn invalid_burn_probability_panics() {
        let g = base(9);
        let mut rng = SmallRng::seed_from_u64(1);
        forest_fire_sample(&g, 10, 1.5, &mut rng);
    }
}
