//! Erdős–Rényi uncertain graphs (used by tests, property checks and
//! micro-benchmarks).

use rand::Rng;
use uncertain_graph::{UncertainGraph, UncertainGraphBuilder};

use crate::probability::ProbabilityModel;

/// Generates a `G(n, q)` Erdős–Rényi graph: every unordered vertex pair is an
/// edge independently with probability `q`, and every generated edge gets an
/// existence probability drawn from `probabilities`.
///
/// # Panics
/// Panics if `q` is not in `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    num_vertices: usize,
    q: f64,
    probabilities: ProbabilityModel,
    rng: &mut R,
) -> UncertainGraph {
    assert!((0.0..=1.0).contains(&q), "edge density must be in [0, 1]");
    let expected = (q * (num_vertices.saturating_sub(1) * num_vertices) as f64 / 2.0) as usize;
    let mut builder = UncertainGraphBuilder::with_capacity(num_vertices, expected);
    for u in 0..num_vertices {
        for v in (u + 1)..num_vertices {
            if rng.gen::<f64>() < q {
                builder
                    .add_edge(u, v, probabilities.sample(rng))
                    .expect("generated edges are valid");
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_concentrates_around_the_expectation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200;
        let q = 0.1;
        let g = erdos_renyi(n, q, ProbabilityModel::Fixed(0.5), &mut rng);
        let expected = q * (n * (n - 1) / 2) as f64;
        assert!((g.num_edges() as f64 - expected).abs() < 0.15 * expected);
        assert_eq!(g.num_vertices(), n);
    }

    #[test]
    fn extreme_densities_work() {
        let mut rng = SmallRng::seed_from_u64(2);
        let empty = erdos_renyi(20, 0.0, ProbabilityModel::Fixed(0.5), &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(20, 1.0, ProbabilityModel::Fixed(0.5), &mut rng);
        assert_eq!(full.num_edges(), 190);
    }

    #[test]
    #[should_panic(expected = "edge density")]
    fn invalid_density_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        erdos_renyi(10, 1.2, ProbabilityModel::Fixed(0.5), &mut rng);
    }
}
