//! Proof of the engine's zero-allocation contract: a counting global
//! allocator observes the steady-state sample–materialise cycle and must see
//! **zero** heap allocations per world, for both sampling methods — while
//! the legacy driver allocates several times per world.
//!
//! This is the only place in the workspace that uses `unsafe` (delegating
//! `GlobalAlloc` to the system allocator); every library crate remains
//! `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::{UncertainGraph, WorldSampler};

use graph_algos::DeterministicGraph;
use ugs_queries::engine::{SampleMethod, WorldEngine};

/// Counts every allocation while delegating to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn toy_graph(p: f64) -> UncertainGraph {
    // A ring plus chords: 64 vertices, 96 edges.
    let n = 64usize;
    let mut edges = Vec::new();
    for u in 0..n {
        edges.push((u, (u + 1) % n, p));
        if u % 2 == 0 && u < n / 2 {
            edges.push((u, u + n / 2, p));
        }
    }
    UncertainGraph::from_edges(n, edges).unwrap()
}

#[test]
fn engine_steady_state_performs_zero_allocations_per_world() {
    for (method, p) in [
        (SampleMethod::Skip, 0.1),
        (SampleMethod::Skip, 0.5),
        (SampleMethod::PerEdge, 0.5),
        (SampleMethod::PerEdge, 0.9),
    ] {
        let g = toy_graph(p);
        let engine = WorldEngine::new(&g).with_method(method);
        let mut scratch = engine.make_scratch();
        let mut rng = SmallRng::seed_from_u64(7);
        // Warm-up: first worlds may grow the scratch buffers up to capacity.
        for _ in 0..50 {
            engine.sample_world(&mut rng, &mut scratch);
        }
        let before = allocations();
        let mut total_edges = 0usize;
        for _ in 0..2_000 {
            total_edges += engine.sample_world(&mut rng, &mut scratch).num_edges();
        }
        let after = allocations();
        assert!(total_edges > 0, "worlds must not be empty at p = {p}");
        assert_eq!(
            after - before,
            0,
            "{method:?} at p = {p}: expected zero allocations over 2000 worlds"
        );
    }
}

#[test]
fn legacy_driver_allocates_every_world() {
    // Sanity check that the counter actually observes the workload: the
    // pre-engine path allocates a mask + CSR buffers for every single world.
    let g = toy_graph(0.5);
    let sampler = WorldSampler::new();
    let mut rng = SmallRng::seed_from_u64(7);
    let worlds = 200usize;
    let before = allocations();
    for _ in 0..worlds {
        let world = sampler.sample(&g, &mut rng);
        let dg = DeterministicGraph::from_world(&g, &world);
        assert!(dg.num_vertices() == g.num_vertices());
    }
    let after = allocations();
    assert!(
        after - before >= 4 * worlds,
        "legacy path should allocate several times per world, saw {} over {worlds}",
        after - before
    );
}
