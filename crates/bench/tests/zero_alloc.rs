//! Proof of the engine's zero-allocation contract: a counting global
//! allocator observes the steady-state sample–materialise cycle and must see
//! **zero** heap allocations per world, for both sampling methods — while
//! the legacy driver allocates several times per world.
//!
//! This is the only place in the workspace that uses `unsafe` (delegating
//! `GlobalAlloc` to the system allocator); every library crate remains
//! `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::{UncertainGraph, WorldSampler};

use graph_algos::DeterministicGraph;
use ugs_core::prelude::*;
use ugs_queries::batch::{EdgeFrequencyObserver, QueryBatch};
use ugs_queries::components::DegreeHistogramObserver;
use ugs_queries::engine::{SampleMethod, WorldEngine};
use ugs_queries::sharded::ShardedWorldEngine;
use ugs_queries::MonteCarlo;
use uncertain_graph::GraphPartition;

/// Counts every allocation while delegating to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `measure` up to three times and reports the first zero (or the last
/// non-zero count).  The harness main thread may lazily allocate (e.g. its
/// blocking-recv machinery) inside a measurement window exactly once per
/// process; a genuine per-world allocation shows up in *every* attempt,
/// while that one-time noise settles to zero on re-measurement.
fn settles_to_zero(mut measure: impl FnMut() -> usize) -> usize {
    let mut last = 0;
    for _ in 0..3 {
        last = measure();
        if last == 0 {
            return 0;
        }
    }
    last
}

fn toy_graph(p: f64) -> UncertainGraph {
    // A ring plus chords: 64 vertices, 96 edges.
    let n = 64usize;
    let mut edges = Vec::new();
    for u in 0..n {
        edges.push((u, (u + 1) % n, p));
        if u % 2 == 0 && u < n / 2 {
            edges.push((u, u + n / 2, p));
        }
    }
    UncertainGraph::from_edges(n, edges).unwrap()
}

/// All phases run inside **one** `#[test]` (see bottom of file): the counter
/// is process-global, so concurrently running tests would pollute each
/// other's measurement windows.
fn engine_steady_state_performs_zero_allocations_per_world() {
    for (method, p) in [
        (SampleMethod::Skip, 0.1),
        (SampleMethod::Skip, 0.5),
        (SampleMethod::PerEdge, 0.5),
        (SampleMethod::PerEdge, 0.9),
    ] {
        let g = toy_graph(p);
        let engine = WorldEngine::new(&g).with_method(method);
        let mut scratch = engine.make_scratch();
        let mut rng = SmallRng::seed_from_u64(7);
        // Warm-up: first worlds may grow the scratch buffers up to capacity.
        for _ in 0..50 {
            engine.sample_world(&mut rng, &mut scratch);
        }
        let mut total_edges = 0usize;
        let leaked = settles_to_zero(|| {
            let before = allocations();
            for _ in 0..2_000 {
                total_edges += engine.sample_world(&mut rng, &mut scratch).num_edges();
            }
            allocations() - before
        });
        assert!(total_edges > 0, "worlds must not be empty at p = {p}");
        assert_eq!(
            leaked, 0,
            "{method:?} at p = {p}: expected zero allocations over 2000 worlds"
        );
    }
}

/// Runs a two-observer batch (degree histogram + edge frequencies — both
/// fully allocation-free per world, observer buffers *and* kernels) over
/// `worlds` worlds and returns the number of heap allocations the whole run
/// performed.  Observers whose kernels allocate in `graph-algos` (e.g.
/// `connected_components`' labels vector) are deliberately excluded: that
/// is a kernel cost shared with the standalone path, not driver overhead.
fn batch_allocations(
    g: &UncertainGraph,
    method: SampleMethod,
    threads: usize,
    worlds: usize,
) -> usize {
    let mc = MonteCarlo::worlds(worlds)
        .with_method(method)
        .with_threads(threads);
    let mut batch = QueryBatch::new(g, &mc);
    let h_hist = batch.register(DegreeHistogramObserver::new(g));
    let h_freq = batch.register(EdgeFrequencyObserver::new(g));
    let mut rng = SmallRng::seed_from_u64(7);
    let before = allocations();
    let mut results = batch.run(&mut rng);
    let after = allocations();
    let histogram = results.take(h_hist);
    let frequencies = results.take(h_freq);
    assert!(histogram.iter().sum::<f64>() > 0.0);
    assert!(frequencies.iter().sum::<f64>() > 0.0);
    after - before
}

fn batch_driver_steady_state_is_zero_allocation_with_two_observers() {
    // The batch driver's per-run setup (engine, scratch, observer clones,
    // worker spawns) allocates a fixed amount independent of the world
    // count; the steady-state world loop — sample, materialise, dispatch to
    // every registered observer — must allocate nothing.  So a run over
    // 4050 worlds must perform *exactly* as many allocations as a run over
    // 50 worlds: the 4000 extra worlds are free.
    for (method, p) in [
        (SampleMethod::Skip, 0.1),
        (SampleMethod::Skip, 0.5),
        (SampleMethod::PerEdge, 0.5),
    ] {
        let g = toy_graph(p);
        for threads in [1, 2] {
            // A genuinely per-world allocation makes the long run beat the
            // short one in every attempt; one-time harness noise does not.
            let leaked = settles_to_zero(|| {
                let short = batch_allocations(&g, method, threads, 50);
                let long = batch_allocations(&g, method, threads, 4_050);
                long.saturating_sub(short)
            });
            assert_eq!(
                leaked, 0,
                "{method:?} p={p} threads={threads}: expected zero allocations \
                 per world in steady state ({leaked} extra over 4000 extra worlds)"
            );
        }
    }
}

/// Per-shard steady state: a worker that owns **one** shard of a
/// partitioned graph (replaying the full edge stream, materialising only
/// its shard plus the incident cut edges) must sample shard-worlds with
/// zero heap allocations once its scratch is warm — the memory contract the
/// distributed direction relies on.
fn sharded_single_shard_steady_state_is_zero_allocation() {
    for (method, p) in [(SampleMethod::Skip, 0.1), (SampleMethod::PerEdge, 0.5)] {
        let g = toy_graph(p);
        let partition = GraphPartition::contiguous(&g, 3).expect("valid partition");
        let engine = ShardedWorldEngine::new(&g, &partition).with_method(method);
        for shard in 0..3 {
            let mut scratch = engine.make_shard_scratch(shard);
            let mut rng = SmallRng::seed_from_u64(7);
            // Warm-up: grow every buffer to capacity.
            for _ in 0..50 {
                engine.sample_shard_world(&mut rng, &mut scratch);
            }
            let mut total_edges = 0usize;
            let leaked = settles_to_zero(|| {
                let before = allocations();
                for _ in 0..2_000 {
                    total_edges += engine
                        .sample_shard_world(&mut rng, &mut scratch)
                        .num_edges();
                    total_edges += scratch.present_cuts().len();
                }
                allocations() - before
            });
            assert!(total_edges > 0, "shard {shard} must see edges at p = {p}");
            assert_eq!(
                leaked, 0,
                "{method:?} p={p} shard={shard}: expected zero allocations \
                 per sampled shard-world"
            );
        }
    }
}

/// Same long-vs-short argument as the monolithic batch proof, through the
/// sharded source: an all-shard batch with the two allocation-free count
/// observers must not allocate per world in steady state (sample, scatter,
/// boundary pass, per-shard materialisation, observer dispatch).
fn sharded_batch_allocations(
    g: &UncertainGraph,
    partition: &GraphPartition,
    method: SampleMethod,
    threads: usize,
    worlds: usize,
) -> usize {
    let engine = ShardedWorldEngine::new(g, partition).with_method(method);
    let mut batch = QueryBatch::from_sharded(&engine, worlds, threads);
    let h_hist = batch.register(DegreeHistogramObserver::new(g));
    let h_freq = batch.register(EdgeFrequencyObserver::new(g));
    let mut rng = SmallRng::seed_from_u64(7);
    let before = allocations();
    let mut results = batch.run(&mut rng);
    let after = allocations();
    let histogram = results.take(h_hist);
    let frequencies = results.take(h_freq);
    assert!(histogram.iter().sum::<f64>() > 0.0);
    assert!(frequencies.iter().sum::<f64>() > 0.0);
    after - before
}

fn sharded_batch_steady_state_is_zero_allocation() {
    for (method, p) in [(SampleMethod::Skip, 0.1), (SampleMethod::PerEdge, 0.5)] {
        let g = toy_graph(p);
        let partition = GraphPartition::contiguous(&g, 3).expect("valid partition");
        for threads in [1, 2] {
            let leaked = settles_to_zero(|| {
                let short = sharded_batch_allocations(&g, &partition, method, threads, 50);
                let long = sharded_batch_allocations(&g, &partition, method, threads, 4_050);
                long.saturating_sub(short)
            });
            assert_eq!(
                leaked, 0,
                "{method:?} p={p} threads={threads}: expected zero allocations \
                 per sharded world in steady state"
            );
        }
    }
}

/// A fixed backbone over a *heterogeneous* ring-plus-chords graph for the
/// sparsifier phases.  The varied probabilities keep the optimisers from
/// converging bitwise within the iteration caps (uniform probabilities make
/// the toy graph so symmetric that `EMD` reaches an exact fixed point in two
/// rounds, which would void the long-vs-short proof).
fn sparsifier_fixture(alpha: f64) -> (uncertain_graph::UncertainGraph, Vec<usize>) {
    let n = 64usize;
    let mut edges = Vec::new();
    let p_of = |index: usize| 0.1 + 0.8 * ((index * 7919 % 97) as f64 / 97.0);
    for u in 0..n {
        edges.push((u, (u + 1) % n, p_of(edges.len())));
        if u % 2 == 0 && u < n / 2 {
            edges.push((u, u + n / 2, p_of(edges.len())));
        }
    }
    let g = UncertainGraph::from_edges(n, edges).unwrap();
    let mut rng = SmallRng::seed_from_u64(11);
    let backbone = ugs_core::build_backbone(&g, alpha, &BackboneConfig::spanning(), &mut rng)
        .expect("backbone builds");
    (g, backbone)
}

/// Steady-state `GDB` sweeps with warm scratch must allocate nothing: a run
/// capped at many sweeps performs exactly as many allocations as a run
/// capped at few sweeps (the extra sweeps are free).  `tolerance: 0` forces
/// the caps to bind, which the iteration asserts double-check.
fn gdb_steady_state_sweeps_are_zero_allocation() {
    let (g, backbone) = sparsifier_fixture(0.6);
    let mut scratch = CoreScratch::new();
    let config_with = |max_iterations: usize| GdbConfig {
        tolerance: 0.0,
        max_iterations,
        engine: Engine::Indexed,
        ..Default::default()
    };
    let (short_cap, long_cap) = (2usize, 22usize);
    // Warm-up with the long cap so every buffer reaches its final capacity.
    let warm =
        ugs_core::gradient_descent_assign_with(&g, &backbone, &config_with(long_cap), &mut scratch)
            .expect("gdb runs");
    assert_eq!(warm.iterations, long_cap, "cap must bind for the proof");
    let mut count = |cap: usize| {
        let before = allocations();
        let result =
            ugs_core::gradient_descent_assign_with(&g, &backbone, &config_with(cap), &mut scratch)
                .expect("gdb runs");
        let after = allocations();
        assert_eq!(result.iterations, cap);
        after - before
    };
    let leaked = settles_to_zero(|| {
        let short = count(short_cap);
        let long = count(long_cap);
        long.saturating_sub(short)
    });
    assert_eq!(
        leaked,
        0,
        "GDB: expected zero allocations per steady-state sweep ({leaked} extra \
         over {} extra sweeps)",
        long_cap - short_cap
    );
}

/// Steady-state `EMD` E-phase + M-phase iterations with warm scratch must
/// allocate nothing, by the same long-vs-short argument.
fn emd_steady_state_iterations_are_zero_allocation() {
    let (g, backbone) = sparsifier_fixture(0.8);
    let mut scratch = CoreScratch::new();
    let config_with = |max_iterations: usize| EmdConfig {
        tolerance: 0.0,
        max_iterations,
        engine: Engine::Indexed,
        gdb: GdbConfig {
            tolerance: 0.0,
            max_iterations: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let (short_cap, long_cap) = (1usize, 4usize);
    let warm = ugs_core::expectation_maximization_sparsify_with(
        &g,
        &backbone,
        &config_with(long_cap),
        &mut scratch,
    )
    .expect("emd runs");
    assert_eq!(warm.iterations, long_cap, "cap must bind for the proof");
    let mut count = |cap: usize| {
        let before = allocations();
        let result = ugs_core::expectation_maximization_sparsify_with(
            &g,
            &backbone,
            &config_with(cap),
            &mut scratch,
        )
        .expect("emd runs");
        let after = allocations();
        assert_eq!(result.iterations, cap);
        after - before
    };
    let leaked = settles_to_zero(|| {
        let short = count(short_cap);
        let long = count(long_cap);
        long.saturating_sub(short)
    });
    assert_eq!(
        leaked,
        0,
        "EMD: expected zero allocations per steady-state EM iteration ({leaked} \
         extra over {} extra iterations)",
        long_cap - short_cap
    );
}

fn legacy_driver_allocates_every_world() {
    // Sanity check that the counter actually observes the workload: the
    // pre-engine path allocates a mask + CSR buffers for every single world.
    let g = toy_graph(0.5);
    let sampler = WorldSampler::new();
    let mut rng = SmallRng::seed_from_u64(7);
    let worlds = 200usize;
    let before = allocations();
    for _ in 0..worlds {
        let world = sampler.sample(&g, &mut rng);
        let dg = DeterministicGraph::from_world(&g, &world);
        assert!(dg.num_vertices() == g.num_vertices());
    }
    let after = allocations();
    assert!(
        after - before >= 4 * worlds,
        "legacy path should allocate several times per world, saw {} over {worlds}",
        after - before
    );
}

#[test]
fn zero_allocation_contract() {
    // One test, seven phases, so nothing else allocates during the exact
    // counting windows (libtest runs `#[test]` functions concurrently and
    // the counter is process-global).
    engine_steady_state_performs_zero_allocations_per_world();
    batch_driver_steady_state_is_zero_allocation_with_two_observers();
    sharded_single_shard_steady_state_is_zero_allocation();
    sharded_batch_steady_state_is_zero_allocation();
    gdb_steady_state_sweeps_are_zero_allocation();
    emd_steady_state_iterations_are_zero_allocation();
    legacy_driver_allocates_every_world();
}
