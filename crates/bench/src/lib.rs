//! # ugs-bench
//!
//! Experiment harness regenerating **every table and figure** of the paper's
//! evaluation (Section 6), plus criterion micro-benchmarks for the runtime
//! claims.
//!
//! * The accuracy/entropy/variance experiments live in [`experiments`]; each
//!   `run_*` function corresponds to one table or figure and returns
//!   [`ugs_metrics::ExperimentReport`]s whose rows/series match what the
//!   paper plots.  The thin binaries in `src/bin/exp_*.rs` print them.
//! * The criterion benches under `benches/` time the individual components
//!   (sparsifiers, Monte-Carlo queries, metrics, generators, ablations) at a
//!   small scale so `cargo bench` terminates quickly.
//!
//! The real Flickr/Twitter datasets are replaced by the statistical
//! look-alikes from `ugs-datasets` (see `DESIGN.md` §3); experiments default
//! to the `small` scale so a full sweep finishes on a laptop.  Set
//! `UGS_SCALE=tiny|small|medium|paper` (or pass `--scale <name>` to the
//! binaries) to change the scale, and `UGS_SEED` to change the RNG seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_baselines::prelude::*;
use ugs_core::prelude::*;
use ugs_datasets::prelude::*;
use uncertain_graph::UncertainGraph;

/// Knobs shared by every experiment: dataset scale, Monte-Carlo effort and
/// sweep ranges, sized so the default (`small`) run finishes in minutes and
/// the `tiny` run in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset scale.
    pub scale: Scale,
    /// Sparsification ratios, in percent (the paper sweeps 8–64 %).
    pub alphas_percent: Vec<f64>,
    /// Worlds per Monte-Carlo query evaluation (the paper uses 500).
    pub num_worlds: usize,
    /// Vertex pairs for SP / RL queries (the paper uses 1 000).
    pub num_pairs: usize,
    /// Random cuts for the cut-discrepancy MAE (the paper uses 1 000 per
    /// cardinality; we sample this many cuts with random cardinalities).
    pub num_cuts: usize,
    /// Repetitions of each estimator for the variance experiment
    /// (the paper uses 100).
    pub variance_repetitions: usize,
    /// Worlds per estimator run inside the variance experiment.
    pub variance_worlds: usize,
    /// Number of vertices of the Forest-Fire-reduced graph used by the
    /// LP-feasible experiments (Table 2, Figures 4–5).
    pub reduced_vertices: usize,
    /// Number of vertices of the base graph for the density sweep.
    pub density_base_vertices: usize,
    /// Base RNG seed; every experiment derives its own stream from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Configuration for a given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => ExperimentConfig {
                scale,
                alphas_percent: vec![8.0, 16.0, 32.0, 64.0],
                num_worlds: 60,
                num_pairs: 40,
                num_cuts: 200,
                variance_repetitions: 10,
                variance_worlds: 20,
                reduced_vertices: 80,
                density_base_vertices: 60,
                seed: 0xC0FFEE,
            },
            Scale::Small => ExperimentConfig {
                scale,
                alphas_percent: vec![8.0, 16.0, 32.0, 64.0],
                num_worlds: 200,
                num_pairs: 100,
                num_cuts: 1000,
                variance_repetitions: 20,
                variance_worlds: 40,
                reduced_vertices: 200,
                density_base_vertices: 150,
                seed: 0xC0FFEE,
            },
            Scale::Medium => ExperimentConfig {
                scale,
                alphas_percent: vec![8.0, 16.0, 32.0, 64.0],
                num_worlds: 500,
                num_pairs: 500,
                num_cuts: 1000,
                variance_repetitions: 50,
                variance_worlds: 100,
                reduced_vertices: 1000,
                density_base_vertices: 400,
                seed: 0xC0FFEE,
            },
            Scale::Paper => ExperimentConfig {
                scale,
                alphas_percent: vec![8.0, 16.0, 32.0, 64.0],
                num_worlds: 500,
                num_pairs: 1000,
                num_cuts: 1000,
                variance_repetitions: 100,
                variance_worlds: 500,
                reduced_vertices: 5000,
                density_base_vertices: 1000,
                seed: 0xC0FFEE,
            },
        }
    }

    /// Reads the scale from the command line (`--scale <name>`) or the
    /// `UGS_SCALE` environment variable, defaulting to `small`; `UGS_SEED`
    /// overrides the seed.
    pub fn from_env_and_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale_name = std::env::var("UGS_SCALE").unwrap_or_else(|_| "small".to_string());
        if let Some(pos) = args.iter().position(|a| a == "--scale") {
            if let Some(value) = args.get(pos + 1) {
                scale_name = value.clone();
            }
        }
        let scale = Scale::parse(&scale_name).unwrap_or(Scale::Small);
        let mut config = Self::for_scale(scale);
        if let Ok(seed) = std::env::var("UGS_SEED") {
            if let Ok(seed) = seed.parse() {
                config.seed = seed;
            }
        }
        config
    }

    /// Sparsification ratios as fractions.
    pub fn alphas(&self) -> Vec<f64> {
        self.alphas_percent.iter().map(|a| a / 100.0).collect()
    }

    /// A fresh RNG stream for the experiment `label` (deterministic per
    /// label so experiments are independent of each other's ordering).
    pub fn rng(&self, label: &str) -> SmallRng {
        let mut hash = 0xcbf29ce484222325u64;
        for byte in label.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        SmallRng::seed_from_u64(self.seed ^ hash)
    }
}

/// The datasets every experiment draws from, generated once per run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Flickr-shaped graph (dense, low probabilities).
    pub flickr: UncertainGraph,
    /// Twitter-shaped graph (sparser, higher probabilities).
    pub twitter: UncertainGraph,
}

impl Workload {
    /// Generates the two social-network-shaped datasets for `config`.
    pub fn generate(config: &ExperimentConfig) -> Self {
        let mut rng = config.rng("workload");
        Workload {
            flickr: flickr_like(config.scale, &mut rng),
            twitter: twitter_like(config.scale, &mut rng),
        }
    }

    /// The Forest-Fire-reduced Flickr instance used by the LP-feasible
    /// experiments.
    pub fn flickr_reduced(&self, config: &ExperimentConfig) -> UncertainGraph {
        let mut rng = config.rng("flickr-reduced");
        let (reduced, _) = forest_fire_sample(&self.flickr, config.reduced_vertices, 0.7, &mut rng);
        reduced
    }

    /// The density-sweep synthetics (15/30/50/90 % of the complete graph)
    /// built from an induced Flickr-like base, as in Table 1 (bottom).
    pub fn density_sweep(&self, config: &ExperimentConfig) -> Vec<(f64, UncertainGraph)> {
        let mut rng = config.rng("density-sweep");
        let (base, _) =
            forest_fire_sample(&self.flickr, config.density_base_vertices, 0.7, &mut rng);
        density_sweep(&base, ProbabilityModel::FlickrLike, &mut rng)
    }
}

/// The four methods compared throughout Section 6.2–6.3, with the paper's
/// representative variants: `GDB` = `GDB^A` on a random backbone, `EMD` =
/// `EMD^R-t` (relative discrepancy, spanning backbone), plus the `NI` and
/// `SS` baselines.
pub fn representative_methods(alpha: f64) -> Vec<(String, Box<dyn Sparsifier>)> {
    vec![
        (
            "NI".to_string(),
            Box::new(NagamochiIbaraki::new(alpha)) as Box<dyn Sparsifier>,
        ),
        ("SS".to_string(), Box::new(SpannerSparsifier::new(alpha))),
        (
            "GDB".to_string(),
            Box::new(
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .backbone(BackboneKind::Random),
            ),
        ),
        (
            "EMD".to_string(),
            Box::new(
                SparsifierSpec::emd()
                    .alpha(alpha)
                    .discrepancy(DiscrepancyKind::Relative),
            ),
        ),
    ]
}

/// The proposed-method variants evaluated in Table 2 and Figure 4
/// (superscript = discrepancy, subscript = cut rule, `-t` = spanning
/// backbone).
pub fn proposed_variants(alpha: f64) -> Vec<(String, Box<dyn Sparsifier>)> {
    let random = BackboneKind::Random;
    let spanning = BackboneKind::SpanningForests;
    vec![
        (
            "LP".into(),
            Box::new(SparsifierSpec::lp().alpha(alpha).backbone(random)) as Box<dyn Sparsifier>,
        ),
        (
            "GDB^A".into(),
            Box::new(SparsifierSpec::gdb().alpha(alpha).backbone(random)),
        ),
        (
            "GDB^R".into(),
            Box::new(
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .backbone(random)
                    .discrepancy(DiscrepancyKind::Relative),
            ),
        ),
        (
            "GDB^A_2".into(),
            Box::new(
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .backbone(random)
                    .cut_rule(CutRule::Cuts(2)),
            ),
        ),
        (
            "GDB^A_n".into(),
            Box::new(
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .backbone(random)
                    .cut_rule(CutRule::AllCuts),
            ),
        ),
        (
            "EMD^A".into(),
            Box::new(SparsifierSpec::emd().alpha(alpha).backbone(random)),
        ),
        (
            "EMD^R".into(),
            Box::new(
                SparsifierSpec::emd()
                    .alpha(alpha)
                    .backbone(random)
                    .discrepancy(DiscrepancyKind::Relative),
            ),
        ),
        (
            "LP-t".into(),
            Box::new(SparsifierSpec::lp().alpha(alpha).backbone(spanning)),
        ),
        (
            "GDB^A-t".into(),
            Box::new(SparsifierSpec::gdb().alpha(alpha).backbone(spanning)),
        ),
        (
            "GDB^R-t".into(),
            Box::new(
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .backbone(spanning)
                    .discrepancy(DiscrepancyKind::Relative),
            ),
        ),
        (
            "EMD^A-t".into(),
            Box::new(SparsifierSpec::emd().alpha(alpha).backbone(spanning)),
        ),
        (
            "EMD^R-t".into(),
            Box::new(
                SparsifierSpec::emd()
                    .alpha(alpha)
                    .backbone(spanning)
                    .discrepancy(DiscrepancyKind::Relative),
            ),
        ),
    ]
}

/// Prints a set of reports as paper-style tables, separated by headers.
pub fn print_reports(reports: &[ugs_metrics::ExperimentReport]) {
    for report in reports {
        println!("== {} — {}", report.id, report.description);
        println!(
            "   rows: method, columns: {}, values: {}",
            report.x_label, report.y_label
        );
        println!("{}", report.to_table().render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_scale_monotonically() {
        let tiny = ExperimentConfig::for_scale(Scale::Tiny);
        let small = ExperimentConfig::for_scale(Scale::Small);
        let paper = ExperimentConfig::for_scale(Scale::Paper);
        assert!(tiny.num_worlds < small.num_worlds && small.num_worlds <= paper.num_worlds);
        assert!(tiny.num_pairs < small.num_pairs && small.num_pairs <= paper.num_pairs);
        assert_eq!(paper.num_worlds, 500);
        assert_eq!(paper.num_pairs, 1000);
        assert_eq!(paper.variance_repetitions, 100);
        assert_eq!(tiny.alphas(), vec![0.08, 0.16, 0.32, 0.64]);
    }

    #[test]
    fn rng_streams_are_deterministic_and_label_dependent() {
        use rand::RngCore;
        let config = ExperimentConfig::for_scale(Scale::Tiny);
        let a = config.rng("x").next_u64();
        let b = config.rng("x").next_u64();
        let c = config.rng("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_generation_matches_scale() {
        let config = ExperimentConfig::for_scale(Scale::Tiny);
        let w = Workload::generate(&config);
        assert_eq!(w.flickr.num_vertices(), 200);
        assert_eq!(w.twitter.num_vertices(), 200);
        let reduced = w.flickr_reduced(&config);
        assert_eq!(reduced.num_vertices(), 80);
        let sweep = w.density_sweep(&config);
        assert_eq!(sweep.len(), 4);
        assert!(sweep[0].1.num_edges() < sweep[3].1.num_edges());
    }

    #[test]
    fn method_sets_have_the_expected_composition() {
        let methods = representative_methods(0.16);
        let names: Vec<&str> = methods.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["NI", "SS", "GDB", "EMD"]);
        let variants = proposed_variants(0.16);
        assert_eq!(variants.len(), 12);
        assert!(variants.iter().any(|(n, _)| n == "EMD^R-t"));
        assert!(variants.iter().any(|(n, _)| n == "GDB^A_n"));
    }
}
