//! Regenerates Figure 7: degree and cut discrepancy vs graph density (synthetic datasets).
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig7 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!("# Figure 7: degree and cut discrepancy vs graph density (synthetic datasets) (scale {:?}, seed {})\n", config.scale, config.seed);
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig7(&config));
}
