//! Regenerates Figure 8: relative entropy of the sparsified graphs.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig8 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Figure 8: relative entropy of the sparsified graphs (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig8(&config));
}
