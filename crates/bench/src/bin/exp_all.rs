//! Runs every experiment (Table 1–2, Figures 4–12) in sequence.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_all [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Full experiment sweep (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    let started = std::time::Instant::now();
    let (table1, reports) = ugs_bench::experiments::run_all(&config);
    println!("== table1 — dataset characteristics");
    println!("{table1}");
    ugs_bench::print_reports(&reports);
    println!("total experiment time: {:?}", started.elapsed());
}
