//! Regenerates Figure 5: effect of the entropy parameter h on GDB.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig5 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Figure 5: effect of the entropy parameter h on GDB (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig5(&config));
}
