//! Regenerates Figure 12: relative variance of the MC estimators.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig12 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Figure 12: relative variance of the MC estimators (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig12(&config));
}
