//! Regenerates Figure 6: degree and cut discrepancy vs alpha against the NI/SS baselines.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig6 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!("# Figure 6: degree and cut discrepancy vs alpha against the NI/SS baselines (scale {:?}, seed {})\n", config.scale, config.seed);
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig6(&config));
}
