//! Regenerates Figure 10: earth movers distance of PR, SP, RL, CC vs alpha.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig10 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Figure 10: earth movers distance of PR, SP, RL, CC vs alpha (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig10(&config));
}
