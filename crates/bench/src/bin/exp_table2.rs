//! Regenerates Table 2: MAE of the absolute degree discrepancy for every proposed variant.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_table2 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!("# Table 2: MAE of the absolute degree discrepancy for every proposed variant (scale {:?}, seed {})\n", config.scale, config.seed);
    ugs_bench::print_reports(&ugs_bench::experiments::run_table2(&config));
}
