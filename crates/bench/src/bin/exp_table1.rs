//! Regenerates Table 1: characteristics of every dataset.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_table1 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Table 1: dataset characteristics (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    println!("{}", ugs_bench::experiments::run_table1(&config));
}
