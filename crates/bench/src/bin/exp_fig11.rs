//! Regenerates Figure 11: earth movers distance of PR and SP vs density.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig11 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Figure 11: earth movers distance of PR and SP vs density (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig11(&config));
}
