//! Regenerates Figure 9: sparsification running time.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig9 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!(
        "# Figure 9: sparsification running time (scale {:?}, seed {})\n",
        config.scale, config.seed
    );
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig9(&config));
}
