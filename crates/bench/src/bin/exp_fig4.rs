//! Regenerates Figure 4: cut discrepancy of the proposed variants and LP/GDB/EMD execution time.
//!
//! Usage: `cargo run --release -p ugs-bench --bin exp_fig4 [-- --scale tiny|small|medium|paper]`

fn main() {
    let config = ugs_bench::ExperimentConfig::from_env_and_args();
    println!("# Figure 4: cut discrepancy of the proposed variants and LP/GDB/EMD execution time (scale {:?}, seed {})\n", config.scale, config.seed);
    ugs_bench::print_reports(&ugs_bench::experiments::run_fig4(&config));
}
