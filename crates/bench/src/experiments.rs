//! One function per table/figure of the paper's evaluation (Section 6).
//!
//! Every function takes an [`ExperimentConfig`], generates the workload
//! deterministically from the config seed, runs the sweep and returns
//! [`ExperimentReport`]s whose rows/series correspond to what the paper
//! plots.  Absolute numbers differ from the paper (different hardware, and
//! synthetic stand-ins for the non-redistributable datasets); the *shape* —
//! which method wins, by roughly what factor, where the crossovers are — is
//! what `EXPERIMENTS.md` tracks.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_core::prelude::*;
use ugs_metrics::cuts::CutSamplingConfig;
use ugs_metrics::degree::MetricDiscrepancy;
use ugs_metrics::{
    cut_discrepancy_mae, degree_discrepancy_mae, earth_movers_distance, relative_entropy,
    ExperimentReport,
};
use ugs_queries::prelude::*;
use uncertain_graph::{GraphStatistics, UncertainGraph};

use crate::{proposed_variants, representative_methods, ExperimentConfig, Workload};

fn sparsify(method: &dyn Sparsifier, g: &UncertainGraph, rng: &mut SmallRng) -> SparsifyOutput {
    method.sparsify_dyn(g, rng).unwrap_or_else(|err| {
        panic!("sparsifier {} failed: {err}", method.name());
    })
}

// ---------------------------------------------------------------------------
// Table 1 — dataset characteristics
// ---------------------------------------------------------------------------

/// Table 1: vertices, edges, `|E|/|V|`, `E[p]`, `E[d]` of every dataset.
pub fn run_table1(config: &ExperimentConfig) -> String {
    let workload = Workload::generate(config);
    let sweep = workload.density_sweep(config);
    let mut out = String::new();
    out.push_str(&GraphStatistics::table_header());
    out.push('\n');
    out.push_str(&GraphStatistics::compute(&workload.flickr).table_row("Flickr"));
    out.push('\n');
    out.push_str(&GraphStatistics::compute(&workload.twitter).table_row("Twitter"));
    out.push('\n');
    for (density, graph) in &sweep {
        let name = format!("Synth-{:.0}%", density * 100.0);
        out.push_str(&GraphStatistics::compute(graph).table_row(&name));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Table 2 — MAE of the absolute degree discrepancy for every proposed variant
// ---------------------------------------------------------------------------

/// Table 2: MAE of `δA(u)` on the Forest-Fire-reduced Flickr instance for
/// LP/GDB/EMD variants with random and spanning (-t) backbones, `α` 8–64 %.
pub fn run_table2(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let reduced = workload.flickr_reduced(config);
    let mut rng = config.rng("table2");
    let mut report = ExperimentReport::new(
        "table2",
        "MAE of absolute degree discrepancy δA(u), Flickr reduced",
        "α (%)",
        "MAE of δA(u)",
    );
    for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
        for (name, method) in proposed_variants(alpha) {
            let out = sparsify(method.as_ref(), &reduced, &mut rng);
            let mae = degree_discrepancy_mae(&reduced, &out.graph, MetricDiscrepancy::Absolute);
            report.push(name, alpha_pct, mae);
        }
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Figure 4 — cut discrepancy of the variants and execution time of LP/GDB/EMD
// ---------------------------------------------------------------------------

/// Figure 4(a): MAE of the cut discrepancy `δA(S)` vs `α` for the proposed
/// variants; Figure 4(b): execution time of LP, GDB, EMD vs `α`
/// (Flickr reduced).
pub fn run_fig4(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let reduced = workload.flickr_reduced(config);
    let mut rng = config.rng("fig4");
    let cut_config = CutSamplingConfig {
        num_cuts: config.num_cuts,
        max_cardinality: reduced.num_vertices(),
    };

    let mut cut_report = ExperimentReport::new(
        "fig4a",
        "MAE of cut discrepancy δA(S), Flickr reduced",
        "α (%)",
        "MAE of δA(S)",
    );
    let mut time_report = ExperimentReport::new(
        "fig4b",
        "Execution time of LP / GDB / EMD, Flickr reduced",
        "α (%)",
        "seconds",
    );

    let variant_subset = ["EMD^R-t", "EMD^A", "GDB^R-t", "GDB^A", "GDB^A_2", "GDB^A_n"];
    for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
        for (name, method) in proposed_variants(alpha) {
            if variant_subset.contains(&name.as_str()) {
                let out = sparsify(method.as_ref(), &reduced, &mut rng);
                let mae = cut_discrepancy_mae(&reduced, &out.graph, &cut_config, &mut rng);
                cut_report.push(name.clone(), alpha_pct, mae);
            }
        }
        for (name, method) in [
            (
                "LP",
                Box::new(SparsifierSpec::lp().alpha(alpha)) as Box<dyn Sparsifier>,
            ),
            ("GDB", Box::new(SparsifierSpec::gdb().alpha(alpha))),
            ("EMD", Box::new(SparsifierSpec::emd().alpha(alpha))),
        ] {
            let start = Instant::now();
            let _ = sparsify(method.as_ref(), &reduced, &mut rng);
            time_report.push(name, alpha_pct, start.elapsed().as_secs_f64());
        }
    }
    vec![cut_report, time_report]
}

// ---------------------------------------------------------------------------
// Figure 5 — effect of the entropy parameter h
// ---------------------------------------------------------------------------

/// Figure 5: MAE of `δA(u)` (a) and relative entropy (b) of GDB for
/// `h ∈ {0, 0.01, 0.05, 0.1, 0.5, 1}` vs `α` (Flickr reduced).
pub fn run_fig5(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let reduced = workload.flickr_reduced(config);
    let mut rng = config.rng("fig5");
    let mut mae_report = ExperimentReport::new(
        "fig5a",
        "Effect of h on the MAE of δA(u) (GDB, Flickr reduced)",
        "α (%)",
        "MAE of δA(u)",
    );
    let mut entropy_report = ExperimentReport::new(
        "fig5b",
        "Effect of h on the relative entropy H(G')/H(G) (GDB, Flickr reduced)",
        "α (%)",
        "H(G')/H(G)",
    );
    for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
        for h in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            let spec = SparsifierSpec::gdb()
                .alpha(alpha)
                .entropy_h(h)
                .max_iterations(100);
            let out = spec.sparsify(&reduced, &mut rng).expect("GDB succeeds");
            let label = format!("h={h}");
            mae_report.push(
                label.clone(),
                alpha_pct,
                degree_discrepancy_mae(&reduced, &out.graph, MetricDiscrepancy::Absolute),
            );
            entropy_report.push(label, alpha_pct, out.diagnostics.relative_entropy());
        }
    }
    vec![mae_report, entropy_report]
}

// ---------------------------------------------------------------------------
// Figure 6 — structural comparison against the benchmarks (real datasets)
// ---------------------------------------------------------------------------

/// Figure 6: MAE of `δA(u)` and `δA(S)` vs `α` for NI, SS, GDB, EMD on the
/// Flickr- and Twitter-shaped datasets.
pub fn run_fig6(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let mut reports = Vec::new();
    for (dataset_name, graph) in [("flickr", &workload.flickr), ("twitter", &workload.twitter)] {
        let mut rng = config.rng(&format!("fig6-{dataset_name}"));
        let cut_config = CutSamplingConfig {
            num_cuts: config.num_cuts,
            max_cardinality: graph.num_vertices(),
        };
        let mut degree_report = ExperimentReport::new(
            format!("fig6-degree-{dataset_name}"),
            format!("MAE of δA(u) vs α ({dataset_name})"),
            "α (%)",
            "MAE of δA(u)",
        );
        let mut cut_report = ExperimentReport::new(
            format!("fig6-cut-{dataset_name}"),
            format!("MAE of δA(S) vs α ({dataset_name})"),
            "α (%)",
            "MAE of δA(S)",
        );
        for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
            for (name, method) in representative_methods(alpha) {
                let out = sparsify(method.as_ref(), graph, &mut rng);
                degree_report.push(
                    name.clone(),
                    alpha_pct,
                    degree_discrepancy_mae(graph, &out.graph, MetricDiscrepancy::Absolute),
                );
                cut_report.push(
                    name,
                    alpha_pct,
                    cut_discrepancy_mae(graph, &out.graph, &cut_config, &mut rng),
                );
            }
        }
        reports.push(degree_report);
        reports.push(cut_report);
    }
    reports
}

// ---------------------------------------------------------------------------
// Figure 7 — structural comparison vs graph density (synthetic datasets)
// ---------------------------------------------------------------------------

/// Figure 7: MAE of `δA(u)` and `δA(S)` vs graph density (15–90 % of the
/// complete graph) at `α = 16 %`.
pub fn run_fig7(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let sweep = workload.density_sweep(config);
    let mut rng = config.rng("fig7");
    let alpha = 0.16;
    let mut degree_report = ExperimentReport::new(
        "fig7a",
        "MAE of δA(u) vs density (synthetic, α = 16%)",
        "density (%)",
        "MAE of δA(u)",
    );
    let mut cut_report = ExperimentReport::new(
        "fig7b",
        "MAE of δA(S) vs density (synthetic, α = 16%)",
        "density (%)",
        "MAE of δA(S)",
    );
    for (density, graph) in &sweep {
        let density_pct = density * 100.0;
        let cut_config = CutSamplingConfig {
            num_cuts: config.num_cuts,
            max_cardinality: graph.num_vertices(),
        };
        for (name, method) in representative_methods(alpha) {
            let out = sparsify(method.as_ref(), graph, &mut rng);
            degree_report.push(
                name.clone(),
                density_pct,
                degree_discrepancy_mae(graph, &out.graph, MetricDiscrepancy::Absolute),
            );
            cut_report.push(
                name,
                density_pct,
                cut_discrepancy_mae(graph, &out.graph, &cut_config, &mut rng),
            );
        }
    }
    vec![degree_report, cut_report]
}

// ---------------------------------------------------------------------------
// Figure 8 — relative entropy
// ---------------------------------------------------------------------------

/// Figure 8: relative entropy `H(G')/H(G)` vs `α` (Flickr, Twitter) and vs
/// density (synthetic, `α = 16 %`).
pub fn run_fig8(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let mut reports = Vec::new();
    for (dataset_name, graph) in [("flickr", &workload.flickr), ("twitter", &workload.twitter)] {
        let mut rng = config.rng(&format!("fig8-{dataset_name}"));
        let mut report = ExperimentReport::new(
            format!("fig8-{dataset_name}"),
            format!("relative entropy H(G')/H(G) vs α ({dataset_name})"),
            "α (%)",
            "H(G')/H(G)",
        );
        for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
            for (name, method) in representative_methods(alpha) {
                let out = sparsify(method.as_ref(), graph, &mut rng);
                report.push(name, alpha_pct, relative_entropy(graph, &out.graph));
            }
        }
        reports.push(report);
    }
    // synthetic density sweep at fixed α
    let sweep = workload.density_sweep(config);
    let mut rng = config.rng("fig8-synthetic");
    let mut report = ExperimentReport::new(
        "fig8-synthetic",
        "relative entropy H(G')/H(G) vs density (synthetic, α = 16%)",
        "density (%)",
        "H(G')/H(G)",
    );
    for (density, graph) in &sweep {
        for (name, method) in representative_methods(0.16) {
            let out = sparsify(method.as_ref(), graph, &mut rng);
            report.push(name, density * 100.0, relative_entropy(graph, &out.graph));
        }
    }
    reports.push(report);
    reports
}

// ---------------------------------------------------------------------------
// Figure 9 — sparsification running time
// ---------------------------------------------------------------------------

/// Figure 9: wall-clock sparsification time vs `α` for NI, GDB and EMD on
/// the Flickr- and Twitter-shaped datasets (the paper omits SS because it
/// needs hours).
pub fn run_fig9(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let mut reports = Vec::new();
    for (dataset_name, graph) in [("flickr", &workload.flickr), ("twitter", &workload.twitter)] {
        let mut rng = config.rng(&format!("fig9-{dataset_name}"));
        let mut report = ExperimentReport::new(
            format!("fig9-{dataset_name}"),
            format!("sparsification time vs α ({dataset_name})"),
            "α (%)",
            "seconds",
        );
        for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
            for (name, method) in representative_methods(alpha) {
                if name == "SS" {
                    continue;
                }
                let start = Instant::now();
                let _ = sparsify(method.as_ref(), graph, &mut rng);
                report.push(name, alpha_pct, start.elapsed().as_secs_f64());
            }
        }
        reports.push(report);
    }
    reports
}

// ---------------------------------------------------------------------------
// Figures 10–11 — query quality (earth mover's distance)
// ---------------------------------------------------------------------------

/// The four query workloads evaluated on one graph; observation vectors are
/// directly comparable between the original and a sparsified graph.
struct QueryObservations {
    pagerank: Vec<f64>,
    clustering: Vec<f64>,
    distance: Vec<f64>,
    reliability: Vec<f64>,
}

fn evaluate_queries(
    g: &UncertainGraph,
    pairs: &[(usize, usize)],
    mc: &MonteCarlo,
    rng: &mut SmallRng,
) -> QueryObservations {
    let pagerank = expected_pagerank(g, mc, rng);
    let clustering = expected_clustering_coefficients(g, mc, rng);
    let pair_result = pair_queries(g, pairs, mc, rng);
    QueryObservations {
        pagerank,
        clustering,
        distance: pair_result.mean_distance,
        reliability: pair_result.reliability,
    }
}

/// Figure 10: earth mover's distance of PR, SP, RL and CC between the
/// original and the sparsified graphs, vs `α`, on both datasets.
pub fn run_fig10(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let mc = MonteCarlo::worlds(config.num_worlds);
    let mut reports = Vec::new();
    for (dataset_name, graph) in [("flickr", &workload.flickr), ("twitter", &workload.twitter)] {
        let mut rng = config.rng(&format!("fig10-{dataset_name}"));
        let pairs = random_pairs(graph.num_vertices(), config.num_pairs, &mut rng);
        let reference = evaluate_queries(graph, &pairs, &mc, &mut rng);

        let mut pr = ExperimentReport::new(
            format!("fig10-pr-{dataset_name}"),
            format!("D_em of PageRank vs α ({dataset_name})"),
            "α (%)",
            "D_em",
        );
        let mut sp = ExperimentReport::new(
            format!("fig10-sp-{dataset_name}"),
            format!("D_em of shortest-path distance vs α ({dataset_name})"),
            "α (%)",
            "D_em",
        );
        let mut rl = ExperimentReport::new(
            format!("fig10-rl-{dataset_name}"),
            format!("D_em of reliability vs α ({dataset_name})"),
            "α (%)",
            "D_em",
        );
        let mut cc = ExperimentReport::new(
            format!("fig10-cc-{dataset_name}"),
            format!("D_em of clustering coefficient vs α ({dataset_name})"),
            "α (%)",
            "D_em",
        );
        for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
            for (name, method) in representative_methods(alpha) {
                let out = sparsify(method.as_ref(), graph, &mut rng);
                let observed = evaluate_queries(&out.graph, &pairs, &mc, &mut rng);
                pr.push(
                    name.clone(),
                    alpha_pct,
                    earth_movers_distance(&reference.pagerank, &observed.pagerank),
                );
                sp.push(
                    name.clone(),
                    alpha_pct,
                    earth_movers_distance(&reference.distance, &observed.distance),
                );
                rl.push(
                    name.clone(),
                    alpha_pct,
                    earth_movers_distance(&reference.reliability, &observed.reliability),
                );
                cc.push(
                    name,
                    alpha_pct,
                    earth_movers_distance(&reference.clustering, &observed.clustering),
                );
            }
        }
        reports.extend([pr, sp, rl, cc]);
    }
    reports
}

/// Figure 11: earth mover's distance of PR and SP vs density (synthetic,
/// `α = 16 %`).
pub fn run_fig11(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let sweep = workload.density_sweep(config);
    let mc = MonteCarlo::worlds(config.num_worlds);
    let mut rng = config.rng("fig11");
    let mut pr_report = ExperimentReport::new(
        "fig11a",
        "D_em of PageRank vs density (synthetic, α = 16%)",
        "density (%)",
        "D_em",
    );
    let mut sp_report = ExperimentReport::new(
        "fig11b",
        "D_em of shortest-path distance vs density (synthetic, α = 16%)",
        "density (%)",
        "D_em",
    );
    for (density, graph) in &sweep {
        let pairs = random_pairs(graph.num_vertices(), config.num_pairs, &mut rng);
        let reference = evaluate_queries(graph, &pairs, &mc, &mut rng);
        for (name, method) in representative_methods(0.16) {
            let out = sparsify(method.as_ref(), graph, &mut rng);
            let observed = evaluate_queries(&out.graph, &pairs, &mc, &mut rng);
            pr_report.push(
                name.clone(),
                density * 100.0,
                earth_movers_distance(&reference.pagerank, &observed.pagerank),
            );
            sp_report.push(
                name,
                density * 100.0,
                earth_movers_distance(&reference.distance, &observed.distance),
            );
        }
    }
    vec![pr_report, sp_report]
}

// ---------------------------------------------------------------------------
// Figure 12 — relative variance of the MC estimators
// ---------------------------------------------------------------------------

/// Figure 12: relative variance `σ̂(G')/σ̂(G)` of the PR, SP, RL and CC
/// Monte-Carlo estimators vs `α`, on both datasets.
pub fn run_fig12(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    let workload = Workload::generate(config);
    let mc = MonteCarlo::worlds(config.variance_worlds);
    let num_pairs = config.num_pairs.min(60);
    let mut reports = Vec::new();
    for (dataset_name, graph) in [("flickr", &workload.flickr), ("twitter", &workload.twitter)] {
        let mut rng = config.rng(&format!("fig12-{dataset_name}"));
        let pairs = random_pairs(graph.num_vertices(), num_pairs, &mut rng);

        // Per-query variance of the estimator on an arbitrary graph.
        let variance_of = |g: &UncertainGraph, rng: &mut SmallRng| -> [VarianceEstimate; 4] {
            let seeds: Vec<u64> = (0..3).map(|_| rng.gen()).collect();
            let pr = {
                let mut local = SmallRng::seed_from_u64(seeds[0]);
                estimator_variance(config.variance_repetitions, |_| {
                    expected_pagerank(g, &mc, &mut local)
                })
            };
            let cc = {
                let mut local = SmallRng::seed_from_u64(seeds[1]);
                estimator_variance(config.variance_repetitions, |_| {
                    expected_clustering_coefficients(g, &mc, &mut local)
                })
            };
            let (sp, rl) = {
                let mut local = SmallRng::seed_from_u64(seeds[2]);
                let mut distances: Vec<Vec<f64>> = Vec::new();
                let mut reliabilities: Vec<Vec<f64>> = Vec::new();
                for _ in 0..config.variance_repetitions {
                    let result = pair_queries(g, &pairs, &mc, &mut local);
                    distances.push(result.mean_distance);
                    reliabilities.push(result.reliability);
                }
                let mut d_iter = distances.into_iter();
                let sp = estimator_variance(config.variance_repetitions, |_| {
                    d_iter.next().expect("one vector per repetition")
                });
                let mut r_iter = reliabilities.into_iter();
                let rl = estimator_variance(config.variance_repetitions, |_| {
                    r_iter.next().expect("one vector per repetition")
                });
                (sp, rl)
            };
            [pr, sp, rl, cc]
        };

        let reference = variance_of(graph, &mut rng);
        let query_names = ["pr", "sp", "rl", "cc"];
        let mut per_query_reports: Vec<ExperimentReport> = query_names
            .iter()
            .map(|q| {
                ExperimentReport::new(
                    format!("fig12-{q}-{dataset_name}"),
                    format!(
                        "relative variance of {} vs α ({dataset_name})",
                        q.to_uppercase()
                    ),
                    "α (%)",
                    "σ̂(G')/σ̂(G)",
                )
            })
            .collect();
        for (&alpha_pct, alpha) in config.alphas_percent.iter().zip(config.alphas()) {
            for (name, method) in representative_methods(alpha) {
                let out = sparsify(method.as_ref(), graph, &mut rng);
                let observed = variance_of(&out.graph, &mut rng);
                for (idx, report) in per_query_reports.iter_mut().enumerate() {
                    report.push(
                        name.clone(),
                        alpha_pct,
                        observed[idx].relative_to(&reference[idx]),
                    );
                }
            }
        }
        reports.extend(per_query_reports);
    }
    reports
}

// ---------------------------------------------------------------------------
// Everything at once
// ---------------------------------------------------------------------------

/// Runs every experiment and returns all reports (Table 1 is returned as a
/// pre-rendered string because it is a plain statistics table).
pub fn run_all(config: &ExperimentConfig) -> (String, Vec<ExperimentReport>) {
    let table1 = run_table1(config);
    let mut reports = Vec::new();
    reports.extend(run_table2(config));
    reports.extend(run_fig4(config));
    reports.extend(run_fig5(config));
    reports.extend(run_fig6(config));
    reports.extend(run_fig7(config));
    reports.extend(run_fig8(config));
    reports.extend(run_fig9(config));
    reports.extend(run_fig10(config));
    reports.extend(run_fig11(config));
    reports.extend(run_fig12(config));
    (table1, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugs_datasets::Scale;

    fn tiny_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::for_scale(Scale::Tiny);
        // keep the self-test fast
        config.alphas_percent = vec![16.0, 64.0];
        config.num_worlds = 20;
        config.num_pairs = 15;
        config.num_cuts = 50;
        config.variance_repetitions = 4;
        config.variance_worlds = 8;
        config
    }

    #[test]
    fn table1_lists_every_dataset() {
        let text = run_table1(&tiny_config());
        for name in ["Flickr", "Twitter", "Synth-15%", "Synth-90%"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn table2_covers_all_variants_and_ratios() {
        let config = tiny_config();
        let reports = run_table2(&config);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.methods().len(), 12);
        assert_eq!(report.xs(), vec![16.0, 64.0]);
        // every measured MAE is finite and non-negative
        for p in &report.points {
            assert!(p.value.is_finite() && p.value >= 0.0);
        }
        // the proposed methods beat the naive GDB^A_n variant at α = 64 %
        let emd = report.value("EMD^R-t", 64.0).unwrap();
        let naive = report.value("GDB^A_n", 64.0).unwrap();
        assert!(emd <= naive + 1e-9, "EMD^R-t {emd} vs GDB^A_n {naive}");
    }

    #[test]
    fn fig5_reports_cover_the_h_sweep() {
        let config = tiny_config();
        let reports = run_fig5(&config);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].methods().len(), 6);
        // h = 1 must reach at most the degree error of h = 0 at the largest α
        let h1 = reports[0].value("h=1", 64.0).unwrap();
        let h0 = reports[0].value("h=0", 64.0).unwrap();
        assert!(h1 <= h0 + 1e-9, "h=1 {h1} vs h=0 {h0}");
        // and relative entropy values are within [0, 1]
        for p in &reports[1].points {
            assert!(p.value >= 0.0 && p.value <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fig6_shape_matches_the_paper() {
        let config = tiny_config();
        let reports = run_fig6(&config);
        assert_eq!(reports.len(), 4);
        // On the Flickr-shaped dataset the proposed methods must beat both
        // baselines on degree preservation at every measured α.
        let degree_flickr = &reports[0];
        for &alpha in &[16.0, 64.0] {
            let gdb = degree_flickr.value("GDB", alpha).unwrap();
            let emd = degree_flickr.value("EMD", alpha).unwrap();
            let ni = degree_flickr.value("NI", alpha).unwrap();
            let ss = degree_flickr.value("SS", alpha).unwrap();
            assert!(
                gdb < ni && gdb < ss,
                "α={alpha}: GDB {gdb} vs NI {ni}, SS {ss}"
            );
            assert!(
                emd < ni && emd < ss,
                "α={alpha}: EMD {emd} vs NI {ni}, SS {ss}"
            );
        }
    }

    #[test]
    fn fig9_reports_time_for_three_methods() {
        let config = tiny_config();
        let reports = run_fig9(&config);
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert_eq!(report.methods().len(), 3); // NI, GDB, EMD — no SS
            for p in &report.points {
                assert!(p.value >= 0.0);
            }
        }
    }
}
