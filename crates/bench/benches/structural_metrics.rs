//! Cost of the structural evaluation metrics used by Table 2 and
//! Figures 4(a), 5, 6, 7 and 8: degree-discrepancy MAE, sampled cut
//! discrepancy, relative entropy and the earth mover's distance.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_bench::{ExperimentConfig, Workload};
use ugs_core::prelude::*;
use ugs_datasets::Scale;
use ugs_metrics::cuts::CutSamplingConfig;
use ugs_metrics::degree::MetricDiscrepancy;

fn metric_costs(c: &mut Criterion) {
    let config = ExperimentConfig::for_scale(Scale::Tiny);
    let workload = Workload::generate(&config);
    let mut rng = SmallRng::seed_from_u64(5);
    let sparsified = SparsifierSpec::emd()
        .alpha(0.16)
        .sparsify(&workload.flickr, &mut rng)
        .expect("sparsification succeeds")
        .graph;

    let mut group = c.benchmark_group("structural_metrics");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));

    group.bench_function("degree_discrepancy_mae", |b| {
        b.iter(|| {
            ugs_metrics::degree_discrepancy_mae(
                &workload.flickr,
                &sparsified,
                MetricDiscrepancy::Absolute,
            )
        })
    });
    group.bench_function("cut_discrepancy_mae_200cuts", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(7);
            ugs_metrics::cut_discrepancy_mae(
                &workload.flickr,
                &sparsified,
                &CutSamplingConfig {
                    num_cuts: 200,
                    max_cardinality: workload.flickr.num_vertices(),
                },
                &mut rng,
            )
        })
    });
    group.bench_function("relative_entropy", |b| {
        b.iter(|| ugs_metrics::relative_entropy(&workload.flickr, &sparsified))
    });
    let samples_a: Vec<f64> = (0..2_000).map(|_| rng.gen_range(0.0..1.0)).collect();
    let samples_b: Vec<f64> = (0..2_000).map(|_| rng.gen_range(0.0..1.0)).collect();
    group.bench_function("earth_movers_distance_2000", |b| {
        b.iter(|| ugs_metrics::earth_movers_distance(&samples_a, &samples_b))
    });
    group.finish();
}

criterion_group!(benches, metric_costs);
criterion_main!(benches);
