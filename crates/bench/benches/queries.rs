//! Monte-Carlo query cost on the original vs the sparsified graph
//! (the runtime side of Figures 10–12).
//!
//! Sampling a possible world costs `O(|E|)`, so queries on an `α`-sparsified
//! graph are roughly `1/α` times cheaper per sample — and because the
//! sparsified graph has lower entropy, fewer samples are needed for the same
//! confidence (Figure 12).  These benches measure the per-query cost of the
//! four workloads on the original and on a GDB-sparsified Flickr-shaped
//! graph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_bench::{ExperimentConfig, Workload};
use ugs_core::prelude::*;
use ugs_datasets::Scale;
use ugs_queries::prelude::*;

fn query_costs(c: &mut Criterion) {
    let config = ExperimentConfig::for_scale(Scale::Tiny);
    let workload = Workload::generate(&config);
    let mut rng = SmallRng::seed_from_u64(3);
    let sparsified = SparsifierSpec::gdb()
        .alpha(0.16)
        .sparsify(&workload.flickr, &mut rng)
        .expect("sparsification succeeds")
        .graph;
    let pairs = random_pairs(workload.flickr.num_vertices(), 30, &mut rng);
    let mc = MonteCarlo::worlds(30);

    let mut group = c.benchmark_group("queries");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));

    for (label, graph) in [("original", &workload.flickr), ("gdb_alpha16", &sparsified)] {
        group.bench_function(format!("pagerank_{label}"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(11);
                expected_pagerank(graph, &mc, &mut rng)
            })
        });
        group.bench_function(format!("clustering_{label}"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(11);
                expected_clustering_coefficients(graph, &mc, &mut rng)
            })
        });
        group.bench_function(format!("sp_rl_{label}"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(11);
                pair_queries(graph, &pairs, &mc, &mut rng)
            })
        });
        group.bench_function(format!("variance_pagerank_{label}"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(11);
                estimator_variance(4, |_| {
                    expected_pagerank(graph, &MonteCarlo::worlds(8), &mut rng)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, query_costs);
criterion_main!(benches);
