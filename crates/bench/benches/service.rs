//! Service micro-batching amortisation: `k` interleaved submissions to one
//! long-lived [`QueryService`] vs `k` standalone [`QueryBatch`] runs of the
//! same queries.
//!
//! Standalone, every query pays engine construction (`O(|E| log |E|)` skip
//! order + CSR template), its own sampling pass and a scoped-thread
//! spin-up.  The service owns persistent engine workers, so a steady-state
//! burst pays none of that per query: submissions landing in one arrival
//! window share a single sampling pass, and the per-worker engines/scratch
//! were built once at service start.  Measured at p̄ ≈ 0.09 (the paper's
//! Flickr regime) with bursts of 8 = 2 interleaved rounds of a 4-query mix
//! (PageRank, connectivity, degree histogram, edge frequencies), windows of
//! 4 → 2 micro-batches per burst.  Recorded in `BENCH_service.json`.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_datasets::{erdos_renyi, ProbabilityModel};
use ugs_queries::prelude::*;
use ugs_service::{BatchPolicy, QueryService, QuerySpec};

const WORLDS: usize = 256;
const MEAN_P: f64 = 0.09;
const ROUNDS: usize = 2;

fn flickr_regime_graph() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    erdos_renyi(400, 0.05, ProbabilityModel::Fixed(MEAN_P), &mut rng)
}

fn mix() -> Vec<QuerySpec> {
    vec![
        QuerySpec::pagerank(),
        QuerySpec::Connectivity,
        QuerySpec::DegreeHistogram,
        QuerySpec::EdgeFrequency,
    ]
}

/// Mean wall time of one invocation of `run`, measured over repeated runs
/// for at least 400 ms (after one warm-up invocation).
fn time_run(mut run: impl FnMut()) -> Duration {
    run();
    let started = Instant::now();
    let mut rounds = 0u32;
    while started.elapsed() < Duration::from_millis(400) {
        run();
        rounds += 1;
    }
    started.elapsed() / rounds.max(1)
}

struct Measurement {
    /// `k` standalone QueryBatch runs (engine rebuilt per query).
    standalone_burst: Duration,
    /// One interleaved `k`-submission burst against a warm 1-worker service.
    service_burst: Duration,
    /// The same burst against a warm 2-worker service (world budget
    /// sharded).
    service_burst_2workers: Duration,
    /// Cold service: start (engine build) + burst + shutdown, per burst.
    service_cold: Duration,
    queries_per_burst: usize,
}

fn measure(g: &UncertainGraph) -> Measurement {
    let mc = MonteCarlo::worlds(WORLDS).with_method(SampleMethod::Skip);
    let specs = mix();
    let queries_per_burst = ROUNDS * specs.len();

    // Standalone: every query is its own QueryBatch (engine construction +
    // sampling pass each), exactly what a caller without the service pays.
    let standalone_burst = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..ROUNDS {
            for spec in &specs {
                let mut batch = QueryBatch::new(g, &mc);
                let handle =
                    batch.register_boxed(spec.make_observer(g).expect("spec fits the bench graph"));
                let mut results = batch.run(&mut rng);
                black_box(results.try_take_boxed(handle).expect("fresh handle"));
            }
        }
    });

    let policy = |threads: usize| BatchPolicy {
        max_wait: Duration::from_millis(50),
        max_queries: specs.len(),
        num_worlds: WORLDS,
        threads,
        mode: SampleMethod::Skip,
        shards: 1,
        precision: None,
    };
    let burst = |service: &QueryService| {
        let tickets: Vec<_> = (0..ROUNDS)
            .flat_map(|_| specs.iter().map(|spec| service.submit(spec.clone())))
            .collect();
        for ticket in tickets {
            black_box(ticket.wait().expect("bench queries succeed"));
        }
    };

    let warm_1 = QueryService::start(g.clone(), policy(1), 1);
    let service_burst = time_run(|| burst(&warm_1));
    warm_1.shutdown();

    let warm_2 = QueryService::start(g.clone(), policy(2), 1);
    let service_burst_2workers = time_run(|| burst(&warm_2));
    warm_2.shutdown();

    let service_cold = time_run(|| {
        let service = QueryService::start(g.clone(), policy(1), 1);
        burst(&service);
        service.shutdown();
    });

    Measurement {
        standalone_burst,
        service_burst,
        service_burst_2workers,
        service_cold,
        queries_per_burst,
    }
}

fn ratio(num: Duration, den: Duration) -> f64 {
    num.as_nanos() as f64 / den.as_nanos().max(1) as f64
}

fn service_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    let g = flickr_regime_graph();
    let m = measure(&g);

    for (name, duration) in [
        ("standalone_burst", m.standalone_burst),
        ("service_burst", m.service_burst),
        ("service_burst_2workers", m.service_burst_2workers),
        ("service_cold_burst", m.service_cold),
    ] {
        group.bench_with_input(BenchmarkId::new(name, MEAN_P), &duration, |b, &d| {
            // Report the externally measured duration through the
            // criterion-style output (one no-op iteration).
            b.iter(|| black_box(d));
        });
    }
    group.finish();

    println!(
        "p̄ = {MEAN_P}  worlds = {WORLDS}  burst = {} queries  \
         standalone {:.2?}  service(warm, 1w) {:.2?} ({:.2}x)  \
         service(warm, 2w) {:.2?}  service(cold) {:.2?}",
        m.queries_per_burst,
        m.standalone_burst,
        m.service_burst,
        ratio(m.standalone_burst, m.service_burst),
        m.service_burst_2workers,
        m.service_cold,
    );
    write_trajectory(&m);
}

/// Persists the measured amortisation as `BENCH_service.json` at the repo
/// root.
fn write_trajectory(m: &Measurement) {
    let json = format!(
        "{{\n  \"benchmark\": \"service\",\n  \
         \"graph\": \"erdos_renyi(400 vertices, 5% density, p = {MEAN_P})\",\n  \
         \"worlds\": {WORLDS},\n  \"queries_per_burst\": {},\n  \
         \"mix\": [\"pagerank\", \"connectivity\", \"degree_histogram\", \"edge_frequency\"],\n  \
         \"unit\": \"ns per {}-query burst\",\n  \
         \"notes\": \"k interleaved submissions to a warm QueryService (windows of 4 -> 2 \
         micro-batches) vs k standalone QueryBatch runs (engine rebuilt per query) at the \
         paper's Flickr regime\",\n  \
         \"standalone_burst_ns\": {},\n  \"service_burst_ns\": {},\n  \
         \"service_burst_2workers_ns\": {},\n  \"service_cold_burst_ns\": {},\n  \
         \"amortisation_standalone_over_service\": {:.2},\n  \
         \"speedup_2workers_over_1\": {:.2}\n}}\n",
        m.queries_per_burst,
        m.queries_per_burst,
        m.standalone_burst.as_nanos(),
        m.service_burst.as_nanos(),
        m.service_burst_2workers.as_nanos(),
        m.service_cold.as_nanos(),
        ratio(m.standalone_burst, m.service_burst),
        ratio(m.service_burst, m.service_burst_2workers),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_service.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, service_bench);
criterion_main!(benches);
