//! Sparsifier engine benchmark: reference (full-sweep) vs indexed
//! (worklist/heap) `GDB` and `EMD` across the paper's sparsification ratios
//! α ∈ {0.3, 0.5, 0.7} on synthetic power-law and forest-fire-sampled
//! topologies, plus the acceptance row — `EMD` at α = 0.5 on a 60k-vertex
//! power-law graph, where the indexed engine must be ≥ 2× the reference.
//!
//! Both engines are bit-identical (the warm-up runs re-verify it here, in
//! release mode, at benchmark scale); the speedup comes from work the
//! indexed engine provably avoids or restructures: the O(1) backbone
//! position map (the reference pays an O(α|E|) scan per swap — quadratic in
//! graph size overall), the cache-aware 8-ary vertex heap with in-place
//! Floyd rebuilds, the log-free E-phase candidate evaluation, and the
//! scratch reuse.  The measured trajectory is written to
//! `BENCH_sparsify.json` at the repository root so successive PRs can track
//! it.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_core::prelude::*;
use ugs_datasets::prelude::*;

/// Preferential-attachment graph with the workspace's canonical uniform
/// probability model (matching the `0.05 + 0.9·u` generators used across
/// the test suites).
fn powerlaw_uniform(num_vertices: usize) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    preferential_attachment(
        num_vertices,
        4,
        ProbabilityModel::Uniform {
            low: 0.05,
            high: 0.95,
        },
        &mut rng,
    )
}

/// 12k-vertex power-law graph in the paper's low-probability Flickr regime.
fn powerlaw_flickr() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    preferential_attachment(12_000, 4, ProbabilityModel::FlickrLike, &mut rng)
}

/// Forest-fire sample of a denser power-law graph (the paper's
/// graph-reduction pipeline, Table 2).
fn forest_fire_graph() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xFF);
    let source = preferential_attachment(9_000, 5, ProbabilityModel::TwitterLike, &mut rng);
    forest_fire_sample(&source, 3_000, 0.7, &mut rng).0
}

fn spec_for(method: Method, alpha: f64, engine: Engine) -> SparsifierSpec {
    let base = match method {
        Method::Gdb => SparsifierSpec::gdb(),
        Method::Emd => SparsifierSpec::emd(),
        Method::Lp => unreachable!("LP has no engine dimension"),
    };
    base.alpha(alpha).max_iterations(8).engine(engine)
}

/// Runs `spec` once with a fixed seed and warm scratch, returning the output.
fn run_once(
    spec: &SparsifierSpec,
    g: &UncertainGraph,
    scratch: &mut CoreScratch,
) -> ugs_core::SparsifyOutput {
    let mut rng = SmallRng::seed_from_u64(1);
    spec.sparsify_with(g, &mut rng, scratch).expect("sparsify")
}

/// Mean wall-clock of repeated identical runs (≥ 2 rounds, ~400 ms budget).
fn time_runs(spec: &SparsifierSpec, g: &UncertainGraph, scratch: &mut CoreScratch) -> Duration {
    run_once(spec, g, scratch); // warm the scratch
    let started = Instant::now();
    let mut rounds = 0u32;
    while rounds < 2 || (started.elapsed() < Duration::from_millis(400) && rounds < 12) {
        black_box(run_once(spec, g, scratch));
        rounds += 1;
    }
    started.elapsed() / rounds
}

struct Measurement {
    graph: &'static str,
    method: &'static str,
    alpha: f64,
    reference: Duration,
    indexed: Duration,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.reference.as_nanos() as f64 / self.indexed.as_nanos().max(1) as f64
    }
}

/// Verifies bit-parity at benchmark scale, times both engines and records
/// the measurement.
fn measure(
    results: &mut Vec<Measurement>,
    scratch: &mut CoreScratch,
    graph_name: &'static str,
    g: &UncertainGraph,
    method_name: &'static str,
    method: Method,
    alpha: f64,
) {
    let reference_spec = spec_for(method, alpha, Engine::Reference);
    let indexed_spec = spec_for(method, alpha, Engine::Indexed);

    // Release-mode parity re-check at benchmark scale: the two engines must
    // produce bit-identical sparsified graphs.
    let a = run_once(&reference_spec, g, scratch);
    let b = run_once(&indexed_spec, g, scratch);
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (ea, eb) in a.graph.edges().zip(b.graph.edges()) {
        assert_eq!((ea.u, ea.v), (eb.u, eb.v), "{graph_name} {method_name}");
        assert_eq!(
            ea.p.to_bits(),
            eb.p.to_bits(),
            "{graph_name} {method_name} alpha={alpha}: engines diverged"
        );
    }

    let reference = time_runs(&reference_spec, g, scratch);
    let indexed = time_runs(&indexed_spec, g, scratch);
    let measurement = Measurement {
        graph: graph_name,
        method: method_name,
        alpha,
        reference,
        indexed,
    };
    println!(
        "{graph_name:<20} {method_name:<4} α={alpha:<4} reference {reference:>10.2?}  \
         indexed {indexed:>10.2?}  ({:.2}x)",
        measurement.speedup()
    );
    results.push(measurement);
}

// The timings are taken with the hand-rolled `time_runs` (whole multi-second
// sparsifications do not fit criterion's sampling model) and reported via
// stdout + `BENCH_sparsify.json`; criterion only provides the bench harness
// entry point.
fn sparsify_engines(_c: &mut Criterion) {
    let mut scratch = CoreScratch::new();
    let mut results: Vec<Measurement> = Vec::new();

    // Full α grid on the mid-size topologies.
    let graphs: Vec<(&'static str, UncertainGraph)> = vec![
        ("powerlaw_uniform_12k", powerlaw_uniform(12_000)),
        ("powerlaw_flickr_12k", powerlaw_flickr()),
        ("forest_fire_3k", forest_fire_graph()),
    ];
    for (graph_name, g) in &graphs {
        for (method_name, method) in [("GDB", Method::Gdb), ("EMD", Method::Emd)] {
            for alpha in [0.3, 0.5, 0.7] {
                measure(
                    &mut results,
                    &mut scratch,
                    graph_name,
                    g,
                    method_name,
                    method,
                    alpha,
                );
            }
        }
    }

    // Acceptance row: EMD at α = 0.5 on a 60k-vertex power-law graph, where
    // the reference's O(α|E|) swap scans and heap rebuilds dominate.
    let big = powerlaw_uniform(60_000);
    measure(
        &mut results,
        &mut scratch,
        "powerlaw_uniform_60k",
        &big,
        "EMD",
        Method::Emd,
        0.5,
    );

    let acceptance = results.last().expect("acceptance row measured").speedup();
    println!("acceptance: indexed EMD is {acceptance:.2}x the reference on powerlaw_uniform_60k at alpha = 0.5 (bar: >= 2x)");
    // Hard regression tripwire for the CI smoke: the nominal bar is 2x
    // (measured 2.1-2.3x on dedicated hardware); the asserted floor leaves
    // headroom for noisy shared runners while still catching a real loss of
    // the indexed engine's advantage.
    assert!(
        acceptance >= 1.6,
        "indexed EMD regressed to {acceptance:.2}x the reference (floor 1.6x, nominal bar 2x)"
    );

    write_trajectory(&results);
}

/// Persists the measured trajectory as `BENCH_sparsify.json` at the repo
/// root.
fn write_trajectory(results: &[Measurement]) {
    let entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"graph\": \"{}\", \"method\": \"{}\", \"alpha\": {}, \
                 \"reference_ns\": {}, \"indexed_ns\": {}, \"speedup\": {:.2}}}",
                m.graph,
                m.method,
                m.alpha,
                m.reference.as_nanos(),
                m.indexed.as_nanos(),
                m.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"sparsify\",\n  \"graphs\": \"powerlaw_uniform_* = preferential_attachment(N vertices, 4 edges/vertex, Uniform(0.05, 0.95)); powerlaw_flickr_12k = same topology with FlickrLike probabilities; forest_fire_3k = forest_fire_sample(3000 vertices of a 9000-vertex TwitterLike power-law, burn 0.7)\",\n  \"unit\": \"ns per full sparsification (backbone + optimise + materialise), max_iterations = 8\",\n  \"notes\": \"reference = paper-faithful full sweeps + per-iteration heap rebuild + O(alpha*E) scan per backbone swap; indexed = worklist GDB (clamp sign-guard + version stamps, adaptively probed), O(1) swap position map, cache-aware 8-ary vertex heap with in-place Floyd rebuilds, log-free E-phase candidate evaluation, CoreScratch reuse. Outputs verified bit-identical before timing. The reference swap scan is quadratic overall, so the gap widens with graph size; in the low-probability crawling regime (FlickrLike) the engines are closer. Acceptance: indexed EMD >= 2x reference on the 60k-vertex power-law at alpha = 0.5\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparsify.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_sparsify.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, sparsify_engines);
criterion_main!(benches);
