//! Ghost-halo critical path: PageRank and k-NN through the superstep
//! exchange over 2 and 4 loopback shard workers versus the monolithic
//! in-process run, on a 60k-vertex power-law graph in the paper's
//! probability regime (p̄ = 0.09).  Also measures the halo wire volume —
//! bytes exchanged per sampled world (ghost feeds, chained superstep
//! reports, owned collects) — by driving the `halo` op directly with a
//! byte-counting client.  Recorded in `BENCH_halo.json`.
//!
//! The workers are in-process `ugs-server` instances (one listener per
//! shard), so the numbers isolate the superstep protocol + exchange cost
//! from process scheduling noise; the wire format is byte-identical to
//! separate-process workers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_algos::pagerank::PageRankConfig;
use minijson::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::{GraphPartition, HaloPlan, UncertainGraph};

use ugs_datasets::{preferential_attachment, ProbabilityModel};
use ugs_dist::{CoordinatorConfig, DistCoordinator};
use ugs_queries::halo::{
    decode_level, decode_rank, encode_level, encode_rank, f64_from_hex, f64_to_hex,
};
use ugs_server::protocol::DEFAULT_BOUNDARY_PAGE;
use ugs_server::{serve, LineClient, ServerConfig, ServerHandle};
use ugs_service::QueryPlan;

const VERTICES: usize = 60_000;
const EDGES_PER_VERTEX: usize = 4;
const MEAN_P: f64 = 0.09;
const WORLDS: usize = 4;
const SEED: u64 = 17;
/// Loose enough to keep superstep counts in the tens at benchmark scale,
/// tight enough that the convergence accumulator genuinely stops the loop.
const TOLERANCE: f64 = 1e-4;
const KNN_SOURCE: usize = 0;

fn powerlaw_graph() -> Arc<UncertainGraph> {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    Arc::new(preferential_attachment(
        VERTICES,
        EDGES_PER_VERTEX,
        ProbabilityModel::Fixed(MEAN_P),
        &mut rng,
    ))
}

fn plan() -> QueryPlan {
    QueryPlan::parse_str(&format!(
        r#"{{"worlds": {WORLDS}, "threads": 2, "seed": {SEED},
            "queries": [{{"type": "pagerank", "tolerance": {TOLERANCE}}},
                        {{"type": "knn", "source": {KNN_SOURCE}, "k": 10}}]}}"#
    ))
    .expect("bench plan parses")
}

fn spawn_fleet(graph: &Arc<UncertainGraph>, workers: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> = (0..workers)
        .map(|k| {
            let config = ServerConfig {
                shard: Some((k, workers)),
                ..ServerConfig::default()
            };
            serve(graph.clone(), config).expect("bind loopback worker")
        })
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

struct FleetMeasurement {
    workers: usize,
    coordinator: Duration,
    wire: HaloWire,
}

fn measure_fleet(
    graph: &Arc<UncertainGraph>,
    workers: usize,
    plan: &QueryPlan,
) -> FleetMeasurement {
    let (handles, addrs) = spawn_fleet(graph, workers);
    let mut coordinator =
        DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default())
            .expect("assemble fleet");

    // Warm pass (connections, halo plan construction), then the timed run.
    let warm = coordinator.execute(plan);
    for outcome in &warm {
        if let Err(e) = outcome {
            panic!("warm pass failed at {workers} workers: {e}");
        }
    }
    let started = Instant::now();
    let answers = coordinator.execute(plan);
    let coordinator_time = started.elapsed();

    // Parity spot-check at benchmark scale: the halo answers equal the
    // in-process answers bitwise.
    let monolithic = plan.execute_detailed(graph.clone());
    assert_eq!(answers, monolithic, "halo parity at {workers} workers");

    let wire = measure_halo_wire(graph, &addrs);
    coordinator.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    FleetMeasurement {
        workers,
        coordinator: coordinator_time,
        wire,
    }
}

/// A [`LineClient`] that counts every byte crossing the wire (request and
/// response lines, newline framing included).
struct WireTap {
    client: LineClient,
    bytes: u64,
}

impl WireTap {
    fn connect(addr: &str) -> WireTap {
        let mut client = LineClient::connect(addr).expect("connect worker");
        client
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        WireTap { client, bytes: 0 }
    }

    fn request(&mut self, line: &str) -> Value {
        self.bytes += line.len() as u64 + 1;
        let raw = self
            .client
            .request_raw(line)
            .expect("halo exchange")
            .expect("worker answered");
        self.bytes += raw.len() as u64 + 1;
        let value = Value::parse(&raw).expect("worker answers JSON");
        assert_eq!(value.get_str("status"), Some("ok"), "{raw}");
        value
    }
}

/// One paged halo window: `(entries, total)`.
fn window(response: &Value) -> (Vec<String>, usize) {
    let total = response.get_usize("total").expect("report total");
    let entries = response
        .get("values")
        .and_then(|v| v.as_array())
        .expect("report values")
        .iter()
        .map(|v| v.as_str().expect("string entry").to_string())
        .collect();
    (entries, total)
}

/// Drains a paged report whose first window is `first`, issuing `phase`
/// requests (`page` for step reports, `collect` for collects) until the
/// report's `total` entries arrived.
fn drain(
    tap: &mut WireTap,
    identity: &str,
    world: usize,
    phase: &str,
    first: Value,
) -> Vec<String> {
    let (mut entries, total) = window(&first);
    while entries.len() < total {
        let line = format!(
            "{identity}, \"world\": {world}, \"phase\": \"{phase}\", \"from\": {}, \
             \"max\": {DEFAULT_BOUNDARY_PAGE}}}",
            entries.len()
        );
        let (page, _) = window(&tap.request(&line));
        assert!(!page.is_empty(), "report window advances");
        entries.extend(page);
    }
    entries
}

struct HaloWire {
    bytes_per_world: f64,
    pagerank_supersteps_per_world: f64,
    ghost_vertices: usize,
    replication_factor: f64,
}

/// Replays the coordinator's halo recipe for all `WORLDS` worlds — ghost
/// feeds, chained PageRank supersteps, owned collects, routed BFS
/// settlements — through byte-counting clients, and reports the measured
/// wire volume per sampled world.
fn measure_halo_wire(graph: &Arc<UncertainGraph>, addrs: &[String]) -> HaloWire {
    let shards = addrs.len();
    let partition = GraphPartition::contiguous(graph, shards).expect("partition");
    let halo = HaloPlan::new(graph, &partition);
    let stats = halo.stats();
    let ghost_vertices: usize = stats.shards.iter().map(|s| s.ghost_vertices).sum();
    let mut taps: Vec<WireTap> = addrs.iter().map(|addr| WireTap::connect(addr)).collect();

    // Same replay identity the coordinator derives for this plan.
    let batch_seed = SmallRng::seed_from_u64(SEED).gen::<u64>();
    let config = PageRankConfig {
        tolerance: TOLERANCE,
        ..PageRankConfig::default()
    };
    let identity = |token: &str, k: usize, kernel: &str| {
        format!(
            "{{\"op\": \"halo\", \"job\": \"{token}\", \"shard\": {k}, \"shards\": {shards}, \
             \"seed\": \"{batch_seed}\", \"mode\": \"auto\", \"kernel\": {kernel}"
        )
    };
    let pr_kernel = format!(
        "{{\"type\": \"pagerank\", \"damping\": \"{}\"}}",
        f64_to_hex(config.damping)
    );
    let bfs_kernel = format!("{{\"type\": \"bfs\", \"source\": {KNN_SOURCE}}}");

    let n = graph.num_vertices();
    let mut supersteps = 0u64;
    for world in 0..WORLDS {
        // PageRank: feed ghosts, step shards ascending threading the
        // convergence accumulator, install reported boundary ranks.
        let mut board = vec![1.0 / n as f64; n];
        for step in 0..config.max_iterations {
            if step > 0 {
                for (k, tap) in taps.iter_mut().enumerate() {
                    // Chunked exactly like the coordinator, so a hub
                    // shard's halo never exceeds the request-line bound.
                    for chunk in halo.shard(k).ghosts().chunks(8_192) {
                        let values = chunk
                            .iter()
                            .map(|&gv| format!("\"{}\"", encode_rank(gv as u32, board[gv])))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let line = format!(
                            "{}, \"world\": {world}, \"phase\": \"feed\", \"values\": [{values}]}}",
                            identity("bytes-pr", k, &pr_kernel)
                        );
                        tap.request(&line);
                    }
                }
            }
            let mut acc = 0.0f64;
            for (k, tap) in taps.iter_mut().enumerate() {
                let id = identity("bytes-pr", k, &pr_kernel);
                let line = format!(
                    "{id}, \"world\": {world}, \"phase\": \"step\", \"step\": {step}, \
                     \"acc\": \"{}\"}}",
                    f64_to_hex(acc)
                );
                let response = tap.request(&line);
                acc = f64_from_hex(response.get_str("acc").expect("folded acc")).unwrap();
                for entry in drain(tap, &id, world, "page", response) {
                    let (gid, rank) = decode_rank(&entry).expect("boundary rank");
                    board[gid as usize] = rank;
                }
            }
            supersteps += 1;
            if acc < config.tolerance {
                break;
            }
        }
        for (k, tap) in taps.iter_mut().enumerate() {
            let id = identity("bytes-pr", k, &pr_kernel);
            let line = format!(
                "{id}, \"world\": {world}, \"phase\": \"collect\", \"from\": 0, \
                 \"max\": {DEFAULT_BOUNDARY_PAGE}}}"
            );
            let first = tap.request(&line);
            let owned = drain(tap, &id, world, "collect", first);
            assert_eq!(owned.len(), partition.shard(k).num_vertices());
        }

        // BFS (the k-NN core): route frontier settlements to their owner
        // shards level by level; first report wins.
        let mut dist = vec![u32::MAX; n];
        dist[KNN_SOURCE] = 0;
        let mut settlements: Vec<(u32, u32)> = vec![(KNN_SOURCE as u32, 0)];
        let mut step = 0usize;
        while !settlements.is_empty() && step < n {
            let mut next: Vec<(u32, u32)> = Vec::new();
            for (k, tap) in taps.iter_mut().enumerate() {
                let routed = settlements
                    .iter()
                    .filter(|&&(v, _)| partition.shard_of(v as usize) == k)
                    .map(|&(v, level)| format!("\"{}\"", encode_level(v, level)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let id = identity("bytes-bfs", k, &bfs_kernel);
                let line = format!(
                    "{id}, \"world\": {world}, \"phase\": \"step\", \"step\": {step}, \
                     \"values\": [{routed}]}}"
                );
                let response = tap.request(&line);
                for entry in drain(tap, &id, world, "page", response) {
                    let (gid, level) = decode_level(&entry).expect("settlement");
                    if dist[gid as usize] == u32::MAX {
                        dist[gid as usize] = level;
                        next.push((gid, level));
                    }
                }
            }
            settlements = next;
            step += 1;
        }
    }

    let total: u64 = taps.iter().map(|tap| tap.bytes).sum();
    HaloWire {
        bytes_per_world: total as f64 / WORLDS as f64,
        pagerank_supersteps_per_world: supersteps as f64 / WORLDS as f64,
        ghost_vertices,
        replication_factor: stats.replication_factor,
    }
}

fn halo_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    let graph = powerlaw_graph();
    let plan = plan();

    // In-process monolithic baseline: same plan, same worlds, no halo.
    let warm = plan.execute_detailed(graph.clone());
    assert!(warm.iter().all(|outcome| outcome.is_ok()));
    let started = Instant::now();
    black_box(plan.execute_detailed(graph.clone()));
    let in_process = started.elapsed();

    let fleets: Vec<FleetMeasurement> = [2usize, 4]
        .iter()
        .map(|&workers| measure_fleet(&graph, workers, &plan))
        .collect();

    group.bench_with_input(
        BenchmarkId::new("in_process", MEAN_P),
        &in_process,
        |b, &d| {
            b.iter(|| black_box(d));
        },
    );
    for fleet in &fleets {
        group.bench_with_input(
            BenchmarkId::new("coordinator", fleet.workers),
            &fleet.coordinator,
            |b, &d| {
                b.iter(|| black_box(d));
            },
        );
    }
    group.finish();

    println!(
        "p̄ = {MEAN_P}  |V| = {VERTICES}  |E| ≈ {}  worlds = {WORLDS}  in-process {:.2?}",
        graph.num_edges(),
        in_process,
    );
    for fleet in &fleets {
        println!(
            "  {} workers: coordinator {:.2?} ({:.2}x in-process), halo {:.1} KiB/world, \
             {:.1} pagerank supersteps/world, {} ghosts, replication {:.3}",
            fleet.workers,
            fleet.coordinator,
            fleet.coordinator.as_secs_f64() / in_process.as_secs_f64().max(1e-9),
            fleet.wire.bytes_per_world / 1024.0,
            fleet.wire.pagerank_supersteps_per_world,
            fleet.wire.ghost_vertices,
            fleet.wire.replication_factor,
        );
    }
    write_trajectory(graph.num_edges(), in_process, &fleets);
}

/// Persists the measured halo critical path as `BENCH_halo.json` at the
/// repo root.
fn write_trajectory(edges: usize, in_process: Duration, fleets: &[FleetMeasurement]) {
    let mut fleet_entries = String::new();
    for (i, fleet) in fleets.iter().enumerate() {
        if i > 0 {
            fleet_entries.push_str(",\n");
        }
        fleet_entries.push_str(&format!(
            "    {{\"workers\": {}, \"coordinator_ns\": {}, \
             \"coordinator_over_in_process\": {:.2}, \
             \"halo_bytes_per_world\": {:.0}, \
             \"pagerank_supersteps_per_world\": {:.2}, \
             \"ghost_vertices\": {}, \"replication_factor\": {:.4}}}",
            fleet.workers,
            fleet.coordinator.as_nanos(),
            fleet.coordinator.as_secs_f64() / in_process.as_secs_f64().max(1e-9),
            fleet.wire.bytes_per_world,
            fleet.wire.pagerank_supersteps_per_world,
            fleet.wire.ghost_vertices,
            fleet.wire.replication_factor,
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"halo\",\n  \
         \"graph\": \"preferential_attachment({VERTICES} vertices, m = {EDGES_PER_VERTEX}, \
         p = {MEAN_P})\",\n  \
         \"edges\": {edges},\n  \"worlds\": {WORLDS},\n  \
         \"plan\": [\"pagerank(tolerance {TOLERANCE})\", \"knn(source {KNN_SOURCE}, k 10)\"],\n  \
         \"notes\": \"critical path of one ghost-halo plan: coordinator + N loopback shard \
         workers (halo wire op: ghost feeds, chained supersteps, paged collects) vs the \
         monolithic in-process run; answers asserted bit-identical before timing is reported. \
         halo_bytes_per_world counts every request and response byte of one world's full \
         exchange (PageRank supersteps until the convergence accumulator drops under \
         tolerance, plus the k-NN BFS settlement routing), averaged over the sampled worlds. \
         ghost_vertices and replication_factor describe the static halo layout \
         (ugs partition reports the same numbers per shard)\",\n  \
         \"in_process_ns\": {},\n  \"fleets\": [\n{fleet_entries}\n  ]\n}}\n",
        in_process.as_nanos(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_halo.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_halo.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, halo_bench);
criterion_main!(benches);
