//! TCP front-end end-to-end cost: closed-loop mixed-plan round-trips over
//! loopback against `ugs-server`, cold cache (every plan executes) vs warm
//! cache (every plan replays bit-identically from the deterministic result
//! cache).  Reports throughput and tail latency; recorded in
//! `BENCH_server.json`.
//!
//! The warm numbers isolate the protocol + cache path (parse, key lookup,
//! report render, socket round-trip) from Monte-Carlo execution — the gap
//! between the two is what the cache buys a dashboard that re-asks the same
//! plans.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_datasets::{erdos_renyi, ProbabilityModel};
use ugs_server::{serve, LineClient, ServerConfig};

const WORLDS: usize = 256;
const MEAN_P: f64 = 0.09;
/// Distinct plans in the working set (seeds 0..PLANS × two query mixes).
const PLANS: usize = 8;
const COLD_REQUESTS: usize = 2 * PLANS;
const WARM_REQUESTS: usize = 120;

fn flickr_regime_graph() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    erdos_renyi(400, 0.05, ProbabilityModel::Fixed(MEAN_P), &mut rng)
}

/// The `i`-th plan of the closed-loop schedule: seeds cycle through the
/// working set, the query mix alternates.
fn plan(i: usize) -> String {
    let seed = i % PLANS;
    let queries = if i.is_multiple_of(2) {
        r#"[{"type": "connectivity"}, {"type": "edge_frequency"}]"#
    } else {
        r#"[{"type": "pagerank"}, {"type": "degree_histogram"}]"#
    };
    format!(r#"{{"worlds": {WORLDS}, "seed": {seed}, "queries": {queries}}}"#)
}

/// One closed-loop round-trip: submit, poll to delivery, measure.
fn round_trip(client: &mut LineClient, plan: &str) -> Duration {
    let started = Instant::now();
    let accepted = client.submit(plan).expect("submit");
    assert_eq!(
        accepted.get_str("status"),
        Some("ok"),
        "{}",
        accepted.render()
    );
    let job = accepted.get_usize("job").expect("job id") as u64;
    black_box(client.wait_for_report(job).expect("report"));
    started.elapsed()
}

struct Distribution {
    total: Duration,
    p50: Duration,
    p99: Duration,
    requests: usize,
}

impl Distribution {
    fn from_latencies(mut latencies: Vec<Duration>) -> Self {
        let total = latencies.iter().sum();
        let requests = latencies.len();
        latencies.sort();
        let pick = |q: f64| latencies[((requests - 1) as f64 * q).round() as usize];
        Distribution {
            total,
            p50: pick(0.50),
            p99: pick(0.99),
            requests,
        }
    }

    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.total.as_secs_f64().max(1e-9)
    }
}

struct Measurement {
    cold: Distribution,
    warm: Distribution,
    cache_hits: u64,
}

fn measure(g: &UncertainGraph) -> Measurement {
    let server = serve(
        g.clone(),
        ServerConfig {
            executors: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = LineClient::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    // Cold: the working set is unseen, every request executes its plan.
    let cold = Distribution::from_latencies(
        (0..COLD_REQUESTS)
            .map(|i| round_trip(&mut client, &plan(i)))
            .collect(),
    );
    // Warm: the same plans again (several passes), all served from cache.
    let warm = Distribution::from_latencies(
        (0..WARM_REQUESTS)
            .map(|i| round_trip(&mut client, &plan(i % COLD_REQUESTS)))
            .collect(),
    );
    let cache_hits = server.cache_stats().hits;
    server.shutdown();
    Measurement {
        cold,
        warm,
        cache_hits,
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    num / den.max(1e-9)
}

fn server_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    let g = flickr_regime_graph();
    let m = measure(&g);

    for (name, duration) in [
        ("cold_p50", m.cold.p50),
        ("cold_p99", m.cold.p99),
        ("warm_p50", m.warm.p50),
        ("warm_p99", m.warm.p99),
    ] {
        group.bench_with_input(BenchmarkId::new(name, MEAN_P), &duration, |b, &d| {
            // Report the externally measured duration through the
            // criterion-style output (one no-op iteration).
            b.iter(|| black_box(d));
        });
    }
    group.finish();

    println!(
        "p̄ = {MEAN_P}  worlds = {WORLDS}  plans = {COLD_REQUESTS}  \
         cold {:.1} req/s (p50 {:.2?}, p99 {:.2?})  \
         warm {:.1} req/s (p50 {:.2?}, p99 {:.2?})  cache hits {}",
        m.cold.throughput_rps(),
        m.cold.p50,
        m.cold.p99,
        m.warm.throughput_rps(),
        m.warm.p50,
        m.warm.p99,
        m.cache_hits,
    );
    write_trajectory(&m);
}

/// Persists the measured round-trip costs as `BENCH_server.json` at the
/// repo root.
fn write_trajectory(m: &Measurement) {
    let json = format!(
        "{{\n  \"benchmark\": \"server\",\n  \
         \"graph\": \"erdos_renyi(400 vertices, 5% density, p = {MEAN_P})\",\n  \
         \"worlds\": {WORLDS},\n  \"distinct_plans\": {COLD_REQUESTS},\n  \
         \"mix\": [\"connectivity+edge_frequency\", \"pagerank+degree_histogram\"],\n  \
         \"protocol\": \"line-delimited JSON over loopback TCP, closed loop\",\n  \
         \"notes\": \"submit + poll-to-delivery round-trips; cold = unseen plans (full \
         Monte-Carlo execution), warm = identical plans replayed bit-identically from the \
         deterministic result cache\",\n  \
         \"cold_requests\": {},\n  \"warm_requests\": {},\n  \
         \"cold_throughput_rps\": {:.1},\n  \"warm_throughput_rps\": {:.1},\n  \
         \"cold_p50_ns\": {},\n  \"cold_p99_ns\": {},\n  \
         \"warm_p50_ns\": {},\n  \"warm_p99_ns\": {},\n  \
         \"warm_over_cold_throughput\": {:.2},\n  \"cache_hits\": {}\n}}\n",
        m.cold.requests,
        m.warm.requests,
        m.cold.throughput_rps(),
        m.warm.throughput_rps(),
        m.cold.p50.as_nanos(),
        m.cold.p99.as_nanos(),
        m.warm.p50.as_nanos(),
        m.warm.p99.as_nanos(),
        ratio(m.warm.throughput_rps(), m.cold.throughput_rps()),
        m.cache_hits,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_server.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, server_bench);
criterion_main!(benches);
