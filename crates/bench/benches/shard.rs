//! Sharded vs monolithic world-processing throughput on a 60k-vertex
//! power-law graph at the paper's Flickr-regime edge probability (0.09).
//!
//! The measured cycle is what a shard-owning worker actually does per world
//! for the count-query mix: draw the (replayed, bit-identical) edge stream,
//! scatter/materialise its shard, and run the per-shard kernel partials
//! (connected-component labelling + a degree sweep — the per-world work of
//! `ConnectivityObserver` / `DegreeHistogramObserver` restricted to the
//! shard).  The monolithic baseline runs the identical cycle over the whole
//! graph with the classic [`WorldEngine`].
//!
//! Reported numbers:
//!
//! * `sharded_1 / monolithic` — the **abstraction overhead** of routing the
//!   same worlds through the `WorldSource` seam with a trivial partition;
//!   acceptance bound ≤ 1.15×.
//! * `sharded_N` (N ∈ {2, 4}) — the **critical path**: every shard's worker
//!   is timed in isolation (each replays the full stream but materialises
//!   and evaluates only its shard) and the slowest shard is the wall-clock
//!   of a one-worker-per-shard deployment.  Measuring shards sequentially
//!   keeps the number meaningful on any core count, including 1-core CI
//!   boxes.  Throughput scales with shards because materialisation and the
//!   kernels partition, while the replayed sampling stays `O(Σ pₑ)` — cheap
//!   on the plateau (the skip sampler's exact fast path).
//!
//! The partition comes from the probability-aware spanning-forest labelling
//! (`ugs_core::spanning_partition_labels`); its cut probability mass is
//! recorded next to the timings in `BENCH_shard.json`.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_algos::traversal::connected_components;
use graph_algos::DeterministicGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::{GraphPartition, UncertainGraph};

use ugs_core::spanning_partition_labels;
use ugs_datasets::prelude::*;
use ugs_queries::engine::{SampleMethod, WorldEngine};
use ugs_queries::sharded::ShardedWorldEngine;

const VERTICES: usize = 60_000;
const WORLDS: usize = 60;
const MEAN_P: f64 = 0.09;

fn powerlaw() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    preferential_attachment(VERTICES, 4, ProbabilityModel::Fixed(MEAN_P), &mut rng)
}

/// Mean wall time of one invocation of `run` over repeated runs for at
/// least 400 ms (after one warm-up invocation).
fn time_run(mut run: impl FnMut()) -> Duration {
    run();
    let started = Instant::now();
    let mut rounds = 0u32;
    while started.elapsed() < Duration::from_millis(400) {
        run();
        rounds += 1;
    }
    started.elapsed() / rounds.max(1)
}

/// The per-world kernel partials of the count-query mix: component
/// labelling plus a degree sweep.
fn kernel(world: &DeterministicGraph) -> usize {
    let (_, components) = connected_components(world);
    let degree_sum: usize = (0..world.num_vertices()).map(|u| world.degree(u)).sum();
    components + degree_sum
}

/// `WORLDS` monolithic worlds, sequentially, with the kernel partials.
fn run_monolithic(engine: &WorldEngine<'_>) -> usize {
    let mut scratch = engine.make_scratch();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut sink = 0usize;
    for _ in 0..WORLDS {
        let world = engine.sample_world(&mut rng, &mut scratch);
        sink += kernel(world);
    }
    sink
}

/// `WORLDS` worlds of **one** shard: replay the full stream, materialise
/// only the shard, run the shard's kernel partials plus the boundary pass.
fn run_one_shard(engine: &ShardedWorldEngine<'_>, shard: usize) -> usize {
    let mut scratch = engine.make_shard_scratch(shard);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut sink = 0usize;
    for _ in 0..WORLDS {
        let world = engine.sample_shard_world(&mut rng, &mut scratch);
        sink += kernel(world);
        sink += scratch.present_cuts().len();
    }
    sink
}

struct ShardedMeasurement {
    shards: usize,
    /// Wall time of every shard's worker, measured in isolation.
    per_shard: Vec<Duration>,
    cut_mass: f64,
}

impl ShardedMeasurement {
    /// The slowest shard = the wall-clock of one worker per shard.
    fn critical_path(&self) -> Duration {
        self.per_shard.iter().copied().max().expect("shards > 0")
    }
}

fn measure(g: &UncertainGraph) -> (Duration, Vec<ShardedMeasurement>) {
    let monolithic_engine = WorldEngine::new(g).with_method(SampleMethod::Skip);
    let monolithic = time_run(|| {
        black_box(run_monolithic(&monolithic_engine));
    });

    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4] {
        let labels = spanning_partition_labels(g, shards);
        let partition = GraphPartition::from_labels(g, &labels, shards).expect("valid labels");
        let engine = ShardedWorldEngine::new(g, &partition).with_method(SampleMethod::Skip);
        let per_shard = (0..shards)
            .map(|shard| {
                time_run(|| {
                    black_box(run_one_shard(&engine, shard));
                })
            })
            .collect();
        sharded.push(ShardedMeasurement {
            shards,
            per_shard,
            cut_mass: partition.cut_probability_mass(),
        });
    }
    (monolithic, sharded)
}

fn ratio(num: Duration, den: Duration) -> f64 {
    num.as_nanos() as f64 / den.as_nanos().max(1) as f64
}

fn shard_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_sampling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    let g = powerlaw();
    let (monolithic, sharded) = measure(&g);

    group.bench_with_input(
        BenchmarkId::new("monolithic", VERTICES),
        &monolithic,
        |b, &d| {
            b.iter(|| black_box(d));
        },
    );
    for m in &sharded {
        group.bench_with_input(
            BenchmarkId::new(format!("sharded_{}", m.shards), VERTICES),
            &m.critical_path(),
            |b, &d| {
                b.iter(|| black_box(d));
            },
        );
    }
    group.finish();

    let overhead = ratio(sharded[0].critical_path(), monolithic);
    println!(
        "60k power-law (p = {MEAN_P}), {WORLDS} worlds/run: monolithic {:.2?}; \
         sharded_1 {:.2?} (overhead {overhead:.3}x, acceptance <= 1.15x); \
         critical path sharded_2 {:.2?} ({:.2}x); sharded_4 {:.2?} ({:.2}x)",
        monolithic,
        sharded[0].critical_path(),
        sharded[1].critical_path(),
        ratio(monolithic, sharded[1].critical_path()),
        sharded[2].critical_path(),
        ratio(monolithic, sharded[2].critical_path()),
    );
    write_trajectory(monolithic, &sharded);
}

/// Persists the measured trajectory as `BENCH_shard.json` at the repo root.
fn write_trajectory(monolithic: Duration, sharded: &[ShardedMeasurement]) {
    let rows: Vec<String> = sharded
        .iter()
        .map(|m| {
            let per_shard: Vec<String> = m
                .per_shard
                .iter()
                .map(|d| d.as_nanos().to_string())
                .collect();
            format!(
                "    {{\"shards\": {}, \"critical_path_ns\": {}, \
                 \"speedup_vs_monolithic\": {:.3}, \"per_shard_ns\": [{}], \
                 \"cut_probability_mass\": {:.2}}}",
                m.shards,
                m.critical_path().as_nanos(),
                ratio(monolithic, m.critical_path()),
                per_shard.join(", "),
                m.cut_mass.max(0.0)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"shard_sampling\",\n  \
         \"graph\": \"preferential_attachment({VERTICES} vertices, 4 edges/vertex, p = {MEAN_P})\",\n  \
         \"worlds_per_run\": {WORLDS},\n  \"unit\": \"ns per {WORLDS}-world processing run \
         (sample + materialise + count-kernel partials)\",\n  \
         \"partitioner\": \"spanning_partition_labels (chunked DFS over the maximum spanning forest)\",\n  \
         \"notes\": \"sharded_N = one worker per shard, each replaying the full edge stream \
         (worlds bit-identical to the monolithic engine) and materialising + evaluating only its \
         shard; critical_path_ns is the slowest shard, i.e. the wall-clock of a one-worker-per-shard \
         deployment, measured per shard in isolation so the number is core-count independent. \
         Acceptance: sharded_1 within 1.15x of monolithic (WorldSource abstraction overhead) and \
         speedup_vs_monolithic growing with the shard count.\",\n  \
         \"monolithic_wall_ns_per_run\": {},\n  \"sharded_1_over_monolithic\": {:.3},\n  \
         \"sharded\": [\n{}\n  ]\n}}\n",
        monolithic.as_nanos(),
        ratio(sharded[0].critical_path(), monolithic),
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_shard.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, shard_bench);
criterion_main!(benches);
