//! Latency-vs-accuracy frontier of adaptive-precision Monte-Carlo vs the
//! fixed-world baseline, plus the sparsifier control-variate estimator, on
//! the 60k-vertex power-law graph at the paper's Flickr-regime edge
//! probability (0.09).
//!
//! **Frontier.**  For each target half-width `ε` the adaptive driver
//! (`QueryBatch::with_precision`, empirical-Bernstein stopping at epoch
//! checkpoints) runs the connectivity mix until it *certifies* `ε` at
//! confidence `1 − δ`.  The fixed-world baseline must pick its budget a
//! priori; the smallest distribution-free budget with the same `(ε, δ)`
//! guarantee is the Hoeffding bound `⌈ln(2/δ) / 2ε²⌉` for a `[0, 1]`
//! statistic.  On the low-variance connectivity mix the empirical bound
//! converges on the range term (`∝ 1/ε`) while the a-priori budget pays
//! `∝ 1/ε²`, so the gap widens as `ε` shrinks — acceptance requires ≥ 2×
//! fewer worlds at matched `(ε, δ)` on at least one frontier point.
//!
//! **Control variate.**  The sparsifier-friendly workload is two-terminal
//! reliability across the single bridge joining two dense clusters: the
//! bridge is a cut edge, so the spanning-forest backbone (Algorithm 1 of
//! the paper, `ugs_core::build_backbone`) must keep it — at its original
//! probability — and the backbone then carries the query's entire variance.
//! Under common random numbers the coupled residual collapses, the
//! expensive original graph is only sampled to certify the residual, and
//! `E[f(G′)]` is bought with cheap backbone-only worlds.  Acceptance:
//! strictly fewer original-graph worlds than plain adaptive MC at the same
//! `(ε, δ)`, and achieved error ≤ `ε` against the analytic truth on a
//! seeded grid.
//!
//! Release-mode assertions run **before** any timing: worlds-consumed
//! thread-invariance (threads 1/2/4, bitwise half-width), the `max_worlds`
//! cap, and the CV error grid.  Results land in `BENCH_adaptive.json`.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_algos::traversal::connected_components;
use graph_algos::DeterministicGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_core::prelude::{build_backbone, BackboneConfig};
use ugs_datasets::prelude::*;
use ugs_queries::cv::{ControlVariate, CvConfig, CvEstimate};
use ugs_queries::engine::{SampleMethod, WorldEngine};
use ugs_queries::variance::{Precision, StoppingRule};
use ugs_queries::{AdaptiveReport, ConnectivityObserver, DegreeHistogramObserver, QueryBatch};

const VERTICES: usize = 60_000;
const MEAN_P: f64 = 0.09;
const DELTA: f64 = 0.05;
/// World budget cap handed to every adaptive run.
const CAP: usize = 100_000;
const BATCH_SEED: u64 = 17;

fn powerlaw() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    preferential_attachment(VERTICES, 4, ProbabilityModel::Fixed(MEAN_P), &mut rng)
}

/// Smallest a-priori fixed budget with a distribution-free `(ε, δ)`
/// guarantee for a `[0, 1]` statistic (two-sided Hoeffding bound).
fn hoeffding_budget(epsilon: f64) -> usize {
    ((2.0 / DELTA).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// One adaptive connectivity run through the product driver; `riders` adds
/// an untracked degree-histogram observer to the mix.
fn adaptive_run(
    g: &UncertainGraph,
    epsilon: f64,
    threads: usize,
    riders: bool,
) -> (AdaptiveReport, Duration) {
    let precision = Precision::new(epsilon).with_delta(DELTA);
    let engine = WorldEngine::new(g).with_method(SampleMethod::Skip);
    let mut batch = QueryBatch::from_engine(engine, CAP, threads).with_precision(precision);
    batch.register(ConnectivityObserver::new(g));
    if riders {
        batch.register(DegreeHistogramObserver::new(g));
    }
    let mut rng = SmallRng::seed_from_u64(BATCH_SEED);
    let started = Instant::now();
    let results = batch.run(&mut rng);
    let elapsed = started.elapsed();
    let report = *results.adaptive().expect("adaptive batch carries a report");
    (report, elapsed)
}

/// The fixed-world baseline: the same driver and observer, `worlds` worlds,
/// no stopping rule.
fn fixed_run(g: &UncertainGraph, worlds: usize) -> Duration {
    let engine = WorldEngine::new(g).with_method(SampleMethod::Skip);
    let mut batch = QueryBatch::from_engine(engine, worlds, 1);
    batch.register(ConnectivityObserver::new(g));
    let mut rng = SmallRng::seed_from_u64(BATCH_SEED);
    let started = Instant::now();
    black_box(batch.run(&mut rng));
    started.elapsed()
}

// ---- control-variate workload -------------------------------------------

const CLUSTER: usize = 16;
const P_IN: f64 = 0.9;
const P_BRIDGE: f64 = 0.5;

/// Two 16-vertex clusters (cliques at p = 0.9) joined by one bridge at
/// p = 0.5; two-terminal reliability across the bridge has analytic truth
/// `P_BRIDGE` and all of its variance on the one edge every cut-respecting
/// backbone keeps.
fn cut_graph() -> UncertainGraph {
    let n = 2 * CLUSTER;
    let mut edges = Vec::new();
    for base in [0, CLUSTER] {
        for i in 0..CLUSTER {
            for j in (i + 1)..CLUSTER {
                edges.push((base + i, base + j, P_IN));
            }
        }
    }
    edges.push((0, CLUSTER, P_BRIDGE));
    UncertainGraph::from_edges(n, edges).unwrap()
}

/// The spanning-forest backbone (Algorithm 1) as a standalone graph; kept
/// edges retain their original probabilities.
fn backbone_of(g: &UncertainGraph, alpha: f64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let ids = build_backbone(g, alpha, &BackboneConfig::default(), &mut rng)
        .expect("backbone construction");
    let all: Vec<_> = g.edges().map(|e| (e.u, e.v, e.p)).collect();
    let edges: Vec<_> = ids.iter().map(|&id| all[id]).collect();
    UncertainGraph::from_edges(g.num_vertices(), edges).unwrap()
}

fn reach(world: &DeterministicGraph, s: usize, t: usize) -> f64 {
    let (labels, _) = connected_components(world);
    f64::from(labels[s] == labels[t])
}

/// Plain adaptive MC on the original graph: the same empirical-Bernstein
/// rule the batch driver uses, fed the reliability statistic directly.
fn plain_adaptive(g: &UncertainGraph, precision: Precision, seed: u64) -> (usize, f64, f64) {
    let engine = WorldEngine::new(g).with_method(SampleMethod::Skip);
    let mut rule = StoppingRule::new(precision);
    let slot = rule.register(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scratch = engine.make_scratch();
    let cap = precision.cap(CAP.max(1_000_000));
    let epoch = precision.epoch.max(1);
    let mut consumed = 0usize;
    let mut total = 0.0;
    loop {
        let block = epoch.min(cap - consumed);
        for _ in 0..block {
            let world = engine.sample_world(&mut rng, &mut scratch);
            let x = reach(world, 0, CLUSTER);
            total += x;
            rule.record(slot, x);
        }
        consumed += block;
        if rule.check() || consumed >= cap {
            break;
        }
    }
    (consumed, total / consumed as f64, rule.half_width())
}

fn cv_run(cv: &ControlVariate<'_>, precision: Precision, seed: u64) -> (CvEstimate, Duration) {
    let config = CvConfig::new(precision, (0.0, 1.0));
    let mut rng = SmallRng::seed_from_u64(seed);
    let started = Instant::now();
    let estimate = cv.estimate(|w| reach(w, 0, CLUSTER), &config, &mut rng);
    (estimate, started.elapsed())
}

// ---- measurement + acceptance -------------------------------------------

struct FrontierPoint {
    epsilon: f64,
    adaptive_worlds: usize,
    adaptive_epochs: usize,
    achieved_half_width: f64,
    adaptive_wall: Duration,
    fixed_budget: usize,
    fixed_wall: Duration,
}

fn ratio(num: Duration, den: Duration) -> f64 {
    num.as_nanos() as f64 / den.as_nanos().max(1) as f64
}

fn adaptive_bench(c: &mut Criterion) {
    let g = powerlaw();

    // -- Assertions first, in release, before any timing. --

    // 1. Worlds consumed (and the certified half-width, bitwise) are
    //    invariant to the thread count.
    let (baseline, _) = adaptive_run(&g, 0.05, 1, false);
    for threads in [2usize, 4] {
        let (report, _) = adaptive_run(&g, 0.05, threads, false);
        assert_eq!(
            report.worlds_used, baseline.worlds_used,
            "worlds consumed must not depend on the thread count"
        );
        assert_eq!(
            report.half_width.to_bits(),
            baseline.half_width.to_bits(),
            "certified half-width must be bit-identical across thread counts"
        );
    }

    // 2. Adaptive runs never exceed max_worlds (cap deliberately not a
    //    multiple of the epoch size).
    {
        let precision = Precision::new(1e-4).with_delta(DELTA).with_max_worlds(100);
        let engine = WorldEngine::new(&g).with_method(SampleMethod::Skip);
        let mut batch = QueryBatch::from_engine(engine, CAP, 2).with_precision(precision);
        batch.register(ConnectivityObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(BATCH_SEED);
        let results = batch.run(&mut rng);
        let report = results.adaptive().expect("adaptive report");
        assert!(
            report.worlds_used <= 100,
            "adaptive run must respect max_worlds, used {}",
            report.worlds_used
        );
    }

    // 3. CV achieved error <= epsilon against the analytic truth on a
    //    seeded grid (and within the per-stage world cap).
    let cut = cut_graph();
    let backbone = backbone_of(&cut, 0.15);
    assert!(
        backbone.find_edge(0, CLUSTER).is_some(),
        "the spanning-forest backbone must keep the bridge (a cut edge)"
    );
    let cv = ControlVariate::new(&cut, &backbone).expect("valid backbone");
    for seed in [3u64, 11, 29] {
        for epsilon in [0.05, 0.02] {
            let precision = Precision::new(epsilon)
                .with_delta(DELTA)
                .with_max_worlds(400_000);
            let (estimate, _) = cv_run(&cv, precision, seed);
            assert!(
                (estimate.estimate - P_BRIDGE).abs() <= epsilon,
                "cv error {} above epsilon {epsilon} (seed {seed})",
                (estimate.estimate - P_BRIDGE).abs()
            );
            assert!(estimate.original_worlds() <= 400_000 + estimate.pilot_worlds);
        }
    }

    // -- Frontier: adaptive vs the a-priori fixed budget. --
    let mut frontier = Vec::new();
    for epsilon in [0.1, 0.05, 0.02] {
        let (report, adaptive_wall) = adaptive_run(&g, epsilon, 1, false);
        assert!(report.worlds_used <= CAP);
        assert!(
            report.half_width <= epsilon,
            "converged run must certify its target"
        );
        let fixed_budget = hoeffding_budget(epsilon);
        let fixed_wall = fixed_run(&g, fixed_budget);
        frontier.push(FrontierPoint {
            epsilon,
            adaptive_worlds: report.worlds_used,
            adaptive_epochs: report.epochs,
            achieved_half_width: report.half_width,
            adaptive_wall,
            fixed_budget,
            fixed_wall,
        });
    }
    let best = frontier
        .iter()
        .map(|p| p.fixed_budget as f64 / p.adaptive_worlds.max(1) as f64)
        .fold(0.0f64, f64::max);
    assert!(
        best >= 2.0,
        "adaptive must use >= 2x fewer worlds than the fixed baseline on at \
         least one frontier point (best ratio {best:.2})"
    );

    // A second query mix: untracked riders share the adaptive worlds
    // without perturbing the stopping decision.
    let (mixed, _) = adaptive_run(&g, 0.05, 1, true);
    assert_eq!(
        mixed.worlds_used, baseline.worlds_used,
        "untracked riders must not change the worlds consumed"
    );

    // -- CV vs plain adaptive at the same (epsilon, delta). --
    let cv_precision = Precision::new(0.02)
        .with_delta(DELTA)
        .with_max_worlds(400_000);
    let plain_started = Instant::now();
    let (plain_worlds, plain_estimate, plain_hw) = plain_adaptive(&cut, cv_precision, 11);
    let plain_wall = plain_started.elapsed();
    let (cv_estimate, cv_wall) = cv_run(&cv, cv_precision, 11);
    assert!(
        cv_estimate.original_worlds() < plain_worlds,
        "control variate must strictly dominate plain adaptive MC in \
         original-graph worlds ({} vs {plain_worlds})",
        cv_estimate.original_worlds()
    );
    assert!((cv_estimate.estimate - P_BRIDGE).abs() <= 0.02);
    assert!((plain_estimate - P_BRIDGE).abs() <= 0.02);

    // -- Timings into criterion (measured once above, like shard.rs). --
    let mut group = c.benchmark_group("adaptive_precision");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));
    for point in &frontier {
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("eps_{}", point.epsilon)),
            &point.adaptive_wall,
            |b, &d| {
                b.iter(|| black_box(d));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fixed_hoeffding", format!("eps_{}", point.epsilon)),
            &point.fixed_wall,
            |b, &d| {
                b.iter(|| black_box(d));
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("cv", "eps_0.02"), &cv_wall, |b, &d| {
        b.iter(|| black_box(d));
    });
    group.bench_with_input(
        BenchmarkId::new("plain_adaptive", "eps_0.02"),
        &plain_wall,
        |b, &d| {
            b.iter(|| black_box(d));
        },
    );
    group.finish();

    let point = &frontier[2];
    println!(
        "60k power-law (p = {MEAN_P}), connectivity mix at eps = {}: adaptive {} worlds \
         ({} epochs, hw {:.4}) in {:.2?} vs fixed a-priori budget {} in {:.2?} — {:.2}x fewer \
         worlds (acceptance >= 2x); speedup {:.2}x",
        point.epsilon,
        point.adaptive_worlds,
        point.adaptive_epochs,
        point.achieved_half_width,
        point.adaptive_wall,
        point.fixed_budget,
        point.fixed_wall,
        point.fixed_budget as f64 / point.adaptive_worlds as f64,
        ratio(point.fixed_wall, point.adaptive_wall),
    );
    println!(
        "cut-reliability CV at eps = 0.02: {} original-graph worlds (pilot {} + residual {}, \
         + {} cheap backbone worlds, beta {:.3}, rho {:.3}) vs plain adaptive {} — {:.2}x fewer \
         (acceptance: strict dominance); |error| = {:.4} <= eps",
        cv_estimate.original_worlds(),
        cv_estimate.pilot_worlds,
        cv_estimate.residual_worlds,
        cv_estimate.backbone_worlds,
        cv_estimate.beta,
        cv_estimate.correlation,
        plain_worlds,
        plain_worlds as f64 / cv_estimate.original_worlds() as f64,
        (cv_estimate.estimate - P_BRIDGE).abs(),
    );
    write_trajectory(
        &frontier,
        plain_worlds,
        plain_hw,
        plain_wall,
        &cv_estimate,
        cv_wall,
    );
}

/// Persists the measured frontier as `BENCH_adaptive.json` at the repo root.
fn write_trajectory(
    frontier: &[FrontierPoint],
    plain_worlds: usize,
    plain_hw: f64,
    plain_wall: Duration,
    cv: &CvEstimate,
    cv_wall: Duration,
) {
    let rows: Vec<String> = frontier
        .iter()
        .map(|p| {
            format!(
                "    {{\"epsilon\": {}, \"adaptive_worlds\": {}, \"adaptive_epochs\": {}, \
                 \"achieved_half_width\": {:.6}, \"adaptive_wall_ns\": {}, \
                 \"fixed_budget_hoeffding\": {}, \"fixed_wall_ns\": {}, \"worlds_ratio\": {:.3}}}",
                p.epsilon,
                p.adaptive_worlds,
                p.adaptive_epochs,
                p.achieved_half_width,
                p.adaptive_wall.as_nanos(),
                p.fixed_budget,
                p.fixed_wall.as_nanos(),
                p.fixed_budget as f64 / p.adaptive_worlds.max(1) as f64,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"adaptive_precision\",\n  \
         \"graph\": \"preferential_attachment({VERTICES} vertices, 4 edges/vertex, p = {MEAN_P})\",\n  \
         \"delta\": {DELTA},\n  \
         \"notes\": \"frontier: adaptive empirical-Bernstein stopping (connectivity mix, epoch 64) \
         vs the smallest a-priori fixed budget with the same distribution-free (eps, delta) \
         guarantee (Hoeffding, ln(2/delta)/2eps^2); worlds consumed are thread-count invariant \
         (asserted for 1/2/4 before timing). cv: two-terminal reliability across the bridge of a \
         two-cluster cut graph, spanning-forest backbone (Algorithm 1) as control variate under \
         common random numbers; original_worlds = pilot + residual is the number to compare with \
         plain adaptive MC. Acceptance: >= 2x fewer worlds at matched (eps, delta) on at least \
         one frontier point; cv strictly dominates plain adaptive; cv error <= eps on a seeded \
         grid.\",\n  \
         \"frontier\": [\n{}\n  ],\n  \
         \"cv\": {{\"workload\": \"bridge reliability, truth {P_BRIDGE}\", \"epsilon\": 0.02, \
         \"plain_adaptive_worlds\": {plain_worlds}, \"plain_half_width\": {plain_hw:.6}, \
         \"plain_wall_ns\": {}, \"cv_original_worlds\": {}, \"cv_pilot_worlds\": {}, \
         \"cv_residual_worlds\": {}, \"cv_backbone_worlds\": {}, \"cv_beta\": {:.6}, \
         \"cv_correlation\": {:.6}, \"cv_estimate\": {:.6}, \"cv_half_width\": {:.6}, \
         \"cv_wall_ns\": {}, \"worlds_ratio\": {:.3}}}\n}}\n",
        rows.join(",\n"),
        plain_wall.as_nanos(),
        cv.original_worlds(),
        cv.pilot_worlds,
        cv.residual_worlds,
        cv.backbone_worlds,
        cv.beta,
        cv.correlation,
        cv.estimate,
        cv.half_width,
        cv_wall.as_nanos(),
        plain_worlds as f64 / cv.original_worlds().max(1) as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_adaptive.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, adaptive_bench);
criterion_main!(benches);
