//! Multi-query amortisation: k standalone Monte-Carlo queries vs one
//! [`QueryBatch`] evaluating the same k queries over **shared** sampled
//! worlds.
//!
//! Standalone, each query pays the full sample-and-materialise cost for its
//! own `N` worlds; batched, that cost is paid once for the whole mix, so the
//! batch should cost roughly `sample + Σ kernels` instead of
//! `Σ (sample + kernel)`.  Measured at p̄ ≈ 0.09 — the paper's Flickr regime,
//! where skip-sampling makes the per-world sampling cheap and the query mix
//! (PageRank + connectivity + degree histogram + edge frequencies) is
//! kernel-heavy on one side and sampling-heavy on the other.
//!
//! The acceptance bar recorded in `BENCH_batch.json`: a 4-query batch
//! completes in **< 2×** the wall-time of the costliest standalone query
//! (and far under the 4-query standalone sum).

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_datasets::{erdos_renyi, ProbabilityModel};
use ugs_queries::prelude::*;

const WORLDS: usize = 256;
const MEAN_P: f64 = 0.09;

fn flickr_regime_graph() -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    erdos_renyi(400, 0.05, ProbabilityModel::Fixed(MEAN_P), &mut rng)
}

/// Mean wall time of one invocation of `run`, measured over repeated runs
/// for at least 400 ms (after one warm-up invocation).
fn time_run(mut run: impl FnMut()) -> Duration {
    run();
    let started = Instant::now();
    let mut rounds = 0u32;
    while started.elapsed() < Duration::from_millis(400) {
        run();
        rounds += 1;
    }
    started.elapsed() / rounds.max(1)
}

struct Measurement {
    standalone: [(&'static str, Duration); 4],
    standalone_sum: Duration,
    batch_one: Duration,
    batch_four: Duration,
    /// Sampling-bound mix (cheap kernels: clustering, degree histogram,
    /// edge frequencies, k-NN): standalone sum vs 4-query batch.  This is
    /// where world sharing approaches the ideal k× saving.
    cheap_standalone_sum: Duration,
    cheap_batch_four: Duration,
}

fn measure(g: &UncertainGraph, mc: &MonteCarlo) -> Measurement {
    // Standalone: each query samples its own worlds (the classic wrappers
    // are single-observer batches, i.e. exactly the standalone cost).
    let pagerank = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        black_box(expected_pagerank(g, mc, &mut rng));
    });
    let connectivity = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        black_box(connectivity_query(g, mc, &mut rng));
    });
    let histogram = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        black_box(ugs_queries::expected_degree_histogram(g, mc, &mut rng));
    });
    let frequencies = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut batch = QueryBatch::new(g, mc);
        let handle = batch.register(EdgeFrequencyObserver::new(g));
        black_box(batch.run(&mut rng).take(handle));
    });

    // Batched: one observer (driver overhead floor) and the full mix of
    // four sharing one sampling pass.
    let batch_one = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut batch = QueryBatch::new(g, mc);
        let handle = batch.register(PageRankObserver::new(g));
        black_box(batch.run(&mut rng).take(handle));
    });
    let batch_four = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut batch = QueryBatch::new(g, mc);
        let h_pr = batch.register(PageRankObserver::new(g));
        let h_conn = batch.register(ConnectivityObserver::new(g));
        let h_hist = batch.register(DegreeHistogramObserver::new(g));
        let h_freq = batch.register(EdgeFrequencyObserver::new(g));
        let mut results = batch.run(&mut rng);
        black_box(results.take(h_pr));
        black_box(results.take(h_conn));
        black_box(results.take(h_hist));
        black_box(results.take(h_freq));
    });

    // Sampling-bound mix: all four kernels are (near-)linear sweeps, so the
    // per-world cost is dominated by sampling + materialisation.
    let clustering = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        black_box(expected_clustering_coefficients(g, mc, &mut rng));
    });
    let knn = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        black_box(k_nearest_neighbors(g, 0, 10, mc, &mut rng));
    });
    let cheap_batch_four = time_run(|| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut batch = QueryBatch::new(g, mc);
        let h_cc = batch.register(ClusteringObserver::new(g));
        let h_hist = batch.register(DegreeHistogramObserver::new(g));
        let h_freq = batch.register(EdgeFrequencyObserver::new(g));
        let h_knn = batch.register(KnnObserver::new(g, 0, 10));
        let mut results = batch.run(&mut rng);
        black_box(results.take(h_cc));
        black_box(results.take(h_hist));
        black_box(results.take(h_freq));
        black_box(results.take(h_knn));
    });

    Measurement {
        standalone: [
            ("pagerank", pagerank),
            ("connectivity", connectivity),
            ("degree_histogram", histogram),
            ("edge_frequencies", frequencies),
        ],
        standalone_sum: pagerank + connectivity + histogram + frequencies,
        batch_one,
        batch_four,
        cheap_standalone_sum: clustering + histogram + frequencies + knn,
        cheap_batch_four,
    }
}

fn ratio(num: Duration, den: Duration) -> f64 {
    num.as_nanos() as f64 / den.as_nanos().max(1) as f64
}

fn batch_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_queries");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    let g = flickr_regime_graph();
    let mc = MonteCarlo::worlds(WORLDS).with_method(SampleMethod::Skip);
    let m = measure(&g, &mc);

    for (name, duration) in m.standalone.iter().copied().chain([
        ("batch_1query", m.batch_one),
        ("batch_4query", m.batch_four),
    ]) {
        group.bench_with_input(BenchmarkId::new(name, MEAN_P), &duration, |b, &d| {
            // Report the externally measured duration through the
            // criterion-style output (one no-op iteration).
            b.iter(|| black_box(d));
        });
    }
    group.finish();

    let costliest = m
        .standalone
        .iter()
        .map(|&(_, d)| d)
        .max()
        .expect("four queries");
    println!(
        "p̄ = {MEAN_P}  worlds = {WORLDS}  standalone sum {:.2?}  batch(4) {:.2?}  \
         amortisation {:.2}x  batch(4)/costliest-standalone {:.2}x  \
         sampling-bound mix {:.2?} -> {:.2?} ({:.2}x)",
        m.standalone_sum,
        m.batch_four,
        ratio(m.standalone_sum, m.batch_four),
        ratio(m.batch_four, costliest),
        m.cheap_standalone_sum,
        m.cheap_batch_four,
        ratio(m.cheap_standalone_sum, m.cheap_batch_four),
    );
    write_trajectory(&m);
}

/// Persists the measured amortisation as `BENCH_batch.json` at the repo root.
fn write_trajectory(m: &Measurement) {
    let costliest = m
        .standalone
        .iter()
        .map(|&(_, d)| d)
        .max()
        .expect("four queries");
    let standalone_fields: Vec<String> = m
        .standalone
        .iter()
        .map(|&(name, d)| format!("    \"standalone_{name}_ns\": {}", d.as_nanos()))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"batch_queries\",\n  \"graph\": \"erdos_renyi(400 vertices, 5% density, p = {MEAN_P})\",\n  \
         \"worlds\": {WORLDS},\n  \"unit\": \"ns per full {WORLDS}-world query evaluation\",\n  \
         \"queries\": [\"pagerank\", \"connectivity\", \"degree_histogram\", \"edge_frequencies\"],\n  \
         \"notes\": \"4-query batch vs standalone runs at the paper's Flickr regime (p ~ 0.09); \
         acceptance: batch_4query_over_costliest_standalone < 2.0\",\n\
         {},\n  \"standalone_sum_ns\": {},\n  \"batch_1query_ns\": {},\n  \"batch_4query_ns\": {},\n  \
         \"amortisation_sum_over_batch\": {:.2},\n  \"batch_4query_over_costliest_standalone\": {:.2},\n  \
         \"batch_1query_over_standalone_pagerank\": {:.2},\n  \
         \"sampling_bound_mix\": {{\n    \"queries\": [\"clustering\", \"degree_histogram\", \"edge_frequencies\", \"knn\"],\n    \
         \"standalone_sum_ns\": {},\n    \"batch_4query_ns\": {},\n    \"amortisation_sum_over_batch\": {:.2}\n  }}\n}}\n",
        standalone_fields.join(",\n"),
        m.standalone_sum.as_nanos(),
        m.batch_one.as_nanos(),
        m.batch_four.as_nanos(),
        ratio(m.standalone_sum, m.batch_four),
        ratio(m.batch_four, costliest),
        ratio(m.batch_one, m.standalone[0].1),
        m.cheap_standalone_sum.as_nanos(),
        m.cheap_batch_four.as_nanos(),
        ratio(m.cheap_standalone_sum, m.cheap_batch_four),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_batch.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, batch_queries);
criterion_main!(benches);
