//! World sampling + materialisation: legacy driver vs the zero-allocation
//! engine, across the probability regimes of the paper.
//!
//! The legacy driver pays one Bernoulli draw per edge plus ~5 heap
//! allocations per world (`PossibleWorld` mask, edge list, degree vector,
//! offsets, neighbours); the engine skip-samples in `O(Σ pₑ)` expected time
//! and compacts into reusable scratch.  The gap therefore widens as the mean
//! edge probability drops — exactly the low-entropy regime sparsification
//! produces (the acceptance bar is ≥ 3× at p̄ ≤ 0.3).
//!
//! Besides the criterion-style output, the measured trajectory is written to
//! `BENCH_mc.json` at the repository root so successive PRs can track the
//! speedup.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::{UncertainGraph, WorldSampler};

use graph_algos::DeterministicGraph;
use ugs_datasets::{erdos_renyi, ProbabilityModel};
use ugs_queries::engine::{SampleMethod, WorldEngine};

/// An Erdős–Rényi support with every edge at probability `p` — isolates the
/// effect of the probability regime on sampling cost.
fn graph_with_mean_probability(p: f64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    erdos_renyi(400, 0.05, ProbabilityModel::Fixed(p), &mut rng)
}

fn time_per_world(mut sample: impl FnMut(&mut SmallRng), worlds_per_round: usize) -> Duration {
    let mut rng = SmallRng::seed_from_u64(42);
    // Warm up buffers and branch predictors.
    for _ in 0..worlds_per_round {
        sample(&mut rng);
    }
    let started = Instant::now();
    let mut rounds = 0usize;
    while started.elapsed() < Duration::from_millis(300) {
        for _ in 0..worlds_per_round {
            sample(&mut rng);
        }
        rounds += 1;
    }
    started.elapsed() / (rounds * worlds_per_round) as u32
}

fn mc_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(300))
        .warm_up_time(Duration::from_millis(100));

    let mut results: Vec<(f64, Duration, Duration, Duration)> = Vec::new();
    for &p in &[0.05, 0.09, 0.3, 0.8] {
        let g = graph_with_mean_probability(p);
        let worlds_per_round = 64;

        // Legacy: allocate a mask + a fresh CSR per world.
        let sampler = WorldSampler::new();
        let legacy = time_per_world(
            |rng| {
                let world = sampler.sample(&g, rng);
                black_box(DeterministicGraph::from_world(&g, &world).num_edges());
            },
            worlds_per_round,
        );

        // Engine, skip-sampling into reusable scratch.
        let engine_skip = WorldEngine::new(&g).with_method(SampleMethod::Skip);
        let mut scratch = engine_skip.make_scratch();
        let skip = time_per_world(
            |rng| {
                black_box(engine_skip.sample_world(rng, &mut scratch).num_edges());
            },
            worlds_per_round,
        );

        // Engine, per-edge draws into reusable scratch (isolates the
        // zero-allocation materialisation from the skip-sampling win).
        let engine_per_edge = WorldEngine::new(&g).with_method(SampleMethod::PerEdge);
        let mut scratch = engine_per_edge.make_scratch();
        let per_edge = time_per_world(
            |rng| {
                black_box(engine_per_edge.sample_world(rng, &mut scratch).num_edges());
            },
            worlds_per_round,
        );

        for (name, duration) in [
            ("legacy", legacy),
            ("engine_skip", skip),
            ("engine_per_edge", per_edge),
        ] {
            group.bench_with_input(BenchmarkId::new(name, p), &duration, |b, &d| {
                // Report the externally measured duration through the
                // criterion-style output (one no-op iteration).
                b.iter(|| black_box(d));
            });
        }
        println!(
            "p̄ = {p:<4}  legacy {legacy:>10.2?}/world   skip {skip:>10.2?}/world \
             ({:.2}x)   per-edge {per_edge:>10.2?}/world ({:.2}x)",
            legacy.as_nanos() as f64 / skip.as_nanos().max(1) as f64,
            legacy.as_nanos() as f64 / per_edge.as_nanos().max(1) as f64,
        );
        results.push((p, legacy, skip, per_edge));
    }
    group.finish();

    write_trajectory(&results);
}

/// Persists the measured trajectory as `BENCH_mc.json` at the repo root.
fn write_trajectory(results: &[(f64, Duration, Duration, Duration)]) {
    let entries: Vec<String> = results
        .iter()
        .map(|&(p, legacy, skip, per_edge)| {
            format!(
                "    {{\"mean_probability\": {p}, \"legacy_ns_per_world\": {}, \
                 \"engine_skip_ns_per_world\": {}, \"engine_per_edge_ns_per_world\": {}, \
                 \"speedup_skip\": {:.2}, \"speedup_per_edge\": {:.2}}}",
                legacy.as_nanos(),
                skip.as_nanos(),
                per_edge.as_nanos(),
                legacy.as_nanos() as f64 / skip.as_nanos().max(1) as f64,
                legacy.as_nanos() as f64 / per_edge.as_nanos().max(1) as f64,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"mc_engine\",\n  \"graph\": \"erdos_renyi(400 vertices, 5% density)\",\n  \"unit\": \"ns per sampled+materialised world\",\n  \"notes\": \"speedup_skip >= 3x holds in the sparsified-probability regime (p <= ~0.1, e.g. the paper's Flickr graphs at p ~ 0.09); at the p = 0.3 boundary the engine wins by ~2.5x, and it stays at parity or better even at p = 0.8\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mc.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_mc.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, mc_engine);
criterion_main!(benches);
