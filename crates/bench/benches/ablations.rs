//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * spanning (`-t`) vs random backbone initialisation (Algorithm 1),
//! * the entropy parameter `h` (Figure 5's knob),
//! * the cut-preserving rules `k = 1`, `k = 2`, `k = n`,
//! * the vertex heap of EMD vs a naive full re-scan (the complexity argument
//!   of Section 4.3),
//! * the log-space evaluation of the `(n choose k)_Σ` coefficients.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_bench::{ExperimentConfig, Workload};
use ugs_core::kcut::CutRuleCoefficients;
use ugs_core::prelude::*;
use ugs_datasets::Scale;

fn ablations(c: &mut Criterion) {
    let config = ExperimentConfig::for_scale(Scale::Tiny);
    let workload = Workload::generate(&config);
    let g = &workload.flickr;
    let alpha = 0.16;

    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));

    // Backbone construction.
    for (label, kind) in [
        ("random", BackboneKind::Random),
        ("spanning", BackboneKind::SpanningForests),
    ] {
        group.bench_function(format!("backbone_{label}"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                let cfg = BackboneConfig {
                    kind,
                    ..Default::default()
                };
                build_backbone(g, alpha, &cfg, &mut rng).unwrap()
            })
        });
    }

    // Entropy parameter h.
    for h in [0.0, 0.05, 1.0] {
        group.bench_with_input(BenchmarkId::new("gdb_entropy_h", h), &h, |b, &h| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .entropy_h(h)
                    .sparsify(g, &mut rng)
                    .unwrap()
            })
        });
    }

    // Cut-preserving rules.
    for (label, rule) in [
        ("k1", CutRule::Degree),
        ("k2", CutRule::Cuts(2)),
        ("kn", CutRule::AllCuts),
    ] {
        group.bench_function(format!("gdb_cut_rule_{label}"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                SparsifierSpec::gdb()
                    .alpha(alpha)
                    .cut_rule(rule)
                    .sparsify(g, &mut rng)
                    .unwrap()
            })
        });
    }

    // EMD (restructuring) vs GDB (fixed backbone): the cost of the E-phase.
    group.bench_function("emd_vs_gdb_emd", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            SparsifierSpec::emd()
                .alpha(alpha)
                .sparsify(g, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("emd_vs_gdb_gdb", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            SparsifierSpec::gdb()
                .alpha(alpha)
                .sparsify(g, &mut rng)
                .unwrap()
        })
    });

    // Indexed vertex heap vs rebuilding a sorted vector every update — the
    // data-structure choice behind EMD's E-phase complexity.
    let priorities: Vec<f64> = (0..2_000).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("indexed_heap_update_pop", |b| {
        b.iter(|| {
            let mut heap = graph_algos::IndexedMaxHeap::from_priorities(&priorities);
            for (i, &priority) in priorities.iter().enumerate().take(1_000) {
                heap.update(i, priority * 2.0);
            }
            heap.pop()
        })
    });
    group.bench_function("naive_resort_per_update", |b| {
        b.iter(|| {
            let mut values = priorities.clone();
            let mut top = 0usize;
            for i in 0..1_000 {
                values[i] *= 2.0;
                // naive: full scan to find the maximum after each update
                top = (0..values.len())
                    .max_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap())
                    .unwrap();
            }
            top
        })
    });

    // Coefficients of the general k-cut rule in log space.
    for k in [2usize, 100, 10_000] {
        group.bench_with_input(BenchmarkId::new("kcut_coefficients", k), &k, |b, &k| {
            b.iter(|| CutRuleCoefficients::new(100_000, k))
        });
    }

    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
