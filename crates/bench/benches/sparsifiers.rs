//! Sparsification running-time benchmarks (Figures 4(b) and 9).
//!
//! The paper's timing claims: LP is orders of magnitude slower than GDB/EMD
//! (Figure 4(b)); GDB and EMD terminate within about a minute on the real
//! graphs and scale linearly with `α|E|`, while NI is more than an order of
//! magnitude slower (Figure 9).  These benches time every method on the
//! tiny-scale datasets so `cargo bench` finishes quickly; run the `exp_fig4`
//! and `exp_fig9` binaries for the full sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_bench::{ExperimentConfig, Workload};
use ugs_core::prelude::*;
use ugs_datasets::Scale;

fn bench_config(
    c: &mut Criterion,
) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("sparsifiers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    group
}

fn sparsifier_times(c: &mut Criterion) {
    let config = ExperimentConfig::for_scale(Scale::Tiny);
    let workload = Workload::generate(&config);
    let reduced = workload.flickr_reduced(&config);
    let mut group = bench_config(c);

    for alpha_pct in [8.0_f64, 16.0, 32.0, 64.0] {
        let alpha = alpha_pct / 100.0;
        // Figure 9: NI / GDB / EMD on the Flickr-shaped graph.
        let methods: Vec<(&str, Box<dyn Sparsifier>)> = vec![
            ("GDB", Box::new(SparsifierSpec::gdb().alpha(alpha))),
            (
                "EMD",
                Box::new(
                    SparsifierSpec::emd()
                        .alpha(alpha)
                        .discrepancy(DiscrepancyKind::Relative),
                ),
            ),
            ("NI", Box::new(ugs_baselines::NagamochiIbaraki::new(alpha))),
            ("SS", Box::new(ugs_baselines::SpannerSparsifier::new(alpha))),
        ];
        for (name, method) in methods {
            group.bench_with_input(
                BenchmarkId::new(format!("fig9_flickr_{name}"), alpha_pct),
                &alpha,
                |b, _| {
                    b.iter(|| {
                        let mut rng = SmallRng::seed_from_u64(1);
                        method.sparsify_dyn(&workload.flickr, &mut rng).unwrap()
                    })
                },
            );
        }
        // Figure 4(b): LP vs GDB vs EMD on the reduced instance (LP is only
        // feasible there).
        let reduced_methods: Vec<(&str, Box<dyn Sparsifier>)> = vec![
            ("LP", Box::new(SparsifierSpec::lp().alpha(alpha))),
            ("GDB", Box::new(SparsifierSpec::gdb().alpha(alpha))),
            ("EMD", Box::new(SparsifierSpec::emd().alpha(alpha))),
        ];
        for (name, method) in reduced_methods {
            group.bench_with_input(
                BenchmarkId::new(format!("fig4b_reduced_{name}"), alpha_pct),
                &alpha,
                |b, _| {
                    b.iter(|| {
                        let mut rng = SmallRng::seed_from_u64(1);
                        method.sparsify_dyn(&reduced, &mut rng).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, sparsifier_times);
criterion_main!(benches);
