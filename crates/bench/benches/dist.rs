//! Distributed critical path: a `ugs-dist` coordinator over 2 and 4 shard
//! workers versus the in-process run of the same plan, on a 60k-vertex
//! power-law graph in the paper's probability regime (p̄ = 0.09).  Also
//! measures the boundary-exchange cost: encoded boundary-record bytes per
//! sampled world, per fleet size.  Recorded in `BENCH_dist.json`.
//!
//! The workers here are in-process `ugs-server` instances (one listener +
//! sampler per shard), so the numbers isolate the protocol + glue overhead
//! from process scheduling noise; the wire format and the per-world record
//! stream are byte-identical to separate-process workers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::UncertainGraph;

use ugs_datasets::{preferential_attachment, ProbabilityModel};
use ugs_dist::{CoordinatorConfig, DistCoordinator, FaultKind, FaultPlan};
use ugs_server::protocol::DEFAULT_BOUNDARY_PAGE;
use ugs_server::{serve, LineClient, ServerConfig, ServerHandle};
use ugs_service::{QueryAnswer, QueryPlan, ServiceError};

const VERTICES: usize = 60_000;
const EDGES_PER_VERTEX: usize = 4;
const MEAN_P: f64 = 0.09;
const WORLDS: usize = 48;
const SEED: u64 = 11;

fn powerlaw_graph() -> Arc<UncertainGraph> {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    Arc::new(preferential_attachment(
        VERTICES,
        EDGES_PER_VERTEX,
        ProbabilityModel::Fixed(MEAN_P),
        &mut rng,
    ))
}

fn plan() -> QueryPlan {
    QueryPlan::parse_str(&format!(
        r#"{{"worlds": {WORLDS}, "threads": 2, "seed": {SEED},
            "queries": [{{"type": "connectivity"}},
                        {{"type": "degree_histogram"}},
                        {{"type": "edge_frequency"}}]}}"#
    ))
    .expect("bench plan parses")
}

fn spawn_fleet(graph: &Arc<UncertainGraph>, workers: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> = (0..workers)
        .map(|k| {
            let config = ServerConfig {
                shard: Some((k, workers)),
                ..ServerConfig::default()
            };
            serve(graph.clone(), config).expect("bind loopback worker")
        })
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

/// Total encoded boundary-record bytes one fleet ships for `WORLDS` worlds:
/// submits a fresh job to every worker and pages the full record stream,
/// summing the encoded record lengths (the payload the coordinator glues).
fn boundary_bytes(addrs: &[String]) -> u64 {
    // The coordinator derives the batch seed exactly like the in-process
    // service: the first u64 drawn from the plan seed.
    let batch_seed = SmallRng::seed_from_u64(SEED).gen::<u64>();
    let mut total = 0u64;
    for (k, addr) in addrs.iter().enumerate() {
        let mut client = LineClient::connect(addr).expect("connect worker");
        client
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let submit = client
            .request(&format!(
                "{{\"op\": \"shard_submit\", \"job\": \"bytes\", \"shard\": {k}, \
                 \"shards\": {}, \"worlds\": {WORLDS}, \"seed\": \"{batch_seed}\", \
                 \"mode\": \"auto\"}}",
                addrs.len()
            ))
            .expect("submit byte-measurement job");
        assert_eq!(submit.get_str("status"), Some("ok"), "{}", submit.render());
        let mut received = 0usize;
        while received < WORLDS {
            let page = client
                .request(&format!(
                    "{{\"op\": \"boundary\", \"job\": \"bytes\", \"from\": {received}, \
                     \"max\": {DEFAULT_BOUNDARY_PAGE}}}"
                ))
                .expect("boundary page");
            assert_eq!(page.get_str("status"), Some("ok"), "{}", page.render());
            let records = page
                .get("records")
                .and_then(|r| r.as_array())
                .expect("records array");
            if records.is_empty() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            for record in records {
                total += record.as_str().expect("encoded record").len() as u64;
            }
            received += records.len();
        }
    }
    total
}

struct FleetMeasurement {
    workers: usize,
    coordinator: Duration,
    boundary_bytes_total: u64,
}

fn measure_fleet(
    graph: &Arc<UncertainGraph>,
    workers: usize,
    plan: &QueryPlan,
) -> FleetMeasurement {
    let (handles, addrs) = spawn_fleet(graph, workers);
    let mut coordinator =
        DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default())
            .expect("assemble fleet");

    // Warm pass (connection buffers, scratch allocation), then the timed run.
    let warm = coordinator.execute(plan);
    assert!(warm.iter().all(|outcome| outcome.is_ok()));
    let started = Instant::now();
    let answers = coordinator.execute(plan);
    let coordinator_time = started.elapsed();
    assert!(answers.iter().all(|outcome| outcome.is_ok()));

    // Parity spot-check at benchmark scale: the distributed answers equal
    // the in-process answers bitwise.
    let monolithic = plan.execute_detailed(graph.clone());
    assert_eq!(
        answers, monolithic,
        "distributed parity at {workers} workers"
    );

    let bytes = boundary_bytes(&addrs);
    coordinator.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    FleetMeasurement {
        workers,
        coordinator: coordinator_time,
        boundary_bytes_total: bytes,
    }
}

struct RecoveryMeasurement {
    workers: usize,
    recovered: Duration,
}

/// Times the plan with shard 1's worker wedged into a terminal disconnect a
/// few exchanges in: the coordinator burns its retry budget, fails over to
/// a standby, and the answers must still come out bit-identical.  The gap
/// to the clean coordinator time is the recovery latency (one cold pass —
/// the wedge is terminal, so there is no warm faulted pass to time).
fn measure_recovery(
    graph: &Arc<UncertainGraph>,
    workers: usize,
    plan: &QueryPlan,
    expected: &[Result<QueryAnswer, ServiceError>],
) -> RecoveryMeasurement {
    let handles: Vec<ServerHandle> = (0..workers)
        .map(|k| {
            let fault_plan = (k == 1).then(|| FaultPlan::wedge_after(4, FaultKind::Disconnect));
            let config = ServerConfig {
                shard: Some((k, workers)),
                fault_plan,
                ..ServerConfig::default()
            };
            serve(graph.clone(), config).expect("bind loopback worker")
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    let standby = serve(
        graph.clone(),
        ServerConfig {
            shard: Some((1, workers)),
            ..ServerConfig::default()
        },
    )
    .expect("bind standby");
    let config = CoordinatorConfig {
        retries: 1,
        reconnect_backoff: Duration::from_millis(1),
        standbys: vec![standby.addr().to_string()],
        ..CoordinatorConfig::default()
    };
    let mut coordinator =
        DistCoordinator::connect(graph.clone(), &addrs, config).expect("assemble fleet");
    let started = Instant::now();
    let answers = coordinator.execute(plan);
    let recovered = started.elapsed();
    assert_eq!(answers, *expected, "recovered parity at {workers} workers");
    assert_eq!(
        coordinator.recovery_report().failovers.len(),
        1,
        "exactly one failover at {workers} workers"
    );
    coordinator.shutdown();
    standby.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    RecoveryMeasurement { workers, recovered }
}

fn dist_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    let graph = powerlaw_graph();
    let plan = plan();

    // In-process baseline: same plan, same worlds, no sockets.
    let warm = plan.execute_detailed(graph.clone());
    assert!(warm.iter().all(|outcome| outcome.is_ok()));
    let started = Instant::now();
    black_box(plan.execute_detailed(graph.clone()));
    let in_process = started.elapsed();

    let fleets: Vec<FleetMeasurement> = [2usize, 4]
        .iter()
        .map(|&workers| measure_fleet(&graph, workers, &plan))
        .collect();
    let recoveries: Vec<RecoveryMeasurement> = [2usize, 4]
        .iter()
        .map(|&workers| measure_recovery(&graph, workers, &plan, &warm))
        .collect();

    group.bench_with_input(
        BenchmarkId::new("in_process", MEAN_P),
        &in_process,
        |b, &d| {
            b.iter(|| black_box(d));
        },
    );
    for fleet in &fleets {
        group.bench_with_input(
            BenchmarkId::new("coordinator", fleet.workers),
            &fleet.coordinator,
            |b, &d| {
                b.iter(|| black_box(d));
            },
        );
    }
    for recovery in &recoveries {
        group.bench_with_input(
            BenchmarkId::new("recovery", recovery.workers),
            &recovery.recovered,
            |b, &d| {
                b.iter(|| black_box(d));
            },
        );
    }
    group.finish();

    println!(
        "p̄ = {MEAN_P}  |V| = {VERTICES}  |E| ≈ {}  worlds = {WORLDS}  in-process {:.2?}",
        graph.num_edges(),
        in_process,
    );
    for fleet in &fleets {
        println!(
            "  {} workers: coordinator {:.2?} ({:.2}x in-process), boundary {:.1} KiB/world",
            fleet.workers,
            fleet.coordinator,
            fleet.coordinator.as_secs_f64() / in_process.as_secs_f64().max(1e-9),
            fleet.boundary_bytes_total as f64 / WORLDS as f64 / 1024.0,
        );
    }
    for recovery in &recoveries {
        let clean = fleets
            .iter()
            .find(|fleet| fleet.workers == recovery.workers)
            .map(|fleet| fleet.coordinator)
            .unwrap_or_default();
        println!(
            "  {} workers: lost shard 1 mid-plan, recovered via standby in {:.2?} \
             (+{:.2?} over the clean run), bit-identical",
            recovery.workers,
            recovery.recovered,
            recovery.recovered.saturating_sub(clean),
        );
    }
    write_trajectory(graph.num_edges(), in_process, &fleets, &recoveries);
}

/// Persists the measured distributed critical path as `BENCH_dist.json` at
/// the repo root.
fn write_trajectory(
    edges: usize,
    in_process: Duration,
    fleets: &[FleetMeasurement],
    recoveries: &[RecoveryMeasurement],
) {
    let mut fleet_entries = String::new();
    for (i, fleet) in fleets.iter().enumerate() {
        if i > 0 {
            fleet_entries.push_str(",\n");
        }
        fleet_entries.push_str(&format!(
            "    {{\"workers\": {}, \"coordinator_ns\": {}, \
             \"coordinator_over_in_process\": {:.2}, \
             \"boundary_bytes_per_world\": {:.0}}}",
            fleet.workers,
            fleet.coordinator.as_nanos(),
            fleet.coordinator.as_secs_f64() / in_process.as_secs_f64().max(1e-9),
            fleet.boundary_bytes_total as f64 / WORLDS as f64,
        ));
    }
    let mut recovery_entries = String::new();
    for (i, recovery) in recoveries.iter().enumerate() {
        if i > 0 {
            recovery_entries.push_str(",\n");
        }
        let clean = fleets
            .iter()
            .find(|fleet| fleet.workers == recovery.workers)
            .map(|fleet| fleet.coordinator)
            .unwrap_or_default();
        recovery_entries.push_str(&format!(
            "    {{\"workers\": {}, \"recovered_ns\": {}, \"recovery_overhead_ns\": {}}}",
            recovery.workers,
            recovery.recovered.as_nanos(),
            recovery.recovered.saturating_sub(clean).as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"dist\",\n  \
         \"graph\": \"preferential_attachment({VERTICES} vertices, m = {EDGES_PER_VERTEX}, \
         p = {MEAN_P})\",\n  \
         \"edges\": {edges},\n  \"worlds\": {WORLDS},\n  \
         \"plan\": [\"connectivity\", \"degree_histogram\", \"edge_frequency\"],\n  \
         \"notes\": \"critical path of one full plan: coordinator + N loopback shard workers \
         (shard_submit/boundary/shard_result wire protocol, DSU glue, order-faithful merge) \
         vs the in-process run; answers asserted bit-identical before timing is reported. \
         boundary_bytes_per_world sums the encoded per-shard boundary records of one world \
         across the fleet. recovery entries time the same plan with shard 1 wedged into a \
         terminal disconnect mid-plan: one retry burns, a standby is promoted, the shard \
         replays deterministically, and answers are again asserted bit-identical; \
         recovery_overhead_ns is the cold faulted pass minus the clean coordinator pass\",\n  \
         \"in_process_ns\": {},\n  \"fleets\": [\n{fleet_entries}\n  ],\n  \
         \"recovery\": [\n{recovery_entries}\n  ]\n}}\n",
        in_process.as_nanos(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write BENCH_dist.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, dist_bench);
criterion_main!(benches);
