//! Cost of generating the Table 1 workloads: the Flickr/Twitter-shaped
//! social networks, the density-sweep synthetics and the Forest-Fire
//! reduction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs_datasets::prelude::*;

fn dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));

    group.bench_function("flickr_like_tiny", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            flickr_like(Scale::Tiny, &mut rng)
        })
    });
    group.bench_function("twitter_like_tiny", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            twitter_like(Scale::Tiny, &mut rng)
        })
    });

    let mut rng = SmallRng::seed_from_u64(2);
    let base = flickr_like(Scale::Tiny, &mut rng);
    group.bench_function("forest_fire_sample_100", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(3);
            forest_fire_sample(&base, 100, 0.7, &mut rng)
        })
    });
    let (small_base, _) = forest_fire_sample(&base, 60, 0.7, &mut rng);
    group.bench_function("density_sweep_60v", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(4);
            density_sweep(&small_base, ProbabilityModel::FlickrLike, &mut rng)
        })
    });
    group.bench_function("erdos_renyi_200v", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(5);
            erdos_renyi(200, 0.1, ProbabilityModel::TwitterLike, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, dataset_generation);
criterion_main!(benches);
