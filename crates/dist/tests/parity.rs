//! Distributed parity: a coordinator over {1, 2, 4} shard workers resolves
//! every plan bit-identically to the monolithic in-process run *and* to the
//! in-process sharded run — across sampling modes, seeds, thread counts and
//! adaptive precision targets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_dist::{CoordinatorConfig, DistCoordinator};
use ugs_server::{serve, ServerConfig, ServerHandle};
use ugs_service::{QueryAnswer, QueryPlan, ServiceError};
use uncertain_graph::UncertainGraph;

/// A 60-vertex ring with deterministic long chords and pseudo-random edge
/// probabilities: four contiguous shards each see plenty of cut edges.
fn test_graph() -> UncertainGraph {
    let n = 60;
    let mut rng = SmallRng::seed_from_u64(0xD15);
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n, 0.2 + 0.6 * rng.gen::<f64>()));
    }
    for i in (0..n).step_by(3) {
        edges.push((i, (i + 7) % n, 0.1 + 0.8 * rng.gen::<f64>()));
    }
    UncertainGraph::from_edges(n, edges).unwrap()
}

fn spawn_workers(graph: &UncertainGraph, shards: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let workers: Vec<ServerHandle> = (0..shards)
        .map(|k| {
            let config = ServerConfig {
                shard: Some((k, shards)),
                ..ServerConfig::default()
            };
            serve(graph.clone(), config).unwrap()
        })
        .collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    (workers, addrs)
}

fn plan(worlds: usize, threads: usize, shards: usize, mode: &str, seed: u64) -> QueryPlan {
    QueryPlan::parse_str(&format!(
        r#"{{"worlds": {worlds}, "threads": {threads}, "shards": {shards},
            "mode": "{mode}", "seed": {seed},
            "queries": [{{"type": "connectivity"}},
                        {{"type": "degree_histogram"}},
                        {{"type": "edge_frequency"}}]}}"#
    ))
    .unwrap()
}

fn answers(outcomes: Vec<Result<QueryAnswer, ServiceError>>) -> Vec<QueryAnswer> {
    outcomes.into_iter().map(|o| o.unwrap()).collect()
}

#[test]
fn fixed_plans_match_monolithic_and_sharded_runs_bitwise() {
    let graph = test_graph();
    for workers in [1, 2, 4] {
        let (handles, addrs) = spawn_workers(&graph, workers);
        let mut coordinator =
            DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();
        for mode in ["skip", "per-edge"] {
            for seed in [1, 2, 3] {
                let base = plan(120, 2, 1, mode, seed);
                let distributed = answers(coordinator.execute(&base));
                let monolithic = answers(base.execute_detailed(graph.clone()));
                assert_eq!(
                    distributed, monolithic,
                    "coordinator({workers}) vs monolithic, mode {mode}, seed {seed}"
                );
                // The in-process sharded engine must agree too.
                let sharded = plan(120, 2, workers, mode, seed);
                let in_process = answers(sharded.execute_detailed(graph.clone()));
                assert_eq!(
                    distributed, in_process,
                    "coordinator({workers}) vs in-process {workers}-sharded, \
                     mode {mode}, seed {seed}"
                );
            }
        }
        coordinator.shutdown();
        for handle in handles {
            handle.shutdown();
        }
    }
}

#[test]
fn adaptive_plans_match_worlds_used_and_half_width_bitwise() {
    let graph = test_graph();
    for workers in [1, 2, 4] {
        let (handles, addrs) = spawn_workers(&graph, workers);
        let mut coordinator =
            DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();
        for (mode, seed, threads) in [("skip", 1u64, 1), ("per-edge", 2, 3), ("skip", 3, 3)] {
            let adaptive = QueryPlan::parse_str(&format!(
                r#"{{"worlds": 4000, "threads": {threads}, "mode": "{mode}", "seed": {seed},
                    "precision": {{"epsilon": 0.08}},
                    "queries": [{{"type": "connectivity"}},
                                {{"type": "degree_histogram"}},
                                {{"type": "edge_frequency"}}]}}"#
            ))
            .unwrap();
            let distributed = answers(coordinator.execute(&adaptive));
            let monolithic = answers(adaptive.execute_detailed(graph.clone()));
            assert_eq!(
                distributed, monolithic,
                "adaptive coordinator({workers}) vs monolithic, mode {mode}, seed {seed}"
            );
            // The adaptive driver stopped after >0 but < cap worlds, so the
            // parity above covered a genuine mid-budget stop.
            let used = distributed[0].worlds_used;
            assert!(
                used > 0 && used < 4000,
                "expected a converged stop, used {used} worlds"
            );
            assert!(distributed[0].half_width.unwrap().is_finite());
        }
        coordinator.shutdown();
        for handle in handles {
            handle.shutdown();
        }
    }
}

/// A plan exercising every halo kernel: PageRank with a loose tolerance
/// (so the convergence accumulator genuinely stops the superstep loop
/// mid-budget), clustering coefficients, and k-NN.
fn halo_plan(worlds: usize, threads: usize, shards: usize, mode: &str, seed: u64) -> QueryPlan {
    QueryPlan::parse_str(&format!(
        r#"{{"worlds": {worlds}, "threads": {threads}, "shards": {shards},
            "mode": "{mode}", "seed": {seed},
            "queries": [{{"type": "pagerank", "tolerance": 0.01}},
                        {{"type": "clustering"}},
                        {{"type": "knn", "source": 3, "k": 5}}]}}"#
    ))
    .unwrap()
}

#[test]
fn halo_plans_match_monolithic_and_sharded_runs_bitwise() {
    let graph = test_graph();
    for workers in [1, 2, 4] {
        let (handles, addrs) = spawn_workers(&graph, workers);
        let mut coordinator =
            DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();
        for mode in ["skip", "per-edge"] {
            for seed in [1, 2] {
                let base = halo_plan(16, 2, 1, mode, seed);
                let distributed = answers(coordinator.execute(&base));
                let monolithic = answers(base.execute_detailed(graph.clone()));
                assert_eq!(
                    distributed, monolithic,
                    "halo coordinator({workers}) vs monolithic, mode {mode}, seed {seed}"
                );
                let sharded = halo_plan(16, 2, workers, mode, seed);
                let in_process = answers(sharded.execute_detailed(graph.clone()));
                assert_eq!(
                    distributed, in_process,
                    "halo coordinator({workers}) vs in-process {workers}-sharded, \
                     mode {mode}, seed {seed}"
                );
            }
        }
        coordinator.shutdown();
        for handle in handles {
            handle.shutdown();
        }
    }
}

#[test]
fn mixed_aggregate_and_halo_plans_stay_bit_identical() {
    // One plan mixing both mechanisms: the aggregate queries run as a
    // boundary-exchange job, the halo queries replay the same worlds as
    // supersteps — answers interleave back in plan order, bit-identical.
    let graph = test_graph();
    let (handles, addrs) = spawn_workers(&graph, 2);
    let mut coordinator =
        DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();
    let mixed = QueryPlan::parse_str(
        r#"{"worlds": 24, "threads": 3, "seed": 11,
            "queries": [{"type": "connectivity"},
                        {"type": "pagerank", "tolerance": 0.01},
                        {"type": "degree_histogram"},
                        {"type": "knn", "source": 7, "k": 4}]}"#,
    )
    .unwrap();
    let distributed = answers(coordinator.execute(&mixed));
    let monolithic = answers(mixed.execute_detailed(graph.clone()));
    assert_eq!(distributed, monolithic);

    // An adaptive plan where a tracked aggregate drives the stopping rule
    // and an untracked halo query rides along: the halo observers must see
    // the exact epoch extents the rule consumed.
    let adaptive = QueryPlan::parse_str(
        r#"{"worlds": 4000, "threads": 2, "seed": 3,
            "precision": {"epsilon": 0.08},
            "queries": [{"type": "connectivity"},
                        {"type": "clustering"}]}"#,
    )
    .unwrap();
    let distributed = answers(coordinator.execute(&adaptive));
    let monolithic = answers(adaptive.execute_detailed(graph.clone()));
    assert_eq!(distributed, monolithic);
    let used = distributed[0].worlds_used;
    assert!(
        used > 0 && used < 4000,
        "expected a converged stop, used {used} worlds"
    );

    coordinator.shutdown();
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn unsupported_and_empty_plans_resolve_typed() {
    let graph = test_graph();
    let (handles, addrs) = spawn_workers(&graph, 2);
    let mut coordinator =
        DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();

    // Pair queries have no distributed execution path (neither boundary
    // records nor the halo exchange carry the full per-world edge stream):
    // typed error, and the queries riding alongside still answer.
    let mixed = QueryPlan::parse_str(
        r#"{"worlds": 30, "seed": 5,
            "queries": [{"type": "pair_queries", "pairs": [[0, 9]]},
                        {"type": "connectivity"}]}"#,
    )
    .unwrap();
    let outcomes = coordinator.execute(&mixed);
    match &outcomes[0] {
        Err(ServiceError::Policy(why)) => {
            assert!(why.contains("pair_queries"), "typed policy error: {why}")
        }
        other => panic!("expected a typed Policy error, got {other:?}"),
    }
    let answer = outcomes[1].as_ref().unwrap();
    assert_eq!(answer.worlds_used, 30);

    // Zero worlds: pristine finalize, no sampling job at all — for the
    // halo queries too.
    let empty = QueryPlan::parse_str(
        r#"{"worlds": 0, "seed": 5,
            "queries": [{"type": "connectivity"}, {"type": "pagerank"}]}"#,
    )
    .unwrap();
    let outcomes = answers(coordinator.execute(&empty));
    assert_eq!(outcomes, answers(empty.execute_detailed(graph.clone())));
    assert_eq!(outcomes[0].worlds_used, 0);
    assert_eq!(outcomes[1].worlds_used, 0);

    coordinator.shutdown();
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn reports_render_byte_identical_to_the_in_process_renderer() {
    let graph = test_graph();
    let (handles, addrs) = spawn_workers(&graph, 2);
    let mut coordinator =
        DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();
    let label = coordinator.graph_label();
    let base = plan(80, 1, 1, "auto", 9);
    let distributed = coordinator.run_report(&base).render();
    let in_process = base.run_report(graph.clone(), &label).render();
    assert_eq!(distributed, in_process);
    coordinator.shutdown();
    for handle in handles {
        handle.shutdown();
    }
}
