//! Failure-model coverage: a worker killed mid-plan degrades the plan to
//! the typed `worker_lost` error within a bounded wait — never a hang —
//! and shutting the coordinator down closes every worker connection.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_dist::{CoordinatorConfig, DistCoordinator, FaultKind, FaultPlan};
use ugs_server::{serve, LineClient, ServerConfig, ServerHandle};
use ugs_service::{QueryPlan, ServiceError};
use uncertain_graph::UncertainGraph;

fn test_graph() -> UncertainGraph {
    let n = 40;
    let mut rng = SmallRng::seed_from_u64(0xFA);
    let edges: Vec<_> = (0..n)
        .map(|i| (i, (i + 1) % n, 0.3 + 0.5 * rng.gen::<f64>()))
        .collect();
    UncertainGraph::from_edges(n, edges).unwrap()
}

fn spawn_workers(graph: &UncertainGraph, shards: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let workers: Vec<ServerHandle> = (0..shards)
        .map(|k| {
            let config = ServerConfig {
                shard: Some((k, shards)),
                ..ServerConfig::default()
            };
            serve(graph.clone(), config).unwrap()
        })
        .collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    (workers, addrs)
}

/// Tight failure knobs so the bounded degradation resolves in test time.
fn fast_failure() -> CoordinatorConfig {
    CoordinatorConfig {
        timeout: Duration::from_millis(500),
        retries: 1,
        stale_after: Duration::from_secs(2),
        poll_interval: Duration::from_millis(1),
        reconnect_backoff: Duration::from_millis(5),
        ..CoordinatorConfig::default()
    }
}

#[test]
fn killing_a_worker_mid_plan_degrades_to_worker_lost_not_a_hang() {
    let graph = test_graph();
    let (workers, addrs) = spawn_workers(&graph, 2);
    let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, fast_failure()).unwrap();

    // Warm run proves the fleet works before the fault.
    let warm =
        QueryPlan::parse_str(r#"{"worlds": 20, "seed": 3, "queries": [{"type": "connectivity"}]}"#)
            .unwrap();
    assert!(coordinator.execute(&warm).into_iter().all(|o| o.is_ok()));

    // Kill worker 1 while a large plan runs: the executing thread must come
    // back with the typed error for every query, within the bounded window
    // (timeout + retries + stale detector), never hang.
    let big = QueryPlan::parse_str(
        r#"{"worlds": 4000000, "seed": 3,
            "queries": [{"type": "connectivity"}, {"type": "edge_frequency"}]}"#,
    )
    .unwrap();
    let started = Instant::now();
    let mut workers = workers;
    let outcomes = std::thread::scope(|scope| {
        let execution = scope.spawn(move || {
            let outcomes = coordinator.execute(&big);
            // Dropping the coordinator here closes the surviving worker's
            // connection, which stops its (huge) sampling job.
            drop(coordinator);
            outcomes
        });
        std::thread::sleep(Duration::from_millis(100));
        // Dropping a ServerHandle shuts the server down: worker 1 dies
        // mid-plan while worker 0 keeps serving.
        workers.remove(1).shutdown();
        execution.join().unwrap()
    });
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "degradation must be bounded, took {:?}",
        started.elapsed()
    );
    assert_eq!(outcomes.len(), 2);
    for outcome in outcomes {
        match outcome {
            Err(ServiceError::WorkerLost(why)) => {
                assert!(why.contains("shard 1"), "names the lost worker: {why}")
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }
    }
}

#[test]
fn a_dead_fleet_fails_connect_with_worker_lost() {
    let graph = test_graph();
    let (workers, addrs) = spawn_workers(&graph, 2);
    for worker in workers {
        worker.shutdown();
    }
    match DistCoordinator::connect(graph, &addrs, fast_failure()) {
        Err(ServiceError::WorkerLost(_)) => {}
        Err(other) => panic!("expected WorkerLost, got {other:?}"),
        Ok(_) => panic!("expected WorkerLost, got a connected coordinator"),
    }
}

#[test]
fn a_worker_with_the_wrong_role_is_rejected_at_connect() {
    let graph = test_graph();
    // Both workers claim shard 0 of 2: the second address fails validation.
    let config = ServerConfig {
        shard: Some((0, 2)),
        ..ServerConfig::default()
    };
    let a = serve(graph.clone(), config.clone()).unwrap();
    let b = serve(graph.clone(), config).unwrap();
    let addrs = [a.addr().to_string(), b.addr().to_string()];
    match DistCoordinator::connect(graph.clone(), &addrs, fast_failure()) {
        Err(ServiceError::WorkerLost(why)) => {
            assert!(why.contains("shard 1"), "names the mismatched role: {why}")
        }
        Err(other) => panic!("expected WorkerLost, got {other:?}"),
        Ok(_) => panic!("expected WorkerLost, got a connected coordinator"),
    }
    // A worker serving a different graph is rejected the same way.
    let other_graph = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
    let c = serve(
        other_graph,
        ServerConfig {
            shard: Some((0, 1)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    match DistCoordinator::connect(graph, &[c.addr().to_string()], fast_failure()) {
        Err(ServiceError::WorkerLost(why)) => {
            assert!(why.contains("graph"), "names the graph mismatch: {why}")
        }
        Err(other) => panic!("expected WorkerLost, got {other:?}"),
        Ok(_) => panic!("expected WorkerLost, got a connected coordinator"),
    }
    a.shutdown();
    b.shutdown();
    c.shutdown();
}

#[test]
fn coordinator_shutdown_closes_every_worker_connection() {
    let graph = test_graph();
    let (workers, addrs) = spawn_workers(&graph, 2);
    // A separate monitor connection per worker, to read the gauge.
    let mut monitors: Vec<LineClient> = workers
        .iter()
        .map(|w| LineClient::connect(w.addr()).unwrap())
        .collect();
    let connections = |client: &mut LineClient| -> usize {
        client
            .request(r#"{"op": "stats"}"#)
            .unwrap()
            .get_usize("connections")
            .unwrap()
    };

    let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, fast_failure()).unwrap();
    let plan =
        QueryPlan::parse_str(r#"{"worlds": 10, "seed": 1, "queries": [{"type": "connectivity"}]}"#)
            .unwrap();
    assert!(coordinator.execute(&plan).into_iter().all(|o| o.is_ok()));
    for monitor in &mut monitors {
        assert_eq!(connections(monitor), 2, "coordinator + this monitor");
    }

    coordinator.shutdown();
    // The close is asynchronous on the worker side: poll briefly.
    for monitor in &mut monitors {
        let deadline = Instant::now() + Duration::from_secs(10);
        while connections(monitor) != 1 {
            assert!(Instant::now() < deadline, "worker kept a dead connection");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    for worker in workers {
        worker.shutdown();
    }
}

#[test]
fn a_listener_that_accepts_but_never_responds_fails_typed_and_bounded() {
    let graph = test_graph();
    let (workers, mut addrs) = spawn_workers(&graph, 2);
    // A bound listener that is never accepted from: the kernel backlog
    // completes the TCP handshake, so `connect` succeeds and the request
    // is buffered — but no response ever comes.  Every exchange must
    // resolve through the read timeout, not hang.
    let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    addrs[1] = silent.local_addr().unwrap().to_string();
    let started = Instant::now();
    match DistCoordinator::connect(graph, &addrs, fast_failure()) {
        Err(ServiceError::WorkerLost(why)) => {
            assert!(why.contains("shard 1"), "names the silent worker: {why}")
        }
        Err(other) => panic!("expected WorkerLost, got {other:?}"),
        Ok(_) => panic!("expected WorkerLost, got a connected coordinator"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "silent-listener degradation must be bounded, took {:?}",
        started.elapsed()
    );
    drop(silent);
    for worker in workers {
        worker.shutdown();
    }
}

#[test]
fn a_worker_that_goes_silent_mid_plan_degrades_through_the_read_timeout_loop() {
    let graph = test_graph();
    // Worker 1 wedges into Drop early: from that operation on it keeps
    // accepting requests (and reconnections) but never answers again —
    // the accepts-but-never-responds shape, hit *mid-plan*.
    let worker0 = serve(
        graph.clone(),
        ServerConfig {
            shard: Some((0, 2)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let worker1 = serve(
        graph.clone(),
        ServerConfig {
            shard: Some((1, 2)),
            fault_plan: Some(FaultPlan::wedge_after(3, FaultKind::Drop)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addrs = [worker0.addr().to_string(), worker1.addr().to_string()];
    let mut coordinator = DistCoordinator::connect(graph, &addrs, fast_failure()).unwrap();
    let plan = QueryPlan::parse_str(
        r#"{"worlds": 200, "seed": 5, "queries": [{"type": "connectivity"}]}"#,
    )
    .unwrap();
    let started = Instant::now();
    let outcomes = coordinator.execute(&plan);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "mid-plan silence must resolve through bounded timeouts, took {:?}",
        started.elapsed()
    );
    match &outcomes[0] {
        Err(ServiceError::WorkerLost(why)) => {
            assert!(why.contains("shard 1"), "names the wedged worker: {why}")
        }
        other => panic!("expected WorkerLost, got {other:?}"),
    }
    coordinator.shutdown();
    worker0.shutdown();
    worker1.shutdown();
}

#[test]
fn a_standby_with_the_wrong_fingerprint_is_rejected_typed_and_bounded() {
    let graph = test_graph();
    let worker0 = serve(
        graph.clone(),
        ServerConfig {
            shard: Some((0, 2)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Worker 1 wedges into Disconnect mid-plan, exhausting its retries.
    let worker1 = serve(
        graph.clone(),
        ServerConfig {
            shard: Some((1, 2)),
            fault_plan: Some(FaultPlan::wedge_after(3, FaultKind::Disconnect)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // The only standby serves a *different* graph under the right role: it
    // must fail fingerprint validation at promotion — the coordinator must
    // degrade typed rather than glue mismatched records.
    let other_graph = {
        let mut rng = SmallRng::seed_from_u64(0xFB);
        let edges: Vec<_> = (0..40)
            .map(|i| (i, (i + 1) % 40, 0.3 + 0.5 * rng.gen::<f64>()))
            .collect();
        UncertainGraph::from_edges(40, edges).unwrap()
    };
    let imposter = serve(
        other_graph,
        ServerConfig {
            shard: Some((1, 2)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut config = fast_failure();
    config.standbys = vec![imposter.addr().to_string()];
    let addrs = [worker0.addr().to_string(), worker1.addr().to_string()];
    let mut coordinator = DistCoordinator::connect(graph, &addrs, config).unwrap();
    let plan = QueryPlan::parse_str(
        r#"{"worlds": 200, "seed": 5, "queries": [{"type": "connectivity"}]}"#,
    )
    .unwrap();
    let started = Instant::now();
    let outcomes = coordinator.execute(&plan);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "rejected-standby degradation must be bounded, took {:?}",
        started.elapsed()
    );
    match &outcomes[0] {
        Err(ServiceError::WorkerLost(why)) => {
            assert!(why.contains("shard 1"), "names the lost shard: {why}");
            assert!(
                why.contains("graph"),
                "names the fingerprint mismatch: {why}"
            );
        }
        other => panic!("expected WorkerLost, got {other:?}"),
    }
    assert_eq!(
        coordinator.standbys_left(),
        0,
        "the bad standby is consumed"
    );
    coordinator.shutdown();
    worker0.shutdown();
    worker1.shutdown();
    imposter.shutdown();
}
