//! Tentpole recovery coverage: a plan that loses a worker mid-run —
//! whether to a seeded worker-side wedge, a coordinator-side fault plan,
//! or a plain dead process — completes **bit-identically** to the
//! fault-free run after failing over to a standby, for fixed and adaptive
//! plans alike.  Deterministic replay (the shard job resamples the
//! identical world stream from the batch seed) plus the pager's `received`
//! cursor make this an invariant, not a best effort; these tests pin it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_dist::{CoordinatorConfig, DistCoordinator, FaultKind, FaultPlan};
use ugs_server::{serve, ServerConfig, ServerHandle};
use ugs_service::{QueryAnswer, QueryPlan, ServiceError};
use uncertain_graph::UncertainGraph;

/// Same graph as the parity suite: a 60-vertex ring with chords, so every
/// contiguous shard sees plenty of cut edges.
fn test_graph() -> UncertainGraph {
    let n = 60;
    let mut rng = SmallRng::seed_from_u64(0xD15);
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n, 0.2 + 0.6 * rng.gen::<f64>()));
    }
    for i in (0..n).step_by(3) {
        edges.push((i, (i + 7) % n, 0.1 + 0.8 * rng.gen::<f64>()));
    }
    UncertainGraph::from_edges(n, edges).unwrap()
}

fn shard_server(graph: &UncertainGraph, k: usize, shards: usize) -> ServerHandle {
    serve(
        graph.clone(),
        ServerConfig {
            shard: Some((k, shards)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// A fleet whose `victim` worker wedges into a terminal Disconnect a few
/// operations in — a deterministic stand-in for a process dying mid-plan.
fn doomed_fleet(
    graph: &UncertainGraph,
    shards: usize,
    victim: usize,
    wedge_at: usize,
) -> (Vec<ServerHandle>, Vec<String>) {
    let workers: Vec<ServerHandle> = (0..shards)
        .map(|k| {
            let fault_plan =
                (k == victim).then(|| FaultPlan::wedge_after(wedge_at, FaultKind::Disconnect));
            serve(
                graph.clone(),
                ServerConfig {
                    shard: Some((k, shards)),
                    fault_plan,
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    (workers, addrs)
}

/// Tight-but-safe failure knobs with a standby pool.
fn recovery_config(standbys: Vec<String>) -> CoordinatorConfig {
    CoordinatorConfig {
        timeout: std::time::Duration::from_secs(5),
        retries: 1,
        stale_after: std::time::Duration::from_secs(10),
        poll_interval: std::time::Duration::from_millis(1),
        reconnect_backoff: std::time::Duration::from_millis(5),
        standbys,
        faults: None,
    }
}

/// 1200 worlds spans at least three 512-record boundary pages per worker,
/// so operation 4 of the victim's server-global fault clock (stats, ping,
/// submit, then paging) is always reached mid-glue — the wedge below
/// cannot race a plan that finishes in one page.
fn fixed_plan(mode: &str, seed: u64) -> QueryPlan {
    QueryPlan::parse_str(&format!(
        r#"{{"worlds": 1200, "threads": 2, "mode": "{mode}", "seed": {seed},
            "queries": [{{"type": "connectivity"}},
                        {{"type": "degree_histogram"}},
                        {{"type": "edge_frequency"}}]}}"#
    ))
    .unwrap()
}

fn adaptive_plan(mode: &str, seed: u64, threads: usize) -> QueryPlan {
    QueryPlan::parse_str(&format!(
        r#"{{"worlds": 4000, "threads": {threads}, "mode": "{mode}", "seed": {seed},
            "precision": {{"epsilon": 0.08}},
            "queries": [{{"type": "connectivity"}},
                        {{"type": "degree_histogram"}},
                        {{"type": "edge_frequency"}}]}}"#
    ))
    .unwrap()
}

fn answers(outcomes: Vec<Result<QueryAnswer, ServiceError>>) -> Vec<QueryAnswer> {
    outcomes.into_iter().map(|o| o.unwrap()).collect()
}

#[test]
fn fixed_plans_recover_bit_identically_after_mid_plan_worker_death() {
    let graph = test_graph();
    for workers in [2usize, 4] {
        for seed in [1u64, 2, 3] {
            let mode = if seed % 2 == 1 { "skip" } else { "per-edge" };
            let (handles, addrs) = doomed_fleet(&graph, workers, 1, 4);
            let standby = shard_server(&graph, 1, workers);
            let config = recovery_config(vec![standby.addr().to_string()]);
            let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, config).unwrap();

            let plan = fixed_plan(mode, seed);
            let recovered = answers(coordinator.execute(&plan));
            let monolithic = answers(plan.execute_detailed(graph.clone()));
            assert_eq!(
                recovered, monolithic,
                "recovered({workers} workers) vs fault-free, mode {mode}, seed {seed}"
            );

            let report = coordinator.recovery_report();
            assert_eq!(report.failovers.len(), 1, "exactly one promotion");
            assert_eq!(report.failovers[0].shard, 1, "the wedged shard failed over");
            assert_eq!(report.failovers[0].to, standby.addr().to_string());
            assert_eq!(coordinator.standbys_left(), 0);

            coordinator.shutdown();
            standby.shutdown();
            for handle in handles {
                handle.shutdown();
            }
        }
    }
}

#[test]
fn adaptive_plans_recover_bit_identically_after_mid_plan_worker_death() {
    let graph = test_graph();
    for workers in [2usize, 4] {
        for (mode, seed, threads) in [("skip", 1u64, 1), ("per-edge", 2, 3), ("skip", 3, 3)] {
            // The victim's op 4 is the first boundary page of the first
            // adaptive epoch (stats, ping, submit, raise): always mid-plan.
            let (handles, addrs) = doomed_fleet(&graph, workers, 1, 4);
            let standby = shard_server(&graph, 1, workers);
            let config = recovery_config(vec![standby.addr().to_string()]);
            let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, config).unwrap();

            let plan = adaptive_plan(mode, seed, threads);
            let recovered = answers(coordinator.execute(&plan));
            let monolithic = answers(plan.execute_detailed(graph.clone()));
            // Bit-identical answers *including* the adaptive stop: same
            // worlds_used, same half_width, down to the last bit.
            assert_eq!(
                recovered, monolithic,
                "adaptive recovered({workers} workers) vs fault-free, mode {mode}, seed {seed}"
            );
            let used = recovered[0].worlds_used;
            assert!(
                used > 0 && used < 4000,
                "expected a converged mid-budget stop, used {used} worlds"
            );

            assert_eq!(coordinator.recovery_report().failovers.len(), 1);
            assert_eq!(coordinator.recovery_report().failovers[0].shard, 1);

            coordinator.shutdown();
            standby.shutdown();
            for handle in handles {
                handle.shutdown();
            }
        }
    }
}

#[test]
fn halo_plans_recover_bit_identically_after_a_mid_superstep_worker_death() {
    // The victim's fault clock ticks: stats (connect validation), ping
    // (pre-plan probe), then halo exchanges — wedging at operation 6 lands
    // the terminal disconnect inside world 0's PageRank superstep loop.
    // The coordinator must burn the retry, promote the standby, restart
    // the *current world* from step 0 (surviving workers restart their
    // kernels without resampling; the standby rebuilds the session from
    // the line identity and replays the stream), and still answer
    // bit-identically for every halo kernel.
    let graph = test_graph();
    for workers in [2usize, 4] {
        for seed in [1u64, 2] {
            let mode = if seed % 2 == 1 { "skip" } else { "per-edge" };
            let (handles, addrs) = doomed_fleet(&graph, workers, 1, 6);
            let standby = shard_server(&graph, 1, workers);
            let config = recovery_config(vec![standby.addr().to_string()]);
            let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, config).unwrap();

            let plan = QueryPlan::parse_str(&format!(
                r#"{{"worlds": 10, "threads": 2, "mode": "{mode}", "seed": {seed},
                    "queries": [{{"type": "pagerank", "tolerance": 0.01}},
                                {{"type": "clustering"}},
                                {{"type": "knn", "source": 3, "k": 5}}]}}"#
            ))
            .unwrap();
            let recovered = answers(coordinator.execute(&plan));
            let monolithic = answers(plan.execute_detailed(graph.clone()));
            assert_eq!(
                recovered, monolithic,
                "halo recovered({workers} workers) vs fault-free, mode {mode}, seed {seed}"
            );

            let report = coordinator.recovery_report();
            assert_eq!(report.failovers.len(), 1, "exactly one promotion");
            assert_eq!(report.failovers[0].shard, 1, "the wedged shard failed over");
            assert_eq!(report.failovers[0].to, standby.addr().to_string());

            coordinator.shutdown();
            standby.shutdown();
            for handle in handles {
                handle.shutdown();
            }
        }
    }
}

#[test]
fn coordinator_side_seeded_faults_leave_answers_bit_identical() {
    let graph = test_graph();
    for workers in [2usize, 4] {
        for seed in [1u64, 2, 3] {
            let handles: Vec<ServerHandle> = (0..workers)
                .map(|k| shard_server(&graph, k, workers))
                .collect();
            let addrs: Vec<String> = handles.iter().map(|w| w.addr().to_string()).collect();
            // Five seeded faults inside the first 60 exchanges, with a
            // retry budget wide enough to absorb them all on one worker.
            let config = CoordinatorConfig {
                retries: 12,
                reconnect_backoff: std::time::Duration::from_millis(1),
                faults: Some(FaultPlan::seeded(seed, 5, 60)),
                ..recovery_config(Vec::new())
            };
            let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, config).unwrap();

            let plan = fixed_plan("skip", seed);
            let faulted = answers(coordinator.execute(&plan));
            let monolithic = answers(plan.execute_detailed(graph.clone()));
            assert_eq!(
                faulted, monolithic,
                "seeded coordinator faults({workers} workers) vs fault-free, seed {seed}"
            );
            assert!(
                coordinator.recovery_report().failovers.is_empty(),
                "retries absorb coordinator-side faults without promotion"
            );

            coordinator.shutdown();
            for handle in handles {
                handle.shutdown();
            }
        }
    }
}

#[test]
fn a_dead_at_connect_worker_fails_over_during_validation() {
    let graph = test_graph();
    let worker0 = shard_server(&graph, 0, 2);
    let doomed = shard_server(&graph, 1, 2);
    let standby = shard_server(&graph, 1, 2);
    let addrs = [worker0.addr().to_string(), doomed.addr().to_string()];
    doomed.shutdown();

    let config = recovery_config(vec![standby.addr().to_string()]);
    let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, config).unwrap();
    let report = coordinator.recovery_report();
    assert_eq!(report.failovers.len(), 1, "connect-time promotion");
    assert_eq!(report.failovers[0].shard, 1);

    let plan = fixed_plan("skip", 7);
    assert_eq!(
        answers(coordinator.execute(&plan)),
        answers(plan.execute_detailed(graph.clone()))
    );
    coordinator.shutdown();
    worker0.shutdown();
    standby.shutdown();
}

#[test]
fn the_pre_submit_probe_promotes_a_worker_lost_between_plans() {
    let graph = test_graph();
    let worker0 = shard_server(&graph, 0, 2);
    let worker1 = shard_server(&graph, 1, 2);
    let standby = shard_server(&graph, 1, 2);
    let addrs = [worker0.addr().to_string(), worker1.addr().to_string()];
    let config = recovery_config(vec![standby.addr().to_string()]);
    let mut coordinator = DistCoordinator::connect(graph.clone(), &addrs, config).unwrap();

    // First plan runs on the original fleet.
    let warm = fixed_plan("skip", 4);
    assert_eq!(
        answers(coordinator.execute(&warm)),
        answers(warm.execute_detailed(graph.clone()))
    );
    assert!(coordinator.recovery_report().is_clean());

    // Worker 1 dies between plans: the pre-submit probe must catch it and
    // promote the standby before any shard work fans out, and the next
    // plan still answers bit-identically.
    worker1.shutdown();
    let plan = fixed_plan("per-edge", 5);
    assert_eq!(
        answers(coordinator.execute(&plan)),
        answers(plan.execute_detailed(graph.clone()))
    );
    assert_eq!(coordinator.recovery_report().failovers.len(), 1);
    assert_eq!(coordinator.recovery_report().failovers[0].shard, 1);

    coordinator.shutdown();
    worker0.shutdown();
    standby.shutdown();
}
