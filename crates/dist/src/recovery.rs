//! Failover bookkeeping: the standby address pool a coordinator promotes
//! from when a shard's retry budget runs dry, and the report of what
//! recovery work a coordinator has done.
//!
//! ## Why promotion preserves bit-identity
//!
//! Workers are stateless per plan beyond the O(|E|) replay table: the
//! `shard_submit` request carries the batch seed, and a shard job replays
//! the **identical world stream from world 0** regardless of which process
//! runs it.  The coordinator's pager keeps a `received` cursor per shard;
//! a promoted standby is validated (graph fingerprint + shard role),
//! resubmitted the same job line, and paged **from that cursor** — the
//! records below it were already glued, and the standby's records at and
//! above it are bitwise the records the lost worker would have produced.
//! Adaptive plans need nothing extra: the stopping rule lives coordinator-
//! side and consumes the glued record stream, which failover leaves
//! unchanged.

/// One completed shard failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failover {
    /// The shard whose worker was replaced.
    pub shard: usize,
    /// Address of the worker that was lost.
    pub from: String,
    /// Standby address that took the shard over.
    pub to: String,
}

/// Cumulative recovery activity of one coordinator (across plans): how
/// often an exchange failed and burned a retry, and every standby
/// promotion that kept a plan alive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Failed exchanges absorbed by the per-worker retry budgets.
    pub retries_burned: usize,
    /// Standby promotions, in the order they happened.
    pub failovers: Vec<Failover>,
}

impl RecoveryReport {
    /// Whether any recovery work happened at all.
    pub fn is_clean(&self) -> bool {
        self.retries_burned == 0 && self.failovers.is_empty()
    }
}

/// The pool of standby worker addresses a coordinator may promote.  Any
/// standby must serve the **same graph** (checked by fingerprint at
/// promotion) and be started with the shard role it is meant to cover —
/// promotion validates the role for the lost shard, so a pool can mix
/// standbys pre-armed for different shards and each loss consumes the
/// first candidate that validates.
#[derive(Debug, Clone, Default)]
pub(crate) struct StandbyPool {
    addrs: Vec<String>,
}

impl StandbyPool {
    pub(crate) fn new(addrs: Vec<String>) -> StandbyPool {
        StandbyPool { addrs }
    }

    /// Number of unconsumed standby addresses.
    pub(crate) fn len(&self) -> usize {
        self.addrs.len()
    }

    /// The candidate addresses, in promotion order.
    pub(crate) fn candidates(&self) -> Vec<String> {
        self.addrs.clone()
    }

    /// Consumes a promoted (or invalidated) address: a standby serves at
    /// most one shard, and one that failed validation is not offered again.
    pub(crate) fn remove(&mut self, addr: &str) {
        self.addrs.retain(|candidate| candidate != addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_pool_consumes_promoted_addresses() {
        let mut pool = StandbyPool::new(vec!["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.candidates(), vec!["a:1", "b:2"]);
        pool.remove("a:1");
        assert_eq!(pool.candidates(), vec!["b:2"]);
        pool.remove("missing:9");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn a_fresh_report_is_clean() {
        let mut report = RecoveryReport::default();
        assert!(report.is_clean());
        report.retries_burned += 1;
        assert!(!report.is_clean());
    }
}
