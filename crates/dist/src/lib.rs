//! Multi-process distributed query execution: shard workers plus a
//! boundary-exchange coordinator.
//!
//! A **worker** is an `ugs-server` started with
//! [`ServerConfig::shard`](ugs_server::ServerConfig::shard)` = Some((k, w))`
//! (the CLI spelling is `ugs serve --shard k --shards w`): it builds the
//! contiguous `w`-shard partition of its graph and holds only shard `k`'s
//! CSR and scratch state, plus the O(|E|) replay probability table that
//! keeps the sampled world stream identical across every worker and the
//! monolithic engine.  The **coordinator** ([`DistCoordinator`]) connects
//! to one worker per shard, fans a [`QueryPlan`](ugs_service::QueryPlan)
//! out over the line-delimited JSON protocol (`shard_submit` / `boundary`
//! / `shard_result`), glues each world's per-shard boundary messages into
//! the global component structure with a disjoint-set union, and resolves
//! the plan **bit-identically** to an in-process
//! `plan.execute_detailed(graph)` run of the same plan.
//!
//! # Why the answers are bit-identical
//!
//! Three invariants compose, none of them approximate:
//!
//! 1. **Replay sampling.**  Worker `k` samples world `i` by replaying the
//!    full-graph edge stream from the shared batch seed (derived exactly
//!    like the in-process service derives it: the first `u64` drawn from
//!    `SmallRng::seed_from_u64(plan.seed)`), so every shard — and the
//!    monolithic engine — sees the same coin for every edge of every
//!    world.
//! 2. **Exact glue.**  A world's global component structure decomposes
//!    into per-shard structures joined across present cut edges; the
//!    boundary message carries exactly the labels the union-find needs, so
//!    component counts, largest-component sizes and isolated-vertex counts
//!    come out equal to the in-process sharded observer's, not close to.
//! 3. **Order-faithful accumulation.**  Integer-valued totals (degree
//!    bins, edge presence counts) are order-insensitive and travel as
//!    worker-side cross-world aggregates; the one float-ordered total (the
//!    connectivity observer's isolated fraction) is accumulated per
//!    worker-thread world block and folded in block order — the identical
//!    `f64` addition sequence the in-process driver performs for the
//!    plan's `threads` setting.  Adaptive plans re-run the in-process
//!    stopping rule verbatim (same crate, same code) with the per-world
//!    statistics recorded in world order, so `worlds_used` and
//!    `half_width` match bitwise too.
//!
//! Distributed execution covers the cut-aware *count* queries —
//! `connectivity`, `degree_histogram`, `edge_frequency` — through the
//! boundary exchange above, and the neighbourhood queries — `pagerank`,
//! `clustering`, `knn` — through the **ghost-halo exchange** (the
//! server's `halo` op): after the aggregate job finishes, the coordinator
//! walks the same world stream again, driving each world as Pregel-style
//! supersteps over per-worker halo sessions.  PageRank feeds every shard
//! the ghost ranks it reads, threads the L1 convergence accumulator
//! through the shards in ascending order, and stops at the monolithic
//! kernel's exact break; k-NN routes BFS settlements level by level;
//! clustering is a one-shot halo collect.  All values cross the wire as
//! IEEE-754 bit patterns and land in per-thread-block observer clones
//! merged in block order, so the halo answers replicate the in-process
//! `f64` fold bitwise — the same argument as invariant 3, extended to
//! per-vertex state (see [`ugs_queries::halo`] for the iteration-
//! equivalence argument).  Only `pair_queries` has no distributed path
//! and resolves with a typed
//! [`ServiceError::Policy`](ugs_service::ServiceError::Policy): its
//! cut-corrected observer needs the full per-world edge stream, which
//! neither boundary records nor the halo exchange carry.
//!
//! # Failure model
//!
//! Configured by [`CoordinatorConfig`]; the invariant is **bounded wait,
//! typed degradation, never a hang**:
//!
//! * every worker socket carries read *and* write timeouts;
//! * a failed exchange burns one of the worker's bounded retries and
//!   reconnects, re-validates (fingerprint + shard role) and resubmits —
//!   the fresh job deterministically resamples the identical stream, so a
//!   retried worker cannot skew the answer;
//! * a worker whose sampling position stops advancing while records are
//!   owed is declared stale and retried the same way;
//! * a halo superstep is **stateful**, so a failed halo exchange is never
//!   retried verbatim: the failure burns the same bounded retry budget,
//!   and the coordinator restarts the affected query's *current world*
//!   from step 0 — surviving workers restart their kernel without
//!   resampling, while a reconnected (or freshly promoted) worker rebuilds
//!   its session from the line's full identity and replays the shared
//!   stream up to the world, either way bit-identical to an undisturbed
//!   run;
//! * every plan is preceded by a **pre-submit probe** (`ping` per worker
//!   through the same retry path), so a dead-at-connect worker surfaces —
//!   and fails over — before any shard work starts;
//! * when a worker's retries run out the shard **fails over**: the first
//!   [`CoordinatorConfig::standbys`] address that validates (fingerprint +
//!   shard role) is promoted and the job resubmitted to it — recovery is
//!   bit-identical because a fresh job deterministically resamples the
//!   identical stream while the pager keeps its glue cursor (see
//!   [`recovery`]);
//! * only when no standby validates does the plan degrade to
//!   [`ServiceError::WorkerLost`](ugs_service::ServiceError::WorkerLost)
//!   ([`retryable`](ugs_service::ServiceError::retryable), because a
//!   supervisor may since have respawned the fleet) for every pending
//!   query;
//! * shutting down (or dropping) the coordinator closes every worker
//!   connection, which stops and joins the workers' sampler threads.
//!
//! Chaos-testing all of the above is deterministic: a seeded [`FaultPlan`]
//! ([`CoordinatorConfig::faults`] coordinator-side,
//! [`ServerConfig::fault_plan`](ugs_server::ServerConfig::fault_plan)
//! worker-side) schedules drop/delay/disconnect/garble faults at exact
//! operation counts — see [`fault`].  Process-level resilience is the
//! [`supervisor`] module: it launches a worker fleet, watches liveness via
//! `ping`, and respawns dead workers with bounded backoff and crash-loop
//! detection (the CLI spelling is `ugs supervise`).  See
//! `docs/deployment.md` for the multi-host walkthrough.
//!
//! # Example
//!
//! ```
//! use ugs_dist::{CoordinatorConfig, DistCoordinator};
//! use ugs_server::{serve, ServerConfig};
//! use ugs_service::QueryPlan;
//! use uncertain_graph::UncertainGraph;
//!
//! let graph = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
//!
//! // Two shard workers (in-process here; separate processes in production).
//! let workers: Vec<_> = (0..2)
//!     .map(|k| {
//!         let config = ServerConfig { shard: Some((k, 2)), ..ServerConfig::default() };
//!         serve(graph.clone(), config).unwrap()
//!     })
//!     .collect();
//! let addrs: Vec<_> = workers.iter().map(|w| w.addr().to_string()).collect();
//!
//! let mut coordinator =
//!     DistCoordinator::connect(graph.clone(), &addrs, CoordinatorConfig::default()).unwrap();
//! let plan = QueryPlan::parse_str(
//!     r#"{"worlds": 40, "seed": 7, "queries": [{"type": "connectivity"}]}"#,
//! )
//! .unwrap();
//!
//! // Bit-identical to the in-process run of the same plan.
//! let distributed = coordinator.execute(&plan);
//! let monolithic = plan.execute_detailed(graph);
//! assert_eq!(distributed[0].as_ref().unwrap(), monolithic[0].as_ref().unwrap());
//!
//! coordinator.shutdown();
//! for worker in workers {
//!     worker.shutdown();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod fault;
mod merge;
pub mod recovery;
pub mod supervisor;

pub use coordinator::{CoordinatorConfig, DistCoordinator};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use recovery::{Failover, RecoveryReport};
pub use supervisor::{
    supervise, SupervisorConfig, SupervisorReport, WorkerOutcome, WorkerReport, WorkerSpec,
};
