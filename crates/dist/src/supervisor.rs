//! A worker-fleet supervisor: launches the `ugs serve --shard` processes
//! of a fleet, watches their liveness, and respawns the dead — the
//! process-level half of the failover story (the coordinator's standby
//! promotion is the connection-level half).
//!
//! ## Model
//!
//! Each [`WorkerSpec`] names one worker: the command to run and the
//! address it serves on.  The supervisor polls every worker:
//!
//! * an exit with status **0** is a graceful stop ([`WorkerOutcome::Done`]
//!   — the worker answered a `shutdown` op) and is **not** respawned;
//! * any other exit (including a kill) is a crash: the worker is respawned
//!   after an exponential backoff (base [`SupervisorConfig::backoff`],
//!   doubling per consecutive fast exit, capped by
//!   [`SupervisorConfig::max_backoff`]), up to
//!   [`SupervisorConfig::max_respawns`] times
//!   ([`WorkerOutcome::RespawnsExhausted`] afterwards);
//! * [`SupervisorConfig::crash_loop_limit`] consecutive exits within
//!   [`SupervisorConfig::crash_loop_window`] of their spawn trip the
//!   **crash-loop detector** ([`WorkerOutcome::CrashLooping`]): a worker
//!   that cannot even start (bad flags, unreadable graph) must not burn
//!   respawns forever;
//! * a running worker that stops answering `ping`
//!   ([`SupervisorConfig::ping_failures`] consecutive probe failures,
//!   probes every [`SupervisorConfig::ping_interval`] after a startup
//!   grace) is killed and treated as a crash — a wedged process is as dead
//!   as a gone one.
//!
//! Respawned workers re-bind their **fixed address**, so a coordinator
//! with enough retry budget (see
//! [`CoordinatorConfig`](crate::CoordinatorConfig)) reconnects to the
//! respawned process and the plan completes bit-identically — the
//! deterministic-replay property means a fresh worker re-derives the
//! exact world stream.  A failed bind surfaces as a fast exit and is
//! retried through the same backoff, which rides out `TIME_WAIT` windows.
//!
//! On every membership change the supervisor rewrites the announce file
//! (one `name addr pid` line per **running** worker), which is how the
//! loopback suite finds the pid to kill and proves a respawn happened.
//! The supervisor returns when every worker is terminal (all done, or
//! given up on).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use minijson::{ObjBuilder, Value};
use ugs_server::LineClient;

/// One worker the supervisor owns: the command to run and the address the
/// worker serves on (empty disables ping probes for this worker).
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Display name (e.g. `shard-0`), used in logs and the announce file.
    pub name: String,
    /// The worker's fixed serve address; respawns re-bind it.  Empty
    /// means "no ping probes" (useful for non-server children in tests).
    pub addr: String,
    /// Program to launch.
    pub program: PathBuf,
    /// Arguments to the program.
    pub args: Vec<String>,
}

/// Knobs of one [`supervise`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Sleep between supervision passes.
    pub poll_interval: Duration,
    /// No ping probes until this long after a spawn (the worker is still
    /// loading its graph and binding).
    pub startup_grace: Duration,
    /// Interval between ping probes per worker; `None` disables probing
    /// (exit statuses are still watched).
    pub ping_interval: Option<Duration>,
    /// Connect/read bound of one ping probe.
    pub ping_timeout: Duration,
    /// Consecutive failed probes before a worker is declared wedged,
    /// killed and respawned.
    pub ping_failures: usize,
    /// Base respawn backoff; doubles per consecutive fast exit.
    pub backoff: Duration,
    /// Cap on the doubled backoff.
    pub max_backoff: Duration,
    /// Respawns per worker before the supervisor gives up on it.
    pub max_respawns: usize,
    /// An exit within this window of its spawn counts as a **fast exit**
    /// for the crash-loop detector.
    pub crash_loop_window: Duration,
    /// Consecutive fast exits that trip the crash-loop detector.
    pub crash_loop_limit: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            poll_interval: Duration::from_millis(25),
            startup_grace: Duration::from_secs(1),
            ping_interval: Some(Duration::from_millis(500)),
            ping_timeout: Duration::from_secs(2),
            ping_failures: 3,
            backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(5),
            max_respawns: 16,
            crash_loop_window: Duration::from_secs(2),
            crash_loop_limit: 4,
        }
    }
}

/// How one supervised worker ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// Exited with status 0 — a graceful stop, never respawned.
    Done,
    /// Tripped the crash-loop detector (consecutive fast exits).
    CrashLooping,
    /// Crashed more than [`SupervisorConfig::max_respawns`] times.
    RespawnsExhausted,
    /// The program could not be spawned at all.
    SpawnFailed(String),
}

impl WorkerOutcome {
    /// Wire/report spelling of the outcome.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerOutcome::Done => "done",
            WorkerOutcome::CrashLooping => "crash_looping",
            WorkerOutcome::RespawnsExhausted => "respawns_exhausted",
            WorkerOutcome::SpawnFailed(_) => "spawn_failed",
        }
    }
}

/// Final record of one supervised worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The spec's display name.
    pub name: String,
    /// The spec's serve address.
    pub addr: String,
    /// Respawns performed (0 for a worker that never crashed).
    pub respawns: usize,
    /// How the worker ended.
    pub outcome: WorkerOutcome,
}

/// What a [`supervise`] run did, one record per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Per-worker records, in spec order.
    pub workers: Vec<WorkerReport>,
}

impl SupervisorReport {
    /// Whether every worker stopped gracefully.
    pub fn all_done(&self) -> bool {
        self.workers
            .iter()
            .all(|worker| worker.outcome == WorkerOutcome::Done)
    }

    /// Renders the report as the JSON document `ugs supervise` prints.
    pub fn render(&self) -> Value {
        let workers = Value::Arr(
            self.workers
                .iter()
                .map(|worker| {
                    let mut builder = ObjBuilder::new()
                        .field("name", worker.name.as_str())
                        .field("addr", worker.addr.as_str())
                        .field("respawns", worker.respawns)
                        .field("outcome", worker.outcome.label());
                    if let WorkerOutcome::SpawnFailed(why) = &worker.outcome {
                        builder = builder.field("detail", why.as_str());
                    }
                    builder.build()
                })
                .collect(),
        );
        ObjBuilder::new().field("workers", workers).build()
    }
}

enum State {
    Waiting {
        until: Instant,
    },
    Running {
        child: Child,
        spawned: Instant,
        last_ping: Instant,
        ping_fails: usize,
    },
    Terminal(WorkerOutcome),
}

struct Slot {
    spec: WorkerSpec,
    state: State,
    respawns: usize,
    /// Consecutive fast exits (the crash-loop counter); resets on a slow
    /// exit or a ping-detected wedge.
    fast_exits: usize,
}

/// What one supervision pass decided for a slot.
enum Action {
    Nothing,
    Spawn,
    Done,
    Crashed { fast: bool, why: String },
}

/// One liveness probe: connect, ping, expect an ok envelope.
fn ping(addr: &str, timeout: Duration) -> bool {
    let Ok(mut client) = LineClient::connect_timeout(addr, timeout) else {
        return false;
    };
    if client.set_read_timeout(Some(timeout)).is_err()
        || client.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    match client.request("{\"op\": \"ping\"}") {
        Ok(response) => response.get_str("status") == Some("ok"),
        Err(_) => false,
    }
}

/// Launches and supervises `specs` until every worker is terminal; see the
/// [module docs](self) for the full model.  `announce` (when given) is
/// rewritten with one `name addr pid` line per running worker on every
/// membership change; `log` receives one human-readable line per event.
pub fn supervise(
    specs: Vec<WorkerSpec>,
    config: SupervisorConfig,
    announce: Option<&Path>,
    mut log: impl FnMut(&str),
) -> io::Result<SupervisorReport> {
    let now = Instant::now();
    let mut slots: Vec<Slot> = specs
        .into_iter()
        .map(|spec| Slot {
            spec,
            state: State::Waiting { until: now },
            respawns: 0,
            fast_exits: 0,
        })
        .collect();
    loop {
        let mut changed = false;
        for slot in &mut slots {
            step(slot, &config, &mut log, &mut changed)?;
        }
        if changed {
            write_announce(announce, &slots)?;
        }
        if slots
            .iter()
            .all(|slot| matches!(slot.state, State::Terminal(_)))
        {
            break;
        }
        std::thread::sleep(config.poll_interval);
    }
    Ok(SupervisorReport {
        workers: slots
            .into_iter()
            .map(|slot| {
                let outcome = match slot.state {
                    State::Terminal(outcome) => outcome,
                    _ => unreachable!("the loop exits only when all slots are terminal"),
                };
                WorkerReport {
                    name: slot.spec.name,
                    addr: slot.spec.addr,
                    respawns: slot.respawns,
                    outcome,
                }
            })
            .collect(),
    })
}

/// One supervision pass over one slot: observe, then transition.
fn step(
    slot: &mut Slot,
    config: &SupervisorConfig,
    log: &mut impl FnMut(&str),
    changed: &mut bool,
) -> io::Result<()> {
    let action = match &mut slot.state {
        State::Terminal(_) => Action::Nothing,
        State::Waiting { until } => {
            if Instant::now() >= *until {
                Action::Spawn
            } else {
                Action::Nothing
            }
        }
        State::Running {
            child,
            spawned,
            last_ping,
            ping_fails,
        } => match child.try_wait()? {
            Some(status) if status.success() => Action::Done,
            Some(status) => Action::Crashed {
                fast: spawned.elapsed() < config.crash_loop_window,
                why: describe_exit(status),
            },
            None => match config.ping_interval {
                Some(interval)
                    if !slot.spec.addr.is_empty()
                        && spawned.elapsed() >= config.startup_grace
                        && last_ping.elapsed() >= interval =>
                {
                    *last_ping = Instant::now();
                    if ping(&slot.spec.addr, config.ping_timeout) {
                        *ping_fails = 0;
                        Action::Nothing
                    } else {
                        *ping_fails += 1;
                        if *ping_fails >= config.ping_failures.max(1) {
                            // A wedged process is as dead as a gone one —
                            // but it is not crash-looping, it *started*.
                            let _ = child.kill();
                            let _ = child.wait();
                            slot.fast_exits = 0;
                            Action::Crashed {
                                fast: false,
                                why: format!(
                                    "stopped answering pings ({} consecutive failures)",
                                    config.ping_failures.max(1)
                                ),
                            }
                        } else {
                            Action::Nothing
                        }
                    }
                }
                _ => Action::Nothing,
            },
        },
    };
    match action {
        Action::Nothing => {}
        Action::Spawn => {
            *changed = true;
            // Workers keep stderr (their logs interleave with the
            // supervisor's) but never the supervisor's stdin/stdout: the
            // supervisor's own stdout carries its report.
            let spawned = Command::new(&slot.spec.program)
                .args(&slot.spec.args)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn();
            match spawned {
                Ok(child) => {
                    log(&format!(
                        "supervisor: {} running as pid {} at {}",
                        slot.spec.name,
                        child.id(),
                        slot.spec.addr
                    ));
                    let now = Instant::now();
                    slot.state = State::Running {
                        child,
                        spawned: now,
                        last_ping: now,
                        ping_fails: 0,
                    };
                }
                Err(error) => {
                    log(&format!(
                        "supervisor: {} failed to spawn: {error}",
                        slot.spec.name
                    ));
                    slot.state = State::Terminal(WorkerOutcome::SpawnFailed(error.to_string()));
                }
            }
        }
        Action::Done => {
            *changed = true;
            log(&format!(
                "supervisor: {} stopped gracefully",
                slot.spec.name
            ));
            slot.state = State::Terminal(WorkerOutcome::Done);
        }
        Action::Crashed { fast, why } => {
            *changed = true;
            slot.fast_exits = if fast { slot.fast_exits + 1 } else { 0 };
            if slot.fast_exits >= config.crash_loop_limit.max(1) {
                log(&format!(
                    "supervisor: {} is crash-looping ({} fast exits): {why}",
                    slot.spec.name, slot.fast_exits
                ));
                slot.state = State::Terminal(WorkerOutcome::CrashLooping);
            } else if slot.respawns >= config.max_respawns {
                log(&format!(
                    "supervisor: {} out of respawns ({}): {why}",
                    slot.spec.name, slot.respawns
                ));
                slot.state = State::Terminal(WorkerOutcome::RespawnsExhausted);
            } else {
                slot.respawns += 1;
                let doubled = config
                    .backoff
                    .saturating_mul(1 << slot.fast_exits.min(6) as u32);
                let backoff = doubled.min(config.max_backoff.max(config.backoff));
                log(&format!(
                    "supervisor: {} {why}; respawn {} in {backoff:?}",
                    slot.spec.name, slot.respawns
                ));
                slot.state = State::Waiting {
                    until: Instant::now() + backoff,
                };
            }
        }
    }
    Ok(())
}

fn describe_exit(status: ExitStatus) -> String {
    format!("exited with {status}")
}

/// Rewrites the announce file: one `name addr pid` line per running
/// worker, written to a temp file and renamed so a concurrent reader never
/// sees a torn write.
fn write_announce(path: Option<&Path>, slots: &[Slot]) -> io::Result<()> {
    let Some(path) = path else { return Ok(()) };
    let mut content = String::new();
    for slot in slots {
        if let State::Running { child, .. } = &slot.state {
            content.push_str(&format!(
                "{} {} {}\n",
                slot.spec.name,
                slot.spec.addr,
                child.id()
            ));
        }
    }
    let tmp = path.with_extension("announce-tmp");
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(name: &str, script: &str) -> WorkerSpec {
        WorkerSpec {
            name: name.to_string(),
            addr: String::new(),
            program: PathBuf::from("sh"),
            args: vec!["-c".to_string(), script.to_string()],
        }
    }

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            poll_interval: Duration::from_millis(5),
            startup_grace: Duration::from_millis(50),
            ping_interval: None,
            ping_timeout: Duration::from_millis(200),
            ping_failures: 2,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            max_respawns: 8,
            crash_loop_window: Duration::from_millis(500),
            crash_loop_limit: 3,
        }
    }

    #[test]
    fn a_graceful_exit_is_done_and_never_respawned() {
        let report = supervise(vec![sh("ok", "true")], quick_config(), None, |_| {}).unwrap();
        assert_eq!(report.workers[0].outcome, WorkerOutcome::Done);
        assert_eq!(report.workers[0].respawns, 0);
        assert!(report.all_done());
    }

    #[test]
    fn consecutive_fast_exits_trip_the_crash_loop_detector_in_bounded_time() {
        let started = Instant::now();
        let report = supervise(vec![sh("boom", "exit 3")], quick_config(), None, |_| {}).unwrap();
        assert_eq!(report.workers[0].outcome, WorkerOutcome::CrashLooping);
        // crash_loop_limit fast exits = limit - 1 respawns before giving up.
        assert_eq!(report.workers[0].respawns, 2);
        assert!(!report.all_done());
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "crash loops must resolve quickly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn a_crashed_worker_is_respawned_and_can_finish_gracefully() {
        let marker =
            std::env::temp_dir().join(format!("ugs-supervisor-flaky-{}", std::process::id()));
        let _ = fs::remove_file(&marker);
        let script = format!(
            "if [ -e {m} ]; then exit 0; else : > {m}; exit 1; fi",
            m = marker.display()
        );
        let report = supervise(vec![sh("flaky", &script)], quick_config(), None, |_| {}).unwrap();
        let _ = fs::remove_file(&marker);
        assert_eq!(report.workers[0].outcome, WorkerOutcome::Done);
        assert_eq!(report.workers[0].respawns, 1);
    }

    #[test]
    fn an_unspawnable_program_is_a_typed_terminal_outcome() {
        let spec = WorkerSpec {
            name: "ghost".to_string(),
            addr: String::new(),
            program: PathBuf::from("/nonexistent/definitely-missing-binary"),
            args: Vec::new(),
        };
        let report = supervise(vec![spec], quick_config(), None, |_| {}).unwrap();
        match &report.workers[0].outcome {
            WorkerOutcome::SpawnFailed(_) => {}
            other => panic!("expected SpawnFailed, got {other:?}"),
        }
        assert_eq!(report.workers[0].outcome.label(), "spawn_failed");
    }

    #[test]
    fn a_worker_that_never_answers_pings_is_killed_and_bounded() {
        let mut config = quick_config();
        config.ping_interval = Some(Duration::from_millis(20));
        config.max_respawns = 2;
        // The child runs but nothing serves its address: every probe fails.
        let mut spec = sh("wedged", "sleep 30");
        spec.addr = "127.0.0.1:1".to_string();
        let started = Instant::now();
        let report = supervise(vec![spec], config, None, |_| {}).unwrap();
        assert_eq!(report.workers[0].outcome, WorkerOutcome::RespawnsExhausted);
        assert_eq!(report.workers[0].respawns, 2);
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "ping-detected wedges must resolve in bounded time, took {:?}",
            started.elapsed()
        );
    }
}
