//! The boundary-exchange coordinator: drives a fleet of `ugs serve --shard`
//! worker processes through one [`QueryPlan`], glues their per-world
//! boundary messages into global answers, and degrades to typed errors —
//! never a hang — when workers die.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use minijson::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_queries::boundary::{glue_records, GluedWorld, ShardWorldRecord};
use ugs_queries::variance::{Precision, StoppingRule};
use ugs_server::protocol::DEFAULT_BOUNDARY_PAGE;
use ugs_server::LineClient;
use ugs_service::{
    mode_name, QueryAnswer, QueryPlan, QueryResult, QuerySpec, ResultTicket, ServiceError,
    SpecError,
};
use uncertain_graph::{GraphPartition, UncertainGraph};

use crate::fault::{FaultClock, FaultKind, FaultPlan};
use crate::merge::{block_owner, ConnAccumulator, FreqAccumulator, HistAccumulator};
use crate::recovery::{Failover, RecoveryReport, StandbyPool};

/// One shard's `(degree_histogram, intra_edge_presence)` cross-world
/// aggregates, as returned by `shard_result`.
type ShardAggregates = (Vec<u64>, Vec<u64>);

/// Failure-model knobs of a [`DistCoordinator`].
///
/// Every worker exchange runs under `timeout` (read *and* write), a failed
/// exchange is retried up to `retries` times per worker per plan by
/// reconnecting and resubmitting (the fresh job deterministically resamples
/// the identical world stream), and a worker whose sampling position stops
/// advancing for `stale_after` while the coordinator still needs its records
/// is treated as lost.  When a worker's retry budget runs dry the
/// coordinator **fails over**: the first `standbys` address that validates
/// (same graph fingerprint, the lost shard's role) is promoted, consuming
/// it from the pool and re-arming the shard's retry budget — so the
/// worst-case wait stays bounded by `(standbys + 1) × (retries + 1)`
/// exchanges per shard per plan.  Only when no standby validates does the
/// plan degrade to [`ServiceError::WorkerLost`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Per-request socket timeout, both directions (and the connect bound).
    pub timeout: Duration,
    /// Reconnect-and-resubmit attempts per worker per plan before the
    /// shard fails over (or, with no standby left, the plan degrades to
    /// [`ServiceError::WorkerLost`]).
    pub retries: usize,
    /// How long a worker's `pos` may sit still (while records are needed)
    /// before the stale-worker detector burns one retry.
    pub stale_after: Duration,
    /// Sleep between progress probes when no worker has new records.
    pub poll_interval: Duration,
    /// Sleep after a failed exchange before the reconnect attempt — gives
    /// a supervisor's respawn (or a restarting host) time to re-bind
    /// instead of burning the whole retry budget in microseconds.
    pub reconnect_backoff: Duration,
    /// Standby worker addresses for failover; see [`crate::recovery`].
    /// Every standby must serve the same graph; its shard role is
    /// validated at promotion time.
    pub standbys: Vec<String>,
    /// Test/bench-only seeded fault injection over the coordinator's
    /// request path; see [`crate::fault`].  `None` (the default) sends
    /// every exchange faithfully.
    pub faults: Option<FaultPlan>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            timeout: Duration::from_secs(10),
            retries: 2,
            stale_after: Duration::from_secs(30),
            poll_interval: Duration::from_millis(1),
            reconnect_backoff: Duration::from_millis(25),
            standbys: Vec::new(),
            faults: None,
        }
    }
}

/// The immutable identity of one in-flight distributed sampling job: a
/// resubmission (after a reconnect, or to raise an adaptive target) must
/// repeat every field except the world target.
#[derive(Debug, Clone)]
struct JobParams {
    token: String,
    seed: u64,
    mode: &'static str,
    target: usize,
}

/// One shard worker: its address, its (possibly dropped) connection, and
/// the pager state of the current job.
struct Worker {
    addr: String,
    client: Option<LineClient>,
    retries_left: usize,
    /// Boundary records received so far for the current job (consumed ones
    /// plus the buffered tail) — the `from` cursor of the next page.
    received: usize,
    buffer: VecDeque<ShardWorldRecord>,
    /// Worker-reported sampling position, for the stale detector.
    last_pos: usize,
    last_gain: Instant,
}

/// Coordinator-side accumulator for one validated query of the plan.
enum Slot {
    Connectivity(ConnAccumulator),
    DegreeHistogram(HistAccumulator),
    EdgeFrequency(FreqAccumulator),
}

impl Slot {
    fn for_spec(spec: &QuerySpec, graph: &UncertainGraph, blocks: usize) -> Slot {
        match spec {
            QuerySpec::Connectivity => {
                Slot::Connectivity(ConnAccumulator::new(graph.num_vertices(), blocks))
            }
            QuerySpec::DegreeHistogram => Slot::DegreeHistogram(HistAccumulator::new(graph)),
            QuerySpec::EdgeFrequency => {
                Slot::EdgeFrequency(FreqAccumulator::new(graph.num_edges()))
            }
            other => unreachable!("spec {} has no distributed slot", other.kind()),
        }
    }

    fn tracked_range(&self) -> Option<(f64, f64)> {
        match self {
            Slot::Connectivity(acc) => acc.tracked_range(),
            Slot::EdgeFrequency(acc) => acc.tracked_range(),
            Slot::DegreeHistogram(_) => None,
        }
    }

    /// The per-world increments of the matching observer.
    fn observe(&mut self, block: usize, partition: &GraphPartition, world: &GluedWorld) {
        match self {
            Slot::Connectivity(acc) => acc.observe(block, world),
            Slot::EdgeFrequency(acc) => acc.observe(partition, world),
            Slot::DegreeHistogram(_) => {} // filled from worker aggregates
        }
    }

    /// The tracked statistic of the world just observed — the same scalar
    /// the in-process observer hands the stopping rule.
    fn statistic(&self, world: &GluedWorld, records: &[ShardWorldRecord], num_edges: usize) -> f64 {
        match self {
            Slot::Connectivity(_) => f64::from(world.num_components == 1),
            Slot::EdgeFrequency(_) => {
                let present: usize = records
                    .iter()
                    .map(|record| record.intra_present as usize)
                    .sum::<usize>()
                    + world.present_cuts.len();
                present as f64 / num_edges as f64
            }
            Slot::DegreeHistogram(_) => unreachable!("degree histogram is untracked"),
        }
    }

    fn finalize(self, num_worlds: usize) -> QueryResult {
        match self {
            Slot::Connectivity(acc) => QueryResult::Connectivity(acc.finalize(num_worlds)),
            Slot::DegreeHistogram(acc) => QueryResult::DegreeHistogram(acc.finalize(num_worlds)),
            Slot::EdgeFrequency(acc) => QueryResult::EdgeFrequency(acc.finalize(num_worlds)),
        }
    }
}

/// Drives a fleet of shard workers through [`QueryPlan`]s, resolving each
/// plan **bit-identically** to an in-process run of the same plan.
///
/// See the [crate docs](crate) for the protocol, the parity argument and
/// the failure model.
pub struct DistCoordinator {
    graph: Arc<UncertainGraph>,
    partition: Arc<GraphPartition>,
    config: CoordinatorConfig,
    workers: Vec<Worker>,
    standbys: StandbyPool,
    faults: Option<FaultClock>,
    recovery: RecoveryReport,
    fingerprint: u64,
    next_token: u64,
    job: Option<JobParams>,
}

impl DistCoordinator {
    /// Connects to one worker per shard (worker `k` must serve shard `k` of
    /// `addrs.len()`), validating that every worker serves the same graph
    /// (by fingerprint) under the matching shard role.
    ///
    /// Fails with [`ServiceError::Policy`] when the graph cannot be
    /// partitioned into `addrs.len()` shards, and with
    /// [`ServiceError::WorkerLost`] when a worker is unreachable or
    /// mis-configured.
    pub fn connect(
        graph: impl Into<Arc<UncertainGraph>>,
        addrs: &[impl ToString],
        config: CoordinatorConfig,
    ) -> Result<DistCoordinator, ServiceError> {
        let graph = graph.into();
        if addrs.is_empty() {
            return Err(ServiceError::Policy(
                "a distributed coordinator needs at least one worker address".to_string(),
            ));
        }
        let partition = GraphPartition::contiguous(&graph, addrs.len())
            .map_err(|error| ServiceError::Policy(error.to_string()))?;
        let fingerprint = graph.fingerprint();
        let retries = config.retries;
        let standbys = StandbyPool::new(config.standbys.clone());
        let faults = config
            .faults
            .clone()
            .filter(|plan| !plan.is_empty())
            .map(FaultClock::new);
        let mut coordinator = DistCoordinator {
            graph,
            partition: Arc::new(partition),
            workers: addrs
                .iter()
                .map(|addr| Worker {
                    addr: addr.to_string(),
                    client: None,
                    retries_left: retries,
                    received: 0,
                    buffer: VecDeque::new(),
                    last_pos: 0,
                    last_gain: Instant::now(),
                })
                .collect(),
            standbys,
            faults,
            recovery: RecoveryReport::default(),
            config,
            fingerprint,
            next_token: 0,
            job: None,
        };
        for k in 0..coordinator.workers.len() {
            // A worker that is dead or mis-configured at connect fails over
            // immediately (promotion validates a standby); only an empty or
            // exhausted pool degrades to the typed error.
            match coordinator.open_client(k) {
                Ok(client) => coordinator.workers[k].client = Some(client),
                Err(why) => coordinator.promote(k, why)?,
            }
        }
        Ok(coordinator)
    }

    /// Number of shard workers (= shards of the partition).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative recovery activity — retries burned and standby
    /// promotions — across this coordinator's lifetime.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Standby addresses not yet consumed by a promotion.
    pub fn standbys_left(&self) -> usize {
        self.standbys.len()
    }

    /// The fingerprint of the coordinated graph.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The graph label every report carries (same rendering as the server's).
    pub fn graph_label(&self) -> String {
        format!("fingerprint:{:016x}", self.fingerprint)
    }

    /// Executes a plan across the fleet; one outcome per query, in plan
    /// order.  Bit-identical to `plan.execute_detailed(graph)` for the
    /// distributed-aggregate queries (`connectivity`, `degree_histogram`,
    /// `edge_frequency`); any other query resolves with the typed
    /// [`SpecError::Unsupported`] — the boundary messages carry no
    /// per-vertex state to aggregate it from.
    pub fn execute(&mut self, plan: &QueryPlan) -> Vec<Result<QueryAnswer, ServiceError>> {
        let shards = self.workers.len();
        // Per-query validation, mirroring the in-process scheduler's flush:
        // invalid queries resolve individually, the valid remainder runs.
        let mut slots: Vec<Slot> = Vec::new();
        let worlds = plan.worlds;
        let cap = match plan.precision {
            Some(precision) => precision.cap(worlds),
            None => worlds,
        };
        let blocks = plan.threads.max(1).clamp(1, cap.max(1));
        let placed: Vec<Result<(), ServiceError>> = plan
            .queries
            .iter()
            .map(|spec| {
                spec.validate_sharded(&self.graph, shards)
                    .and_then(|()| match spec {
                        QuerySpec::Connectivity
                        | QuerySpec::DegreeHistogram
                        | QuerySpec::EdgeFrequency => Ok(()),
                        other => Err(SpecError::Unsupported {
                            query: other.kind().to_string(),
                            shards,
                        }),
                    })
                    .map(|()| slots.push(Slot::for_spec(spec, &self.graph, blocks)))
                    .map_err(ServiceError::Spec)
            })
            .collect();
        if slots.is_empty() {
            return placed
                .into_iter()
                .map(|entry| entry.map(|()| unreachable!("no valid slots")))
                .collect();
        }
        let run = self.run_valid(plan, &mut slots, blocks, cap);
        let (worlds_used, half_width) = match run {
            Ok(outcome) => outcome,
            Err(error) => {
                self.job = None;
                return placed
                    .into_iter()
                    .map(|entry| entry.and(Err(error.clone())))
                    .collect();
            }
        };
        let mut finished = slots.into_iter();
        placed
            .into_iter()
            .map(|entry| {
                entry.map(|()| QueryAnswer {
                    result: finished
                        .next()
                        .expect("one finished slot per valid query")
                        .finalize(worlds_used),
                    worlds_used,
                    half_width,
                })
            })
            .collect()
    }

    /// Like [`DistCoordinator::execute`], but hands back one
    /// [`ResultTicket`] per query through the external-executor seam
    /// ([`ResultTicket::pending`]) — the surface a service embeds when it
    /// offloads plans to a fleet.
    pub fn execute_ticketed(&mut self, plan: &QueryPlan) -> Vec<ResultTicket> {
        self.execute(plan)
            .into_iter()
            .map(|outcome| {
                let (reply, ticket) = ResultTicket::pending();
                let _ = reply.send(outcome);
                ticket
            })
            .collect()
    }

    /// Executes the plan and renders the same report envelope
    /// [`QueryPlan::run_report`] prints for an in-process run, with the
    /// graph labelled by fingerprint (byte-identical answers yield
    /// byte-identical reports).
    pub fn run_report(&mut self, plan: &QueryPlan) -> Value {
        let results = self.execute(plan);
        plan.report_for(&self.graph_label(), &results)
    }

    /// Drops every worker connection; the workers' sampler threads stop and
    /// join as their connections close.  (Dropping the coordinator does the
    /// same — this is the explicit spelling.)
    pub fn shutdown(self) {}

    /// Runs the sampling for the plan's valid queries; returns
    /// `(worlds_used, half_width)`.
    fn run_valid(
        &mut self,
        plan: &QueryPlan,
        slots: &mut [Slot],
        blocks: usize,
        cap: usize,
    ) -> Result<(usize, Option<f64>), ServiceError> {
        let worlds = plan.worlds;
        if worlds == 0 {
            // Pristine finalize: no batch seed is drawn, no job started —
            // mirrors the in-process scheduler's zero-world short-circuit.
            return Ok((0, None));
        }
        // The in-process plan runs as one micro-batch of a fresh service
        // stream: the batch seed is the stream's first draw.
        let seed = SmallRng::seed_from_u64(plan.seed).gen::<u64>();
        let mode = mode_name(plan.mode);
        match &plan.precision {
            None => {
                self.start_job(seed, mode, worlds)?;
                let partition = Arc::clone(&self.partition);
                self.pump(0, worlds, |world, glued, _records| {
                    let owner = block_owner(world, worlds, blocks);
                    for slot in slots.iter_mut() {
                        slot.observe(owner, &partition, glued);
                    }
                    Ok(())
                })?;
                self.finish_job(slots, worlds)?;
                Ok((worlds, None))
            }
            Some(precision) => self.run_adaptive(seed, mode, precision, slots, blocks, cap),
        }
    }

    /// The adaptive epoch loop, replicating `drive_adaptive` exactly: same
    /// stopping rule, same per-world record order, same check order at each
    /// epoch barrier — so `worlds_used` and `half_width` match the
    /// in-process run bitwise.
    fn run_adaptive(
        &mut self,
        seed: u64,
        mode: &'static str,
        precision: &Precision,
        slots: &mut [Slot],
        blocks: usize,
        cap: usize,
    ) -> Result<(usize, Option<f64>), ServiceError> {
        let mut rule = StoppingRule::new(*precision);
        let tracked: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.tracked_range().map(|(lo, hi)| (i, lo, hi)))
            .map(|(i, lo, hi)| {
                rule.register(lo, hi);
                i
            })
            .collect();
        if cap == 0 {
            return Ok((0, Some(f64::INFINITY)));
        }
        let epoch = precision.epoch.max(1);
        let started = Instant::now();
        if rule.deadline_expired(started) {
            return Ok((0, Some(f64::INFINITY)));
        }
        self.start_job(seed, mode, 0)?;
        let partition = Arc::clone(&self.partition);
        let num_edges = self.graph.num_edges();
        let mut consumed = 0usize;
        loop {
            let block = epoch.min(cap - consumed);
            self.raise_target(consumed + block)?;
            let epoch_start = consumed;
            self.pump(consumed, consumed + block, |world, glued, records| {
                let owner = block_owner(world - epoch_start, block, blocks);
                for slot in slots.iter_mut() {
                    slot.observe(owner, &partition, glued);
                }
                for (s, &i) in tracked.iter().enumerate() {
                    rule.record(s, slots[i].statistic(glued, records, num_edges));
                }
                Ok(())
            })?;
            consumed += block;
            // Same verdict order as the in-process checkpoint: convergence,
            // then budget, then deadline — a deadline can only shorten a
            // run, never change a converged answer.
            if rule.check() || consumed >= cap || rule.deadline_expired(started) {
                break;
            }
        }
        self.finish_job(slots, consumed)?;
        Ok((consumed, Some(rule.half_width())))
    }

    /// Collects every worker's cross-world aggregates for the finished job
    /// and folds them into the slots.
    fn finish_job(&mut self, slots: &mut [Slot], target: usize) -> Result<(), ServiceError> {
        let aggregates = self.collect_aggregates(target)?;
        for (k, (hist, intra)) in aggregates.iter().enumerate() {
            let shard = self.partition.shard(k);
            for slot in slots.iter_mut() {
                let folded = match slot {
                    Slot::DegreeHistogram(acc) => acc.add_worker(hist),
                    Slot::EdgeFrequency(acc) => acc.add_intra(shard, intra),
                    Slot::Connectivity(_) => Ok(()),
                };
                folded.map_err(|why| {
                    ServiceError::Internal(format!("shard {k} aggregates rejected: {why}"))
                })?;
            }
        }
        self.job = None;
        Ok(())
    }

    /// Pings every worker once through the ordinary retry/reconnect/
    /// failover path.  Runs **before** a plan fans out, while no job is in
    /// flight, so a dead-at-connect worker is detected — and failed over —
    /// before any shard work starts instead of surfacing as a mid-plan
    /// timeout.
    fn probe_fleet(&mut self) -> Result<(), ServiceError> {
        debug_assert!(self.job.is_none(), "probe with a job in flight");
        for k in 0..self.workers.len() {
            self.request_worker(k, "{\"op\": \"ping\"}")?;
        }
        Ok(())
    }

    /// Starts a fresh sampling job on every worker under a new token,
    /// resetting all pager state and re-arming the retry budgets.
    fn start_job(
        &mut self,
        seed: u64,
        mode: &'static str,
        target: usize,
    ) -> Result<(), ServiceError> {
        self.probe_fleet()?;
        let token = format!("plan-{}", self.next_token);
        self.next_token += 1;
        self.job = Some(JobParams {
            token,
            seed,
            mode,
            target,
        });
        let now = Instant::now();
        for worker in &mut self.workers {
            worker.retries_left = self.config.retries;
            worker.received = 0;
            worker.buffer.clear();
            worker.last_pos = 0;
            worker.last_gain = now;
        }
        for k in 0..self.workers.len() {
            let line = self.submit_line(k);
            // Idempotent: the reconnect path may already have resubmitted —
            // a matching resubmission just re-raises the same target.
            self.request_worker(k, &line)?;
        }
        Ok(())
    }

    /// Raises every worker's world target for the in-flight job (the
    /// adaptive per-epoch extension).
    fn raise_target(&mut self, target: usize) -> Result<(), ServiceError> {
        self.job
            .as_mut()
            .expect("raise_target outside a job")
            .target = target;
        for k in 0..self.workers.len() {
            let line = self.submit_line(k);
            self.request_worker(k, &line)?;
        }
        Ok(())
    }

    /// The `shard_submit` request line for worker `k` and the current job.
    fn submit_line(&self, k: usize) -> String {
        let job = self.job.as_ref().expect("submit_line outside a job");
        format!(
            "{{\"op\": \"shard_submit\", \"job\": \"{}\", \"shard\": {}, \"shards\": {}, \
             \"worlds\": {}, \"seed\": \"{}\", \"mode\": \"{}\"}}",
            job.token,
            k,
            self.workers.len(),
            job.target,
            job.seed,
            job.mode
        )
    }

    /// Glues worlds `from..upto` in world order, invoking `on_world` for
    /// each: pages boundary records from every worker, buffers them, and
    /// glues a world as soon as all shards have reported it.  Applies the
    /// stale-worker detector whenever a pass makes no progress.
    fn pump<F>(&mut self, from: usize, upto: usize, mut on_world: F) -> Result<(), ServiceError>
    where
        F: FnMut(usize, &GluedWorld, &[ShardWorldRecord]) -> Result<(), ServiceError>,
    {
        let shards = self.workers.len();
        let mut next_world = from;
        let mut records: Vec<ShardWorldRecord> = Vec::with_capacity(shards);
        while next_world < upto {
            let mut progressed = false;
            for k in 0..shards {
                let needed = upto - self.workers[k].received;
                if needed == 0 {
                    continue;
                }
                let gained = self.page_records(k, needed.min(DEFAULT_BOUNDARY_PAGE))?;
                progressed |= gained > 0;
            }
            while next_world < upto && self.workers.iter().all(|w| !w.buffer.is_empty()) {
                records.clear();
                for worker in &mut self.workers {
                    records.push(worker.buffer.pop_front().expect("checked non-empty"));
                }
                let glued = glue_records(&self.partition, &records).map_err(|why| {
                    ServiceError::Internal(format!("glue failed at world {next_world}: {why}"))
                })?;
                on_world(next_world, &glued, &records)?;
                next_world += 1;
                progressed = true;
            }
            if !progressed {
                self.check_stale(upto)?;
                std::thread::sleep(self.config.poll_interval);
            }
        }
        Ok(())
    }

    /// Requests one page of boundary records from worker `k`; returns how
    /// many records arrived (possibly zero while the worker still samples).
    fn page_records(&mut self, k: usize, max: usize) -> Result<usize, ServiceError> {
        let job = self.job.as_ref().expect("page_records outside a job");
        let line = format!(
            "{{\"op\": \"boundary\", \"job\": \"{}\", \"from\": {}, \"max\": {}}}",
            job.token, self.workers[k].received, max
        );
        let response = self.request_worker(k, &line)?;
        let parsed: Result<Vec<ShardWorldRecord>, String> =
            match response.get("records").and_then(Value::as_array) {
                None => Err("boundary response without records".to_string()),
                Some(entries) => entries
                    .iter()
                    .map(|entry| {
                        entry
                            .as_str()
                            .ok_or_else(|| "non-string boundary record".to_string())
                            .and_then(ShardWorldRecord::decode)
                    })
                    .collect(),
            };
        let decoded = match parsed {
            Ok(decoded) => decoded,
            Err(why) => {
                // Transport-level corruption: burn a retry and re-page.
                self.fail_worker(k, &why)?;
                return Ok(0);
            }
        };
        let gained = decoded.len();
        let worker = &mut self.workers[k];
        worker.received += gained;
        worker.buffer.extend(decoded);
        let pos = response.get_usize("pos").unwrap_or(worker.last_pos);
        if gained > 0 || pos > worker.last_pos {
            worker.last_pos = pos.max(worker.last_pos);
            worker.last_gain = Instant::now();
        }
        Ok(gained)
    }

    /// Burns a retry on every worker whose sampling position has sat still
    /// beyond the stale window while records are still owed.
    fn check_stale(&mut self, upto: usize) -> Result<(), ServiceError> {
        for k in 0..self.workers.len() {
            if self.workers[k].received < upto
                && self.workers[k].last_gain.elapsed() > self.config.stale_after
            {
                self.fail_worker(k, "sampling position stopped advancing")?;
            }
        }
        Ok(())
    }

    /// Polls every worker's `shard_result` until done, returning each
    /// shard's `(hist, intra)` cross-world aggregates.
    fn collect_aggregates(&mut self, target: usize) -> Result<Vec<ShardAggregates>, ServiceError> {
        let token = self
            .job
            .as_ref()
            .expect("collect_aggregates outside a job")
            .token
            .clone();
        let line = format!("{{\"op\": \"shard_result\", \"job\": \"{token}\"}}");
        let mut aggregates = Vec::with_capacity(self.workers.len());
        for k in 0..self.workers.len() {
            loop {
                let response = self.request_worker(k, &line)?;
                if response.get("done").and_then(Value::as_bool) == Some(true) {
                    let worlds = response.get_usize("worlds");
                    if worlds != Some(target) {
                        self.fail_worker(
                            k,
                            &format!("aggregates cover {worlds:?} worlds, expected {target}"),
                        )?;
                        continue;
                    }
                    match (
                        u64_array(response.get("hist")),
                        u64_array(response.get("intra")),
                    ) {
                        (Some(hist), Some(intra)) => {
                            aggregates.push((hist, intra));
                            break;
                        }
                        _ => {
                            self.fail_worker(k, "malformed aggregate arrays")?;
                            continue;
                        }
                    }
                }
                let pos = response.get_usize("pos").unwrap_or(0);
                let worker = &mut self.workers[k];
                if pos > worker.last_pos {
                    worker.last_pos = pos;
                    worker.last_gain = Instant::now();
                } else if worker.last_gain.elapsed() > self.config.stale_after {
                    self.fail_worker(k, "stalled before finishing its aggregates")?;
                    continue;
                }
                std::thread::sleep(self.config.poll_interval);
            }
        }
        Ok(aggregates)
    }

    /// Sends one request to worker `k`, transparently reconnecting,
    /// re-validating and resubmitting the in-flight job after a failure.
    /// Every failure burns one bounded retry; exhaustion degrades to
    /// [`ServiceError::WorkerLost`].
    fn request_worker(&mut self, k: usize, line: &str) -> Result<Value, ServiceError> {
        loop {
            if self.workers[k].client.is_none() {
                match self.open_client(k) {
                    Ok(client) => {
                        self.workers[k].client = Some(client);
                        self.workers[k].last_gain = Instant::now();
                        if self.job.is_some() {
                            let submit = self.submit_line(k);
                            let resubmitted = self.raw_request(k, &submit);
                            if let Err(why) = resubmitted {
                                self.fail_worker(k, &why)?;
                                continue;
                            }
                        }
                    }
                    Err(why) => {
                        self.fail_worker(k, &why)?;
                        continue;
                    }
                }
            }
            match self.raw_request(k, line) {
                Ok(value) => return Ok(value),
                Err(why) => self.fail_worker(k, &why)?,
            }
        }
    }

    /// One request on the live connection; any transport error or error
    /// envelope comes back as a message (no retry logic here).  This is
    /// also the coordinator-side fault injection seam: an armed
    /// [`CoordinatorConfig::faults`] clock ticks once per call and may
    /// misbehave instead — every injected failure then flows through the
    /// ordinary retry/failover model like a real one.
    fn raw_request(&mut self, k: usize, line: &str) -> Result<Value, String> {
        let line = match crate::fault::verdict(self.faults.as_ref()) {
            None => line,
            Some(FaultKind::Delay) => {
                let delay = self.faults.as_ref().expect("delay needs a clock").delay();
                std::thread::sleep(delay);
                line
            }
            Some(FaultKind::Drop) => {
                self.workers[k].client = None;
                return Err("injected fault: request dropped".to_string());
            }
            Some(FaultKind::Disconnect) => {
                self.workers[k].client = None;
                return Err("injected fault: connection torn down".to_string());
            }
            // The worker answers a garbled request with a typed
            // `bad_request` — reported below like any error envelope.
            Some(FaultKind::Garble) => "#!garbled<injected-request>",
        };
        let client = self.workers[k]
            .client
            .as_mut()
            .ok_or_else(|| "connection closed".to_string())?;
        let response = client.request(line).map_err(|error| error.to_string())?;
        if response.get_str("status") == Some("ok") {
            Ok(response)
        } else {
            Err(format!("worker answered {}", response.render()))
        }
    }

    /// Records one failed exchange with worker `k`: drops its connection
    /// (the next request reconnects and resubmits) and burns one retry;
    /// an exhausted budget fails the shard over to a standby, and only
    /// when no standby validates does the plan degrade to the typed
    /// [`ServiceError::WorkerLost`].
    fn fail_worker(&mut self, k: usize, why: &str) -> Result<(), ServiceError> {
        let worker = &mut self.workers[k];
        worker.client = None;
        if worker.retries_left == 0 {
            let exhausted = format!(
                "shard {k} worker at {}: {why} (retries exhausted)",
                worker.addr
            );
            return self.promote(k, exhausted);
        }
        worker.retries_left -= 1;
        worker.last_gain = Instant::now();
        self.recovery.retries_burned += 1;
        if !self.config.reconnect_backoff.is_zero() {
            std::thread::sleep(self.config.reconnect_backoff);
        }
        Ok(())
    }

    /// Fails shard `k` over to the first standby that validates: the
    /// candidate must serve the same graph under shard `k`'s role, and the
    /// in-flight job (if any) is resubmitted to it before it takes over —
    /// the job deterministically resamples the identical world stream from
    /// world 0, and the pager's `received` cursor keeps gluing exactly
    /// where it stopped, so recovered answers stay bit-identical (see
    /// [`crate::recovery`]).  A promoted (or failed) candidate is consumed
    /// from the pool; promotion re-arms the shard's retry budget.
    ///
    /// `trail` carries the failure story so far; candidates that do not
    /// validate append to it, and the terminal
    /// [`ServiceError::WorkerLost`] reports the whole chain.
    fn promote(&mut self, k: usize, trail: String) -> Result<(), ServiceError> {
        let mut trail = trail;
        for addr in self.standbys.candidates() {
            self.standbys.remove(&addr);
            let mut client = match self.open_client_to(k, &addr) {
                Ok(client) => client,
                Err(why) => {
                    trail = format!("{trail}; standby {why}");
                    continue;
                }
            };
            if self.job.is_some() {
                let submit = self.submit_line(k);
                let resubmitted = client
                    .request(&submit)
                    .map_err(|error| error.to_string())
                    .and_then(|response| {
                        if response.get_str("status") == Some("ok") {
                            Ok(())
                        } else {
                            Err(format!("answered {}", response.render()))
                        }
                    });
                if let Err(why) = resubmitted {
                    trail = format!("{trail}; standby at {addr} rejected the resubmission: {why}");
                    continue;
                }
            }
            let retries = self.config.retries;
            let worker = &mut self.workers[k];
            let from = std::mem::replace(&mut worker.addr, addr.clone());
            worker.client = Some(client);
            worker.retries_left = retries;
            worker.last_gain = Instant::now();
            self.recovery.failovers.push(Failover {
                shard: k,
                from,
                to: addr,
            });
            return Ok(());
        }
        Err(ServiceError::WorkerLost(trail))
    }

    /// Opens and validates a connection to worker `k`'s current address.
    fn open_client(&self, k: usize) -> Result<LineClient, String> {
        let addr = self.workers[k].addr.clone();
        self.open_client_to(k, &addr)
    }

    /// Opens and validates a connection for shard `k` at `addr`: connect
    /// bounded by the timeout, timeouts armed both directions, graph
    /// fingerprint and shard role checked via `stats`.
    fn open_client_to(&self, k: usize, addr: &str) -> Result<LineClient, String> {
        let describe = |why: String| format!("shard {k} worker at {addr}: {why}");
        let mut client = LineClient::connect_timeout(addr, self.config.timeout)
            .map_err(|error| describe(error.to_string()))?;
        client
            .set_read_timeout(Some(self.config.timeout))
            .and_then(|()| client.set_write_timeout(Some(self.config.timeout)))
            .map_err(|error| describe(error.to_string()))?;
        let stats = client
            .request("{\"op\": \"stats\"}")
            .map_err(|error| describe(error.to_string()))?;
        if stats.get_str("status") != Some("ok") {
            return Err(describe(format!("stats answered {}", stats.render())));
        }
        let label = self.graph_label();
        if stats.get_str("graph") != Some(label.as_str()) {
            return Err(describe(format!(
                "serves graph {:?}, expected {label}",
                stats.get_str("graph").unwrap_or("<missing>")
            )));
        }
        let role = stats
            .get("shard")
            .ok_or_else(|| describe("runs no shard role (start it with --shard)".to_string()))?;
        let (have_shard, have_shards) = (role.get_usize("shard"), role.get_usize("shards"));
        if have_shard != Some(k) || have_shards != Some(self.workers.len()) {
            return Err(describe(format!(
                "serves shard {have_shard:?} of {have_shards:?}, expected shard {k} of {}",
                self.workers.len()
            )));
        }
        Ok(client)
    }
}

/// Parses a JSON array of non-negative integers carried as `f64` (exact
/// below 2⁵³, which world counts never approach).
fn u64_array(value: Option<&Value>) -> Option<Vec<u64>> {
    value?
        .as_array()?
        .iter()
        .map(|entry| entry.as_f64().map(|f| f as u64))
        .collect()
}
