//! The boundary-exchange coordinator: drives a fleet of `ugs serve --shard`
//! worker processes through one [`QueryPlan`], glues their per-world
//! boundary messages into global answers, and degrades to typed errors —
//! never a hang — when workers die.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graph_algos::pagerank::PageRankConfig;
use minijson::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs_queries::batch::WorldObserver;
use ugs_queries::boundary::{glue_records, GluedWorld, ShardWorldRecord};
use ugs_queries::halo::{
    decode_level, decode_rank, encode_level, encode_rank, f64_from_hex, f64_to_hex,
};
use ugs_queries::variance::{Precision, StoppingRule};
use ugs_queries::{ClusteringObserver, KnnObserver, PageRankObserver};
use ugs_server::protocol::DEFAULT_BOUNDARY_PAGE;
use ugs_server::LineClient;
use ugs_service::{
    mode_name, QueryAnswer, QueryPlan, QueryResult, QuerySpec, ResultTicket, ServiceError,
};
use uncertain_graph::{GraphPartition, HaloPlan, UncertainGraph};

use crate::fault::{FaultClock, FaultKind, FaultPlan};
use crate::merge::{block_owner, ConnAccumulator, FreqAccumulator, HistAccumulator};
use crate::recovery::{Failover, RecoveryReport, StandbyPool};

/// One shard's `(degree_histogram, intra_edge_presence)` cross-world
/// aggregates, as returned by `shard_result`.
type ShardAggregates = (Vec<u64>, Vec<u64>);

/// Ghost-rank entries per `feed` line.  Each entry is at most ~31 bytes
/// on the wire, so a chunk stays around 250 KiB — comfortably inside the
/// worker's default 1 MiB request-line bound even for hub shards whose
/// halo spans most of the graph.
const FEED_CHUNK_ENTRIES: usize = 8_192;

/// Failure-model knobs of a [`DistCoordinator`].
///
/// Every worker exchange runs under `timeout` (read *and* write), a failed
/// exchange is retried up to `retries` times per worker per plan by
/// reconnecting and resubmitting (the fresh job deterministically resamples
/// the identical world stream), and a worker whose sampling position stops
/// advancing for `stale_after` while the coordinator still needs its records
/// is treated as lost.  When a worker's retry budget runs dry the
/// coordinator **fails over**: the first `standbys` address that validates
/// (same graph fingerprint, the lost shard's role) is promoted, consuming
/// it from the pool and re-arming the shard's retry budget — so the
/// worst-case wait stays bounded by `(standbys + 1) × (retries + 1)`
/// exchanges per shard per plan.  Only when no standby validates does the
/// plan degrade to [`ServiceError::WorkerLost`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Per-request socket timeout, both directions (and the connect bound).
    pub timeout: Duration,
    /// Reconnect-and-resubmit attempts per worker per plan before the
    /// shard fails over (or, with no standby left, the plan degrades to
    /// [`ServiceError::WorkerLost`]).
    pub retries: usize,
    /// How long a worker's `pos` may sit still (while records are needed)
    /// before the stale-worker detector burns one retry.
    pub stale_after: Duration,
    /// Sleep between progress probes when no worker has new records.
    pub poll_interval: Duration,
    /// Sleep after a failed exchange before the reconnect attempt — gives
    /// a supervisor's respawn (or a restarting host) time to re-bind
    /// instead of burning the whole retry budget in microseconds.
    pub reconnect_backoff: Duration,
    /// Standby worker addresses for failover; see [`crate::recovery`].
    /// Every standby must serve the same graph; its shard role is
    /// validated at promotion time.
    pub standbys: Vec<String>,
    /// Test/bench-only seeded fault injection over the coordinator's
    /// request path; see [`crate::fault`].  `None` (the default) sends
    /// every exchange faithfully.
    pub faults: Option<FaultPlan>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            timeout: Duration::from_secs(10),
            retries: 2,
            stale_after: Duration::from_secs(30),
            poll_interval: Duration::from_millis(1),
            reconnect_backoff: Duration::from_millis(25),
            standbys: Vec::new(),
            faults: None,
        }
    }
}

/// The immutable identity of one in-flight distributed sampling job: a
/// resubmission (after a reconnect, or to raise an adaptive target) must
/// repeat every field except the world target.
#[derive(Debug, Clone)]
struct JobParams {
    token: String,
    seed: u64,
    mode: &'static str,
    target: usize,
}

/// One shard worker: its address, its (possibly dropped) connection, and
/// the pager state of the current job.
struct Worker {
    addr: String,
    client: Option<LineClient>,
    retries_left: usize,
    /// Boundary records received so far for the current job (consumed ones
    /// plus the buffered tail) — the `from` cursor of the next page.
    received: usize,
    buffer: VecDeque<ShardWorldRecord>,
    /// Worker-reported sampling position, for the stale detector.
    last_pos: usize,
    last_gain: Instant,
}

/// Coordinator-side accumulator for one validated query of the plan.
enum Slot {
    Connectivity(ConnAccumulator),
    DegreeHistogram(HistAccumulator),
    EdgeFrequency(FreqAccumulator),
}

impl Slot {
    fn for_spec(spec: &QuerySpec, graph: &UncertainGraph, blocks: usize) -> Slot {
        match spec {
            QuerySpec::Connectivity => {
                Slot::Connectivity(ConnAccumulator::new(graph.num_vertices(), blocks))
            }
            QuerySpec::DegreeHistogram => Slot::DegreeHistogram(HistAccumulator::new(graph)),
            QuerySpec::EdgeFrequency => {
                Slot::EdgeFrequency(FreqAccumulator::new(graph.num_edges()))
            }
            other => unreachable!("spec {} has no distributed slot", other.kind()),
        }
    }

    fn tracked_range(&self) -> Option<(f64, f64)> {
        match self {
            Slot::Connectivity(acc) => acc.tracked_range(),
            Slot::EdgeFrequency(acc) => acc.tracked_range(),
            Slot::DegreeHistogram(_) => None,
        }
    }

    /// The per-world increments of the matching observer.
    fn observe(&mut self, block: usize, partition: &GraphPartition, world: &GluedWorld) {
        match self {
            Slot::Connectivity(acc) => acc.observe(block, world),
            Slot::EdgeFrequency(acc) => acc.observe(partition, world),
            Slot::DegreeHistogram(_) => {} // filled from worker aggregates
        }
    }

    /// The tracked statistic of the world just observed — the same scalar
    /// the in-process observer hands the stopping rule.
    fn statistic(&self, world: &GluedWorld, records: &[ShardWorldRecord], num_edges: usize) -> f64 {
        match self {
            Slot::Connectivity(_) => f64::from(world.num_components == 1),
            Slot::EdgeFrequency(_) => {
                let present: usize = records
                    .iter()
                    .map(|record| record.intra_present as usize)
                    .sum::<usize>()
                    + world.present_cuts.len();
                present as f64 / num_edges as f64
            }
            Slot::DegreeHistogram(_) => unreachable!("degree histogram is untracked"),
        }
    }

    fn finalize(self, num_worlds: usize) -> QueryResult {
        match self {
            Slot::Connectivity(acc) => QueryResult::Connectivity(acc.finalize(num_worlds)),
            Slot::DegreeHistogram(acc) => QueryResult::DegreeHistogram(acc.finalize(num_worlds)),
            Slot::EdgeFrequency(acc) => QueryResult::EdgeFrequency(acc.finalize(num_worlds)),
        }
    }
}

/// Coordinator-side driver state for one ghost-halo query of the plan:
/// the kernel parameters plus one observer per world block (the same
/// block-ascending merge order the in-process threaded driver uses, so the
/// accumulated `f64` sums match bitwise).
enum HaloSlot {
    PageRank {
        index: usize,
        config: PageRankConfig,
        blocks: Vec<PageRankObserver>,
    },
    Clustering {
        index: usize,
        blocks: Vec<ClusteringObserver>,
    },
    Knn {
        index: usize,
        source: usize,
        blocks: Vec<KnnObserver>,
    },
}

/// Merges per-block observers in ascending block order — the identical
/// fold the in-process driver performs after its worker threads join.
fn merge_blocks<O: WorldObserver>(blocks: Vec<O>) -> O {
    let mut blocks = blocks.into_iter();
    let mut merged = blocks.next().expect("at least one world block");
    for other in blocks {
        merged.merge(other);
    }
    merged
}

impl HaloSlot {
    fn for_spec(spec: &QuerySpec, index: usize, graph: &UncertainGraph, blocks: usize) -> HaloSlot {
        match spec {
            QuerySpec::PageRank {
                damping,
                max_iterations,
                tolerance,
            } => {
                let config = PageRankConfig {
                    damping: *damping,
                    max_iterations: *max_iterations,
                    tolerance: *tolerance,
                };
                HaloSlot::PageRank {
                    index,
                    config,
                    blocks: (0..blocks)
                        .map(|_| PageRankObserver::with_config(graph, config))
                        .collect(),
                }
            }
            QuerySpec::Clustering => HaloSlot::Clustering {
                index,
                blocks: (0..blocks)
                    .map(|_| ClusteringObserver::new(graph))
                    .collect(),
            },
            QuerySpec::Knn { source, k } => HaloSlot::Knn {
                index,
                source: *source,
                blocks: (0..blocks)
                    .map(|_| KnnObserver::new(graph, *source, *k))
                    .collect(),
            },
            other => unreachable!("spec {} has no halo driver", other.kind()),
        }
    }

    /// The plan position of this query — names the worker session token, so
    /// two queries of the same kind never share superstep state.
    fn index(&self) -> usize {
        match self {
            HaloSlot::PageRank { index, .. }
            | HaloSlot::Clustering { index, .. }
            | HaloSlot::Knn { index, .. } => *index,
        }
    }

    /// The kernel object every `halo` line of this query carries.  The
    /// damping factor travels as IEEE-754 bits so the worker runs exactly
    /// the coordinator's parameters.
    fn kernel_json(&self) -> String {
        match self {
            HaloSlot::PageRank { config, .. } => format!(
                r#"{{"type": "pagerank", "damping": "{}"}}"#,
                f64_to_hex(config.damping)
            ),
            HaloSlot::Clustering { .. } => r#"{"type": "clustering"}"#.to_string(),
            HaloSlot::Knn { source, .. } => format!(r#"{{"type": "bfs", "source": {source}}}"#),
        }
    }

    fn finalize(self, num_worlds: usize) -> QueryResult {
        match self {
            HaloSlot::PageRank { blocks, .. } => {
                QueryResult::PageRank(merge_blocks(blocks).finalize(num_worlds))
            }
            HaloSlot::Clustering { blocks, .. } => {
                QueryResult::Clustering(merge_blocks(blocks).finalize(num_worlds))
            }
            HaloSlot::Knn { blocks, .. } => {
                QueryResult::Knn(merge_blocks(blocks).finalize(num_worlds))
            }
        }
    }
}

/// The immutable wire identity of one halo query's sessions: every `halo`
/// line repeats it verbatim, so a freshly promoted standby can rebuild the
/// session from whatever line reaches it first.
struct HaloCtx {
    token: String,
    seed: u64,
    mode: &'static str,
    kernel: String,
}

/// Which execution path a validly placed query runs on.
#[derive(Clone, Copy)]
enum Placed {
    /// Boundary-exchange aggregate (connectivity, histogram, frequency).
    Aggregate,
    /// Ghost-halo superstep exchange (pagerank, clustering, k-NN).
    Halo,
}

/// Validates one paged halo window: `values` must be strings, `from` must
/// match the cursor we asked for, `total` must be present.  Returns the
/// window's entries and the report's total size.
fn halo_window(response: &Value, expect_from: usize) -> Result<(Vec<String>, usize), String> {
    let total = response
        .get_usize("total")
        .ok_or_else(|| format!("halo window without a total: {}", response.render()))?;
    let from = response
        .get_usize("from")
        .ok_or_else(|| format!("halo window without a cursor: {}", response.render()))?;
    if from != expect_from {
        return Err(format!(
            "halo window starts at {from}, expected {expect_from}"
        ));
    }
    let entries = response
        .get("values")
        .and_then(|value| value.as_array())
        .ok_or_else(|| format!("halo window without values: {}", response.render()))?
        .iter()
        .map(|entry| entry.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| "halo window carries non-string values".to_string())?;
    Ok((entries, total))
}

/// Drives a fleet of shard workers through [`QueryPlan`]s, resolving each
/// plan **bit-identically** to an in-process run of the same plan.
///
/// See the [crate docs](crate) for the protocol, the parity argument and
/// the failure model.
pub struct DistCoordinator {
    graph: Arc<UncertainGraph>,
    partition: Arc<GraphPartition>,
    /// Per-shard ghost layout, built lazily on the first halo query (the
    /// coordinator only needs the ghost lists and boundary routing; workers
    /// derive the same plan from the same partition).
    halo: Option<Arc<HaloPlan>>,
    config: CoordinatorConfig,
    workers: Vec<Worker>,
    standbys: StandbyPool,
    faults: Option<FaultClock>,
    recovery: RecoveryReport,
    fingerprint: u64,
    next_token: u64,
    job: Option<JobParams>,
}

impl DistCoordinator {
    /// Connects to one worker per shard (worker `k` must serve shard `k` of
    /// `addrs.len()`), validating that every worker serves the same graph
    /// (by fingerprint) under the matching shard role.
    ///
    /// Fails with [`ServiceError::Policy`] when the graph cannot be
    /// partitioned into `addrs.len()` shards, and with
    /// [`ServiceError::WorkerLost`] when a worker is unreachable or
    /// mis-configured.
    pub fn connect(
        graph: impl Into<Arc<UncertainGraph>>,
        addrs: &[impl ToString],
        config: CoordinatorConfig,
    ) -> Result<DistCoordinator, ServiceError> {
        let graph = graph.into();
        if addrs.is_empty() {
            return Err(ServiceError::Policy(
                "a distributed coordinator needs at least one worker address".to_string(),
            ));
        }
        let partition = GraphPartition::contiguous(&graph, addrs.len())
            .map_err(|error| ServiceError::Policy(error.to_string()))?;
        let fingerprint = graph.fingerprint();
        let retries = config.retries;
        let standbys = StandbyPool::new(config.standbys.clone());
        let faults = config
            .faults
            .clone()
            .filter(|plan| !plan.is_empty())
            .map(FaultClock::new);
        let mut coordinator = DistCoordinator {
            graph,
            partition: Arc::new(partition),
            halo: None,
            workers: addrs
                .iter()
                .map(|addr| Worker {
                    addr: addr.to_string(),
                    client: None,
                    retries_left: retries,
                    received: 0,
                    buffer: VecDeque::new(),
                    last_pos: 0,
                    last_gain: Instant::now(),
                })
                .collect(),
            standbys,
            faults,
            recovery: RecoveryReport::default(),
            config,
            fingerprint,
            next_token: 0,
            job: None,
        };
        for k in 0..coordinator.workers.len() {
            // A worker that is dead or mis-configured at connect fails over
            // immediately (promotion validates a standby); only an empty or
            // exhausted pool degrades to the typed error.
            match coordinator.open_client(k) {
                Ok(client) => coordinator.workers[k].client = Some(client),
                Err(why) => coordinator.promote(k, why)?,
            }
        }
        Ok(coordinator)
    }

    /// Number of shard workers (= shards of the partition).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative recovery activity — retries burned and standby
    /// promotions — across this coordinator's lifetime.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Standby addresses not yet consumed by a promotion.
    pub fn standbys_left(&self) -> usize {
        self.standbys.len()
    }

    /// The fingerprint of the coordinated graph.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The graph label every report carries (same rendering as the server's).
    pub fn graph_label(&self) -> String {
        format!("fingerprint:{:016x}", self.fingerprint)
    }

    /// Executes a plan across the fleet; one outcome per query, in plan
    /// order.  Bit-identical to `plan.execute_detailed(graph)` for the
    /// distributed-aggregate queries (`connectivity`, `degree_histogram`,
    /// `edge_frequency` — glued from boundary records) **and** for the
    /// ghost-halo queries (`pagerank`, `clustering`, `knn` — driven as
    /// supersteps over the workers' halo sessions, exchanging values as
    /// IEEE-754 bit patterns).  Only `pair_queries` has no distributed
    /// path and resolves with a typed [`ServiceError::Policy`].
    pub fn execute(&mut self, plan: &QueryPlan) -> Vec<Result<QueryAnswer, ServiceError>> {
        let shards = self.workers.len();
        // Per-query validation, mirroring the in-process scheduler's flush:
        // invalid queries resolve individually, the valid remainder runs.
        let mut slots: Vec<Slot> = Vec::new();
        let mut halos: Vec<HaloSlot> = Vec::new();
        let worlds = plan.worlds;
        let cap = match plan.precision {
            Some(precision) => precision.cap(worlds),
            None => worlds,
        };
        let blocks = plan.threads.max(1).clamp(1, cap.max(1));
        let placed: Vec<Result<Placed, ServiceError>> = plan
            .queries
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                spec.validate_sharded(&self.graph, shards)
                    .map_err(ServiceError::Spec)
                    .and_then(|()| match spec {
                        QuerySpec::Connectivity
                        | QuerySpec::DegreeHistogram
                        | QuerySpec::EdgeFrequency => {
                            slots.push(Slot::for_spec(spec, &self.graph, blocks));
                            Ok(Placed::Aggregate)
                        }
                        QuerySpec::PageRank { .. }
                        | QuerySpec::Clustering
                        | QuerySpec::Knn { .. } => {
                            halos.push(HaloSlot::for_spec(spec, index, &self.graph, blocks));
                            Ok(Placed::Halo)
                        }
                        QuerySpec::PairQueries { .. } => Err(ServiceError::Policy(
                            "pair_queries has no distributed execution path: its cut-corrected \
                             observer needs the full per-world edge stream, which neither \
                             boundary records nor the ghost-halo exchange carry across workers"
                                .to_string(),
                        )),
                    })
            })
            .collect();
        if slots.is_empty() && halos.is_empty() {
            return placed
                .into_iter()
                .map(|entry| entry.map(|_| unreachable!("no valid queries placed")))
                .collect();
        }
        let run = self.run_valid(plan, &mut slots, &mut halos, blocks, cap);
        let (worlds_used, half_width) = match run {
            Ok(outcome) => outcome,
            Err(error) => {
                self.job = None;
                return placed
                    .into_iter()
                    .map(|entry| entry.and(Err(error.clone())))
                    .collect();
            }
        };
        let mut finished = slots.into_iter();
        let mut finished_halos = halos.into_iter();
        placed
            .into_iter()
            .map(|entry| {
                entry.map(|kind| {
                    let result = match kind {
                        Placed::Aggregate => finished
                            .next()
                            .expect("one finished slot per aggregate query")
                            .finalize(worlds_used),
                        Placed::Halo => finished_halos
                            .next()
                            .expect("one finished halo slot per halo query")
                            .finalize(worlds_used),
                    };
                    QueryAnswer {
                        result,
                        worlds_used,
                        half_width,
                    }
                })
            })
            .collect()
    }

    /// Like [`DistCoordinator::execute`], but hands back one
    /// [`ResultTicket`] per query through the external-executor seam
    /// ([`ResultTicket::pending`]) — the surface a service embeds when it
    /// offloads plans to a fleet.
    pub fn execute_ticketed(&mut self, plan: &QueryPlan) -> Vec<ResultTicket> {
        self.execute(plan)
            .into_iter()
            .map(|outcome| {
                let (reply, ticket) = ResultTicket::pending();
                let _ = reply.send(outcome);
                ticket
            })
            .collect()
    }

    /// Executes the plan and renders the same report envelope
    /// [`QueryPlan::run_report`] prints for an in-process run, with the
    /// graph labelled by fingerprint (byte-identical answers yield
    /// byte-identical reports).
    pub fn run_report(&mut self, plan: &QueryPlan) -> Value {
        let results = self.execute(plan);
        plan.report_for(&self.graph_label(), &results)
    }

    /// Drops every worker connection; the workers' sampler threads stop and
    /// join as their connections close.  (Dropping the coordinator does the
    /// same — this is the explicit spelling.)
    pub fn shutdown(self) {}

    /// Runs the sampling for the plan's valid queries; returns
    /// `(worlds_used, half_width)`.  Aggregate slots run first as one
    /// boundary-exchange job; the halo slots then walk the same world
    /// stream through the workers' halo sessions, block-attributed exactly
    /// as the in-process thread fold would attribute them.
    fn run_valid(
        &mut self,
        plan: &QueryPlan,
        slots: &mut [Slot],
        halos: &mut [HaloSlot],
        blocks: usize,
        cap: usize,
    ) -> Result<(usize, Option<f64>), ServiceError> {
        let worlds = plan.worlds;
        if worlds == 0 {
            // Pristine finalize: no batch seed is drawn, no job started —
            // mirrors the in-process scheduler's zero-world short-circuit.
            return Ok((0, None));
        }
        // The in-process plan runs as one micro-batch of a fresh service
        // stream: the batch seed is the stream's first draw.
        let seed = SmallRng::seed_from_u64(plan.seed).gen::<u64>();
        let mode = mode_name(plan.mode);
        match &plan.precision {
            None => {
                if slots.is_empty() {
                    self.probe_fleet()?;
                } else {
                    self.start_job(seed, mode, worlds)?;
                    let partition = Arc::clone(&self.partition);
                    self.pump(0, worlds, |world, glued, _records| {
                        let owner = block_owner(world, worlds, blocks);
                        for slot in slots.iter_mut() {
                            slot.observe(owner, &partition, glued);
                        }
                        Ok(())
                    })?;
                    self.finish_job(slots, worlds)?;
                }
                self.run_halo(halos, seed, mode, 0, worlds, |world| {
                    block_owner(world, worlds, blocks)
                })?;
                Ok((worlds, None))
            }
            Some(precision) => self.run_adaptive(seed, mode, precision, slots, halos, blocks, cap),
        }
    }

    /// The adaptive epoch loop, replicating `drive_adaptive` exactly: same
    /// stopping rule, same per-world record order, same check order at each
    /// epoch barrier — so `worlds_used` and `half_width` match the
    /// in-process run bitwise.
    #[allow(clippy::too_many_arguments)] // one call site; mirrors drive_adaptive's knobs
    fn run_adaptive(
        &mut self,
        seed: u64,
        mode: &'static str,
        precision: &Precision,
        slots: &mut [Slot],
        halos: &mut [HaloSlot],
        blocks: usize,
        cap: usize,
    ) -> Result<(usize, Option<f64>), ServiceError> {
        let mut rule = StoppingRule::new(*precision);
        let tracked: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.tracked_range().map(|(lo, hi)| (i, lo, hi)))
            .map(|(i, lo, hi)| {
                rule.register(lo, hi);
                i
            })
            .collect();
        if cap == 0 {
            return Ok((0, Some(f64::INFINITY)));
        }
        let epoch = precision.epoch.max(1);
        let started = Instant::now();
        if rule.deadline_expired(started) {
            return Ok((0, Some(f64::INFINITY)));
        }
        let drive_slots = !slots.is_empty();
        if drive_slots {
            self.start_job(seed, mode, 0)?;
        } else {
            self.probe_fleet()?;
        }
        let partition = Arc::clone(&self.partition);
        let num_edges = self.graph.num_edges();
        let mut consumed = 0usize;
        // Epoch extents, replayed below for the halo queries: block
        // attribution inside an epoch is relative to the epoch start, so
        // the halo observers must see the exact same epoch boundaries the
        // stopping rule produced.
        let mut epochs: Vec<(usize, usize)> = Vec::new();
        loop {
            let block = epoch.min(cap - consumed);
            epochs.push((consumed, block));
            if drive_slots {
                self.raise_target(consumed + block)?;
                let epoch_start = consumed;
                self.pump(consumed, consumed + block, |world, glued, records| {
                    let owner = block_owner(world - epoch_start, block, blocks);
                    for slot in slots.iter_mut() {
                        slot.observe(owner, &partition, glued);
                    }
                    for (s, &i) in tracked.iter().enumerate() {
                        rule.record(s, slots[i].statistic(glued, records, num_edges));
                    }
                    Ok(())
                })?;
            }
            consumed += block;
            // Same verdict order as the in-process checkpoint: convergence,
            // then budget, then deadline — a deadline can only shorten a
            // run, never change a converged answer.
            if rule.check() || consumed >= cap || rule.deadline_expired(started) {
                break;
            }
        }
        if drive_slots {
            self.finish_job(slots, consumed)?;
        }
        for &(start, size) in &epochs {
            self.run_halo(halos, seed, mode, start, start + size, |world| {
                block_owner(world - start, size, blocks)
            })?;
        }
        Ok((consumed, Some(rule.half_width())))
    }

    /// Collects every worker's cross-world aggregates for the finished job
    /// and folds them into the slots.
    fn finish_job(&mut self, slots: &mut [Slot], target: usize) -> Result<(), ServiceError> {
        let aggregates = self.collect_aggregates(target)?;
        for (k, (hist, intra)) in aggregates.iter().enumerate() {
            let shard = self.partition.shard(k);
            for slot in slots.iter_mut() {
                let folded = match slot {
                    Slot::DegreeHistogram(acc) => acc.add_worker(hist),
                    Slot::EdgeFrequency(acc) => acc.add_intra(shard, intra),
                    Slot::Connectivity(_) => Ok(()),
                };
                folded.map_err(|why| {
                    ServiceError::Internal(format!("shard {k} aggregates rejected: {why}"))
                })?;
            }
        }
        self.job = None;
        Ok(())
    }

    /// The fleet-side ghost layout, built once on the first halo query and
    /// reused for every later plan (it depends only on the partition).
    fn halo_plan(&mut self) -> Arc<HaloPlan> {
        if self.halo.is_none() {
            self.halo = Some(Arc::new(HaloPlan::new(&self.graph, &self.partition)));
        }
        Arc::clone(self.halo.as_ref().expect("halo plan built above"))
    }

    /// Drives the halo queries over worlds `from..upto`, attributing world
    /// `w` to observer block `owner(w)` — the caller picks the same block
    /// function the in-process engine would use, so the merged observers
    /// fold world values in the identical order.
    ///
    /// Runs **after** the aggregate job finished (no job in flight), so a
    /// reconnect inside the halo exchange never resubmits a boundary job.
    /// A failed exchange restarts the *current world* of the affected query
    /// from step 0 on every shard: surviving workers restart their kernel
    /// without resampling, a reconnected (or freshly promoted) worker
    /// rebuilds its session from the line's identity and replays the shared
    /// stream up to the world — either way the superstep values are
    /// bit-identical to an undisturbed run.  The restart loop terminates
    /// because every restart burned a retry first, and [`Self::fail_worker`]
    /// bounds total failures per shard before degrading to the typed
    /// [`ServiceError::WorkerLost`].
    fn run_halo(
        &mut self,
        halos: &mut [HaloSlot],
        seed: u64,
        mode: &'static str,
        from: usize,
        upto: usize,
        owner: impl Fn(usize) -> usize,
    ) -> Result<(), ServiceError> {
        if halos.is_empty() || from >= upto {
            return Ok(());
        }
        debug_assert!(self.job.is_none(), "halo exchange with a job in flight");
        if from == 0 {
            // The halo exchange is a fresh phase of the plan: re-arm the
            // per-job retry budgets exactly as `start_job` does.
            for worker in &mut self.workers {
                worker.retries_left = self.config.retries;
            }
        }
        let plan = self.halo_plan();
        for world in from..upto {
            let block = owner(world);
            for slot in halos.iter_mut() {
                // Session tokens are stable per plan position: a later plan
                // with a different replay identity *replaces* the worker's
                // session under the same token, so a long-lived connection
                // never accumulates sessions past the per-query count.
                let ctx = HaloCtx {
                    token: format!("halo-q{}", slot.index()),
                    seed,
                    mode,
                    kernel: slot.kernel_json(),
                };
                match slot {
                    HaloSlot::PageRank { config, blocks, .. } => {
                        let config = *config;
                        loop {
                            if let Some(scores) =
                                self.halo_pagerank_world(&ctx, &config, &plan, world)?
                            {
                                blocks[block].record_scores(&scores);
                                break;
                            }
                        }
                    }
                    HaloSlot::Clustering { blocks, .. } => loop {
                        if let Some(coefficients) = self.halo_collect_owned(&ctx, world)? {
                            blocks[block].record_coefficients(&coefficients);
                            break;
                        }
                    },
                    HaloSlot::Knn { source, blocks, .. } => {
                        let source = *source;
                        loop {
                            if let Some(distances) = self.halo_bfs_world(&ctx, source, world)? {
                                blocks[block].record_distances(&distances);
                                break;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// One world of the PageRank superstep exchange, following the kernel
    /// loop of `graph_algos::pagerank` exactly: per iteration, feed every
    /// shard the ghost ranks it reads (from iteration 1 on), run one
    /// chained step through the shards ascending (threading the L1
    /// convergence accumulator), install the reported boundary ranks on the
    /// coordinator's board, and stop when the accumulated delta drops under
    /// the configured tolerance.  `Ok(None)` means a worker failed and the
    /// world must restart from step 0.
    fn halo_pagerank_world(
        &mut self,
        ctx: &HaloCtx,
        config: &PageRankConfig,
        plan: &HaloPlan,
        world: usize,
    ) -> Result<Option<Vec<f64>>, ServiceError> {
        let n = self.graph.num_vertices();
        let shards = self.workers.len();
        let mut board = vec![1.0 / n.max(1) as f64; n];
        for step in 0..config.max_iterations {
            if step > 0 {
                for k in 0..shards {
                    // Feeds are chunked so a shard with a large halo (the
                    // hub shard of a power-law graph can ghost most of the
                    // graph) never exceeds the worker's request-line bound;
                    // the worker installs each chunk incrementally.
                    for chunk in plan.shard(k).ghosts().chunks(FEED_CHUNK_ENTRIES) {
                        let values = chunk
                            .iter()
                            .map(|&gv| format!("\"{}\"", encode_rank(gv as u32, board[gv])))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let tail = format!("\"phase\": \"feed\", \"values\": [{values}]");
                        let line = self.halo_line(ctx, k, world, &tail);
                        if self.halo_request(k, &line)?.is_none() {
                            return Ok(None);
                        }
                    }
                }
            }
            let mut acc = 0.0f64;
            for k in 0..shards {
                let tail = format!(
                    "\"phase\": \"step\", \"step\": {step}, \"acc\": \"{}\"",
                    f64_to_hex(acc)
                );
                let line = self.halo_line(ctx, k, world, &tail);
                let response = match self.halo_request(k, &line)? {
                    Some(response) => response,
                    None => return Ok(None),
                };
                acc = match response.get_str("acc").map(f64_from_hex) {
                    Some(Ok(acc)) => acc,
                    _ => {
                        self.fail_worker(k, "pagerank step response without a folded acc")?;
                        return Ok(None);
                    }
                };
                let entries = match self.halo_entries(ctx, k, world, response)? {
                    Some(entries) => entries,
                    None => return Ok(None),
                };
                for entry in &entries {
                    match decode_rank(entry) {
                        Ok((gid, rank)) if (gid as usize) < n => board[gid as usize] = rank,
                        _ => {
                            let why = format!("unparseable boundary rank {entry:?}");
                            self.fail_worker(k, &why)?;
                            return Ok(None);
                        }
                    }
                }
            }
            if acc < config.tolerance {
                break;
            }
        }
        self.halo_collect_owned(ctx, world)
    }

    /// One world of the BFS (k-NN core) superstep exchange: level by level,
    /// route the frontier's settlements to their owner shards, step every
    /// shard, and absorb the newly settled vertices (first report wins, as
    /// in the monolithic BFS).  `Ok(None)` restarts the world.
    fn halo_bfs_world(
        &mut self,
        ctx: &HaloCtx,
        source: usize,
        world: usize,
    ) -> Result<Option<Vec<u32>>, ServiceError> {
        let n = self.graph.num_vertices();
        let shards = self.workers.len();
        let partition = Arc::clone(&self.partition);
        let mut dist = vec![u32::MAX; n];
        dist[source] = 0;
        let mut settlements: Vec<(u32, u32)> = vec![(source as u32, 0)];
        let mut step = 0usize;
        while !settlements.is_empty() && step < n.max(1) {
            let mut next: Vec<(u32, u32)> = Vec::new();
            for k in 0..shards {
                let routed = settlements
                    .iter()
                    .filter(|&&(v, _)| partition.shard_of(v as usize) == k)
                    .map(|&(v, level)| format!("\"{}\"", encode_level(v, level)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let tail = format!("\"phase\": \"step\", \"step\": {step}, \"values\": [{routed}]");
                let line = self.halo_line(ctx, k, world, &tail);
                let response = match self.halo_request(k, &line)? {
                    Some(response) => response,
                    None => return Ok(None),
                };
                let entries = match self.halo_entries(ctx, k, world, response)? {
                    Some(entries) => entries,
                    None => return Ok(None),
                };
                for entry in &entries {
                    match decode_level(entry) {
                        Ok((gid, level)) if (gid as usize) < n => {
                            if dist[gid as usize] == u32::MAX {
                                dist[gid as usize] = level;
                                next.push((gid, level));
                            }
                        }
                        _ => {
                            let why = format!("unparseable settlement {entry:?}");
                            self.fail_worker(k, &why)?;
                            return Ok(None);
                        }
                    }
                }
            }
            settlements = next;
            step += 1;
        }
        Ok(Some(dist))
    }

    /// Collects the owned per-vertex values of the current world from every
    /// shard into one global vector (clustering computes its coefficients
    /// lazily on the first collect).  `Ok(None)` restarts the world.
    fn halo_collect_owned(
        &mut self,
        ctx: &HaloCtx,
        world: usize,
    ) -> Result<Option<Vec<f64>>, ServiceError> {
        let n = self.graph.num_vertices();
        let shards = self.workers.len();
        let partition = Arc::clone(&self.partition);
        let mut values = vec![0.0f64; n];
        for k in 0..shards {
            let tail =
                format!("\"phase\": \"collect\", \"from\": 0, \"max\": {DEFAULT_BOUNDARY_PAGE}");
            let line = self.halo_line(ctx, k, world, &tail);
            let response = match self.halo_request(k, &line)? {
                Some(response) => response,
                None => return Ok(None),
            };
            let entries = match self.halo_collected(ctx, k, world, response)? {
                Some(entries) => entries,
                None => return Ok(None),
            };
            let vertices = partition.shard(k).vertices();
            if entries.len() != vertices.len() {
                let why = format!(
                    "shard {k} collected {} values for {} owned vertices",
                    entries.len(),
                    vertices.len()
                );
                self.fail_worker(k, &why)?;
                return Ok(None);
            }
            for (local, entry) in entries.iter().enumerate() {
                match f64_from_hex(entry) {
                    Ok(value) => values[vertices[local]] = value,
                    Err(_) => {
                        let why = format!("unparseable collected value {entry:?}");
                        self.fail_worker(k, &why)?;
                        return Ok(None);
                    }
                }
            }
        }
        Ok(Some(values))
    }

    /// Pages the remainder of a step report whose first window is
    /// `response`; `Ok(None)` restarts the world.
    fn halo_entries(
        &mut self,
        ctx: &HaloCtx,
        k: usize,
        world: usize,
        response: Value,
    ) -> Result<Option<Vec<String>>, ServiceError> {
        self.halo_pages(ctx, k, world, response, "page")
    }

    /// Pages the remainder of a collect whose first window is `response`.
    fn halo_collected(
        &mut self,
        ctx: &HaloCtx,
        k: usize,
        world: usize,
        response: Value,
    ) -> Result<Option<Vec<String>>, ServiceError> {
        self.halo_pages(ctx, k, world, response, "collect")
    }

    /// Drains a paged halo report: validates the first window, then issues
    /// `phase` requests until `total` entries arrived.  Pages are
    /// idempotent re-reads of session state, so re-requesting a window
    /// after a hiccup is safe; a window that fails to advance fails the
    /// worker instead of spinning.
    fn halo_pages(
        &mut self,
        ctx: &HaloCtx,
        k: usize,
        world: usize,
        first: Value,
        phase: &str,
    ) -> Result<Option<Vec<String>>, ServiceError> {
        let (mut entries, total) = match halo_window(&first, 0) {
            Ok(window) => window,
            Err(why) => {
                self.fail_worker(k, &why)?;
                return Ok(None);
            }
        };
        while entries.len() < total {
            let tail = format!(
                "\"phase\": \"{phase}\", \"from\": {}, \"max\": {DEFAULT_BOUNDARY_PAGE}",
                entries.len()
            );
            let line = self.halo_line(ctx, k, world, &tail);
            let response = match self.halo_request(k, &line)? {
                Some(response) => response,
                None => return Ok(None),
            };
            let (page, page_total) = match halo_window(&response, entries.len()) {
                Ok(window) => window,
                Err(why) => {
                    self.fail_worker(k, &why)?;
                    return Ok(None);
                }
            };
            if page_total != total || page.is_empty() {
                self.fail_worker(k, "halo report window did not advance")?;
                return Ok(None);
            }
            entries.extend(page);
        }
        Ok(Some(entries))
    }

    /// One halo exchange with worker `k` — **single attempt**.  A halo
    /// superstep is stateful, so a line must never be retried verbatim the
    /// way [`Self::request_worker`] retries idempotent exchanges; instead a
    /// failure burns the ordinary retry/failover budget and reports
    /// `Ok(None)`: *restart the current world from step 0 on every shard*.
    fn halo_request(&mut self, k: usize, line: &str) -> Result<Option<Value>, ServiceError> {
        if self.workers[k].client.is_none() {
            match self.open_client(k) {
                Ok(client) => {
                    self.workers[k].client = Some(client);
                    self.workers[k].last_gain = Instant::now();
                }
                Err(why) => {
                    self.fail_worker(k, &why)?;
                    return Ok(None);
                }
            }
        }
        match self.raw_request(k, line) {
            Ok(value) => Ok(Some(value)),
            Err(why) => {
                self.fail_worker(k, &why)?;
                Ok(None)
            }
        }
    }

    /// Renders one `halo` line: the full session identity (so any worker —
    /// original, reconnected, or promoted standby — can rebuild the session
    /// from this line alone) plus the phase-specific `tail`.
    fn halo_line(&self, ctx: &HaloCtx, k: usize, world: usize, tail: &str) -> String {
        format!(
            "{{\"op\": \"halo\", \"job\": \"{}\", \"shard\": {k}, \"shards\": {}, \
             \"seed\": \"{}\", \"mode\": \"{}\", \"kernel\": {}, \"world\": {world}, {tail}}}",
            ctx.token,
            self.workers.len(),
            ctx.seed,
            ctx.mode,
            ctx.kernel
        )
    }

    /// Pings every worker once through the ordinary retry/reconnect/
    /// failover path.  Runs **before** a plan fans out, while no job is in
    /// flight, so a dead-at-connect worker is detected — and failed over —
    /// before any shard work starts instead of surfacing as a mid-plan
    /// timeout.
    fn probe_fleet(&mut self) -> Result<(), ServiceError> {
        debug_assert!(self.job.is_none(), "probe with a job in flight");
        for k in 0..self.workers.len() {
            self.request_worker(k, "{\"op\": \"ping\"}")?;
        }
        Ok(())
    }

    /// Starts a fresh sampling job on every worker under a new token,
    /// resetting all pager state and re-arming the retry budgets.
    fn start_job(
        &mut self,
        seed: u64,
        mode: &'static str,
        target: usize,
    ) -> Result<(), ServiceError> {
        self.probe_fleet()?;
        let token = format!("plan-{}", self.next_token);
        self.next_token += 1;
        self.job = Some(JobParams {
            token,
            seed,
            mode,
            target,
        });
        let now = Instant::now();
        for worker in &mut self.workers {
            worker.retries_left = self.config.retries;
            worker.received = 0;
            worker.buffer.clear();
            worker.last_pos = 0;
            worker.last_gain = now;
        }
        for k in 0..self.workers.len() {
            let line = self.submit_line(k);
            // Idempotent: the reconnect path may already have resubmitted —
            // a matching resubmission just re-raises the same target.
            self.request_worker(k, &line)?;
        }
        Ok(())
    }

    /// Raises every worker's world target for the in-flight job (the
    /// adaptive per-epoch extension).
    fn raise_target(&mut self, target: usize) -> Result<(), ServiceError> {
        self.job
            .as_mut()
            .expect("raise_target outside a job")
            .target = target;
        for k in 0..self.workers.len() {
            let line = self.submit_line(k);
            self.request_worker(k, &line)?;
        }
        Ok(())
    }

    /// The `shard_submit` request line for worker `k` and the current job.
    fn submit_line(&self, k: usize) -> String {
        let job = self.job.as_ref().expect("submit_line outside a job");
        format!(
            "{{\"op\": \"shard_submit\", \"job\": \"{}\", \"shard\": {}, \"shards\": {}, \
             \"worlds\": {}, \"seed\": \"{}\", \"mode\": \"{}\"}}",
            job.token,
            k,
            self.workers.len(),
            job.target,
            job.seed,
            job.mode
        )
    }

    /// Glues worlds `from..upto` in world order, invoking `on_world` for
    /// each: pages boundary records from every worker, buffers them, and
    /// glues a world as soon as all shards have reported it.  Applies the
    /// stale-worker detector whenever a pass makes no progress.
    fn pump<F>(&mut self, from: usize, upto: usize, mut on_world: F) -> Result<(), ServiceError>
    where
        F: FnMut(usize, &GluedWorld, &[ShardWorldRecord]) -> Result<(), ServiceError>,
    {
        let shards = self.workers.len();
        let mut next_world = from;
        let mut records: Vec<ShardWorldRecord> = Vec::with_capacity(shards);
        while next_world < upto {
            let mut progressed = false;
            for k in 0..shards {
                let needed = upto - self.workers[k].received;
                if needed == 0 {
                    continue;
                }
                let gained = self.page_records(k, needed.min(DEFAULT_BOUNDARY_PAGE))?;
                progressed |= gained > 0;
            }
            while next_world < upto && self.workers.iter().all(|w| !w.buffer.is_empty()) {
                records.clear();
                for worker in &mut self.workers {
                    records.push(worker.buffer.pop_front().expect("checked non-empty"));
                }
                let glued = glue_records(&self.partition, &records).map_err(|why| {
                    ServiceError::Internal(format!("glue failed at world {next_world}: {why}"))
                })?;
                on_world(next_world, &glued, &records)?;
                next_world += 1;
                progressed = true;
            }
            if !progressed {
                self.check_stale(upto)?;
                std::thread::sleep(self.config.poll_interval);
            }
        }
        Ok(())
    }

    /// Requests one page of boundary records from worker `k`; returns how
    /// many records arrived (possibly zero while the worker still samples).
    fn page_records(&mut self, k: usize, max: usize) -> Result<usize, ServiceError> {
        let job = self.job.as_ref().expect("page_records outside a job");
        let line = format!(
            "{{\"op\": \"boundary\", \"job\": \"{}\", \"from\": {}, \"max\": {}}}",
            job.token, self.workers[k].received, max
        );
        let response = self.request_worker(k, &line)?;
        let parsed: Result<Vec<ShardWorldRecord>, String> =
            match response.get("records").and_then(Value::as_array) {
                None => Err("boundary response without records".to_string()),
                Some(entries) => entries
                    .iter()
                    .map(|entry| {
                        entry
                            .as_str()
                            .ok_or_else(|| "non-string boundary record".to_string())
                            .and_then(ShardWorldRecord::decode)
                    })
                    .collect(),
            };
        let decoded = match parsed {
            Ok(decoded) => decoded,
            Err(why) => {
                // Transport-level corruption: burn a retry and re-page.
                self.fail_worker(k, &why)?;
                return Ok(0);
            }
        };
        let gained = decoded.len();
        let worker = &mut self.workers[k];
        worker.received += gained;
        worker.buffer.extend(decoded);
        let pos = response.get_usize("pos").unwrap_or(worker.last_pos);
        if gained > 0 || pos > worker.last_pos {
            worker.last_pos = pos.max(worker.last_pos);
            worker.last_gain = Instant::now();
        }
        Ok(gained)
    }

    /// Burns a retry on every worker whose sampling position has sat still
    /// beyond the stale window while records are still owed.
    fn check_stale(&mut self, upto: usize) -> Result<(), ServiceError> {
        for k in 0..self.workers.len() {
            if self.workers[k].received < upto
                && self.workers[k].last_gain.elapsed() > self.config.stale_after
            {
                self.fail_worker(k, "sampling position stopped advancing")?;
            }
        }
        Ok(())
    }

    /// Polls every worker's `shard_result` until done, returning each
    /// shard's `(hist, intra)` cross-world aggregates.
    fn collect_aggregates(&mut self, target: usize) -> Result<Vec<ShardAggregates>, ServiceError> {
        let token = self
            .job
            .as_ref()
            .expect("collect_aggregates outside a job")
            .token
            .clone();
        let line = format!("{{\"op\": \"shard_result\", \"job\": \"{token}\"}}");
        let mut aggregates = Vec::with_capacity(self.workers.len());
        for k in 0..self.workers.len() {
            loop {
                let response = self.request_worker(k, &line)?;
                if response.get("done").and_then(Value::as_bool) == Some(true) {
                    let worlds = response.get_usize("worlds");
                    if worlds != Some(target) {
                        self.fail_worker(
                            k,
                            &format!("aggregates cover {worlds:?} worlds, expected {target}"),
                        )?;
                        continue;
                    }
                    match (
                        u64_array(response.get("hist")),
                        u64_array(response.get("intra")),
                    ) {
                        (Some(hist), Some(intra)) => {
                            aggregates.push((hist, intra));
                            break;
                        }
                        _ => {
                            self.fail_worker(k, "malformed aggregate arrays")?;
                            continue;
                        }
                    }
                }
                let pos = response.get_usize("pos").unwrap_or(0);
                let worker = &mut self.workers[k];
                if pos > worker.last_pos {
                    worker.last_pos = pos;
                    worker.last_gain = Instant::now();
                } else if worker.last_gain.elapsed() > self.config.stale_after {
                    self.fail_worker(k, "stalled before finishing its aggregates")?;
                    continue;
                }
                std::thread::sleep(self.config.poll_interval);
            }
        }
        Ok(aggregates)
    }

    /// Sends one request to worker `k`, transparently reconnecting,
    /// re-validating and resubmitting the in-flight job after a failure.
    /// Every failure burns one bounded retry; exhaustion degrades to
    /// [`ServiceError::WorkerLost`].
    fn request_worker(&mut self, k: usize, line: &str) -> Result<Value, ServiceError> {
        loop {
            if self.workers[k].client.is_none() {
                match self.open_client(k) {
                    Ok(client) => {
                        self.workers[k].client = Some(client);
                        self.workers[k].last_gain = Instant::now();
                        if self.job.is_some() {
                            let submit = self.submit_line(k);
                            let resubmitted = self.raw_request(k, &submit);
                            if let Err(why) = resubmitted {
                                self.fail_worker(k, &why)?;
                                continue;
                            }
                        }
                    }
                    Err(why) => {
                        self.fail_worker(k, &why)?;
                        continue;
                    }
                }
            }
            match self.raw_request(k, line) {
                Ok(value) => return Ok(value),
                Err(why) => self.fail_worker(k, &why)?,
            }
        }
    }

    /// One request on the live connection; any transport error or error
    /// envelope comes back as a message (no retry logic here).  This is
    /// also the coordinator-side fault injection seam: an armed
    /// [`CoordinatorConfig::faults`] clock ticks once per call and may
    /// misbehave instead — every injected failure then flows through the
    /// ordinary retry/failover model like a real one.
    fn raw_request(&mut self, k: usize, line: &str) -> Result<Value, String> {
        let line = match crate::fault::verdict(self.faults.as_ref()) {
            None => line,
            Some(FaultKind::Delay) => {
                let delay = self.faults.as_ref().expect("delay needs a clock").delay();
                std::thread::sleep(delay);
                line
            }
            Some(FaultKind::Drop) => {
                self.workers[k].client = None;
                return Err("injected fault: request dropped".to_string());
            }
            Some(FaultKind::Disconnect) => {
                self.workers[k].client = None;
                return Err("injected fault: connection torn down".to_string());
            }
            // The worker answers a garbled request with a typed
            // `bad_request` — reported below like any error envelope.
            Some(FaultKind::Garble) => "#!garbled<injected-request>",
        };
        let client = self.workers[k]
            .client
            .as_mut()
            .ok_or_else(|| "connection closed".to_string())?;
        let response = client.request(line).map_err(|error| error.to_string())?;
        if response.get_str("status") == Some("ok") {
            Ok(response)
        } else {
            Err(format!("worker answered {}", response.render()))
        }
    }

    /// Records one failed exchange with worker `k`: drops its connection
    /// (the next request reconnects and resubmits) and burns one retry;
    /// an exhausted budget fails the shard over to a standby, and only
    /// when no standby validates does the plan degrade to the typed
    /// [`ServiceError::WorkerLost`].
    fn fail_worker(&mut self, k: usize, why: &str) -> Result<(), ServiceError> {
        let worker = &mut self.workers[k];
        worker.client = None;
        if worker.retries_left == 0 {
            let exhausted = format!(
                "shard {k} worker at {}: {why} (retries exhausted)",
                worker.addr
            );
            return self.promote(k, exhausted);
        }
        worker.retries_left -= 1;
        worker.last_gain = Instant::now();
        self.recovery.retries_burned += 1;
        if !self.config.reconnect_backoff.is_zero() {
            std::thread::sleep(self.config.reconnect_backoff);
        }
        Ok(())
    }

    /// Fails shard `k` over to the first standby that validates: the
    /// candidate must serve the same graph under shard `k`'s role, and the
    /// in-flight job (if any) is resubmitted to it before it takes over —
    /// the job deterministically resamples the identical world stream from
    /// world 0, and the pager's `received` cursor keeps gluing exactly
    /// where it stopped, so recovered answers stay bit-identical (see
    /// [`crate::recovery`]).  A promoted (or failed) candidate is consumed
    /// from the pool; promotion re-arms the shard's retry budget.
    ///
    /// `trail` carries the failure story so far; candidates that do not
    /// validate append to it, and the terminal
    /// [`ServiceError::WorkerLost`] reports the whole chain.
    fn promote(&mut self, k: usize, trail: String) -> Result<(), ServiceError> {
        let mut trail = trail;
        for addr in self.standbys.candidates() {
            self.standbys.remove(&addr);
            let mut client = match self.open_client_to(k, &addr) {
                Ok(client) => client,
                Err(why) => {
                    trail = format!("{trail}; standby {why}");
                    continue;
                }
            };
            if self.job.is_some() {
                let submit = self.submit_line(k);
                let resubmitted = client
                    .request(&submit)
                    .map_err(|error| error.to_string())
                    .and_then(|response| {
                        if response.get_str("status") == Some("ok") {
                            Ok(())
                        } else {
                            Err(format!("answered {}", response.render()))
                        }
                    });
                if let Err(why) = resubmitted {
                    trail = format!("{trail}; standby at {addr} rejected the resubmission: {why}");
                    continue;
                }
            }
            let retries = self.config.retries;
            let worker = &mut self.workers[k];
            let from = std::mem::replace(&mut worker.addr, addr.clone());
            worker.client = Some(client);
            worker.retries_left = retries;
            worker.last_gain = Instant::now();
            self.recovery.failovers.push(Failover {
                shard: k,
                from,
                to: addr,
            });
            return Ok(());
        }
        Err(ServiceError::WorkerLost(trail))
    }

    /// Opens and validates a connection to worker `k`'s current address.
    fn open_client(&self, k: usize) -> Result<LineClient, String> {
        let addr = self.workers[k].addr.clone();
        self.open_client_to(k, &addr)
    }

    /// Opens and validates a connection for shard `k` at `addr`: connect
    /// bounded by the timeout, timeouts armed both directions, graph
    /// fingerprint and shard role checked via `stats`.
    fn open_client_to(&self, k: usize, addr: &str) -> Result<LineClient, String> {
        let describe = |why: String| format!("shard {k} worker at {addr}: {why}");
        let mut client = LineClient::connect_timeout(addr, self.config.timeout)
            .map_err(|error| describe(error.to_string()))?;
        client
            .set_read_timeout(Some(self.config.timeout))
            .and_then(|()| client.set_write_timeout(Some(self.config.timeout)))
            .map_err(|error| describe(error.to_string()))?;
        let stats = client
            .request("{\"op\": \"stats\"}")
            .map_err(|error| describe(error.to_string()))?;
        if stats.get_str("status") != Some("ok") {
            return Err(describe(format!("stats answered {}", stats.render())));
        }
        let label = self.graph_label();
        if stats.get_str("graph") != Some(label.as_str()) {
            return Err(describe(format!(
                "serves graph {:?}, expected {label}",
                stats.get_str("graph").unwrap_or("<missing>")
            )));
        }
        let role = stats
            .get("shard")
            .ok_or_else(|| describe("runs no shard role (start it with --shard)".to_string()))?;
        let (have_shard, have_shards) = (role.get_usize("shard"), role.get_usize("shards"));
        if have_shard != Some(k) || have_shards != Some(self.workers.len()) {
            return Err(describe(format!(
                "serves shard {have_shard:?} of {have_shards:?}, expected shard {k} of {}",
                self.workers.len()
            )));
        }
        Ok(client)
    }
}

/// Parses a JSON array of non-negative integers carried as `f64` (exact
/// below 2⁵³, which world counts never approach).
fn u64_array(value: Option<&Value>) -> Option<Vec<u64>> {
    value?
        .as_array()?
        .iter()
        .map(|entry| entry.as_f64().map(|f| f as u64))
        .collect()
}
