//! Coordinator-side seeded fault injection: the same [`FaultPlan`] /
//! [`FaultClock`] machinery the worker arms via
//! [`ServerConfig::fault_plan`](ugs_server::ServerConfig::fault_plan),
//! re-exported here and wired into the coordinator's request path.
//!
//! A plan named by [`CoordinatorConfig::faults`](crate::CoordinatorConfig)
//! ticks one clock op per **worker exchange** (any shard's request counts
//! on the one shared, seeded schedule).  A faulted exchange misbehaves
//! before or instead of the real request:
//!
//! * [`FaultKind::Drop`] — the request is never sent; the exchange reports
//!   an injected transport failure;
//! * [`FaultKind::Delay`] — the exchange runs faithfully after sleeping
//!   the plan's delay;
//! * [`FaultKind::Disconnect`] — the worker's connection is torn down and
//!   the exchange reports the teardown;
//! * [`FaultKind::Garble`] — a deliberately unparseable line is sent in
//!   place of the request; the worker's typed `bad_request` answer is what
//!   the exchange reports.
//!
//! Every injected failure flows through the coordinator's ordinary
//! failure model — retry budgets, reconnect-and-resubmit, standby
//! promotion — which is the point: chaos runs exercise exactly the code
//! paths a real dead worker exercises, deterministically, and the
//! recovered answers must stay **bit-identical** to a fault-free run.

pub use ugs_server::fault::{FaultClock, FaultEvent, FaultKind, FaultPlan};

/// What the coordinator's request path must do for one clock tick.
///
/// Separated from the clock so `raw_request` stays a straight-line match:
/// `None` means the exchange runs faithfully.
pub(crate) fn verdict(clock: Option<&FaultClock>) -> Option<FaultKind> {
    clock.and_then(FaultClock::next)
}
